"""Benchmark E2 — regenerates Table I (FPGA resource utilisation vs P)."""

from __future__ import annotations

import pytest

from repro.experiments.table1_resources import format_table1, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_resources(benchmark):
    """Evaluate the fitted resource model at the paper's parallelism values."""
    study = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    print()
    print(format_table1(study))

    # The model must stay within a few percentage points of the paper's table
    # and every configuration must fit on the KC705.
    assert study.max_lut_error() < 0.03
    assert study.max_bram_error() < 0.03
    assert all(row.usage.fits() for row in study.rows)
    assert all(row.usage.dsp_fraction < 0.001 for row in study.rows)
