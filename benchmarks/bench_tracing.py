"""Benchmark — tracing overhead guard (off = free, on = bounded, exportable).

Answers the question any always-on observability feature must answer before
it ships: *what does it cost when nobody is looking?*  The same hot-seed
serving workload runs through the :class:`~repro.serving.engine.QueryEngine`
three ways:

* ``untraced`` — no tracer attached (the pre-tracing engine build);
* ``tracer-off`` — a tracer attached with ``sample_rate=0`` and the
  per-request ``start_trace`` offer made exactly as the servers make it
  (the production "tracing available but disabled" configuration);
* ``traced`` — ``sample_rate=1``, every query records its full span tree.

The guard: ``tracer-off`` throughput must stay within
``MAX_DISABLED_OVERHEAD`` of ``untraced`` (target 2%; the in-bench
assertion allows a little CI headroom on top, and the committed-baseline
gate tracks absolute throughput).  The ``traced`` run doubles as the CI
artifact source: ``--perfetto out.json`` writes the ring as a validated
Chrome trace-event document.

Output follows the serving-bench convention — a top-level config plus a
``runs`` list whose entries carry ``label`` and ``throughput_qps`` — so
``benchmarks/check_regression.py`` gates it like the rest.

Run under pytest (``pytest benchmarks/bench_tracing.py``) or standalone::

    PYTHONPATH=src python benchmarks/bench_tracing.py [--json out.json]
                                                      [--perfetto trace.json]
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Optional

import pytest

from repro.experiments.workloads import make_repeated_seed_workload
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.serving import QueryEngine, SubgraphCache, Tracer, validate_trace_events
from repro.serving.result_cache import ScoreTableCache

#: Throughput loss the disabled-tracing path may cost vs no tracer at all.
#: The design target is 2% (every hook is one ``is None`` check plus a
#: counter bump in ``start_trace``); the assertion allows CI-noise headroom.
MAX_DISABLED_OVERHEAD = 0.05

K = 100


def _measure_qps(engine, queries, tracer: Optional[Tracer], repeats: int) -> float:
    """Best-of-``repeats`` throughput, offering each query to ``tracer``
    exactly the way the servers do (one ``start_trace`` per request)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        if tracer is None:
            engine.solve_batch(queries)
        else:
            contexts = [
                tracer.start_trace("request", seed=query.seed)
                for query in queries
            ]
            if any(ctx is not None for ctx in contexts):
                engine.solve_batch(queries, contexts)
                for ctx in contexts:
                    if ctx is not None:
                        ctx.finish(status="ok")
            else:
                engine.solve_batch(queries)
        best = min(best, time.perf_counter() - start)
    return len(queries) / best


def run_benchmark(
    num_seeds: int = 6, repeat_factor: int = 6, repeats: int = 3
) -> Dict[str, object]:
    """The measured sweep: hot seeds on the citeseer stand-in, k = 100."""
    graph, queries = make_repeated_seed_workload(
        "G1", num_seeds, repeat_factor, K, rng=7
    )
    config = MeLoPPRConfig.paper_default()
    runs: List[Dict[str, object]] = []
    traced_tracer = Tracer(sample_rate=1.0, ring_size=len(queries) + 1)

    for label, tracer in (
        ("untraced", None),
        ("tracer-off", Tracer(sample_rate=0.0)),
        ("traced", traced_tracer),
    ):
        engine = QueryEngine(
            MeLoPPRSolver(graph, config),
            cache=SubgraphCache(),
            result_cache=ScoreTableCache(),
            tracer=tracer,
        )
        with engine:
            engine.solve_batch(queries)  # warm caches before timing
            qps = _measure_qps(engine, queries, tracer, repeats)
        run: Dict[str, object] = {
            "label": label,
            "throughput_qps": qps,
            "num_queries": len(queries),
        }
        if tracer is not None:
            stats = tracer.stats()
            run["tracing"] = stats.as_dict()
            if stats.finished:
                run["spans_per_query"] = stats.spans / stats.finished
        runs.append(run)

    return {
        "benchmark": "tracing_overhead",
        "dataset": "G1",
        "k": K,
        "num_seeds": num_seeds,
        "repeat_factor": repeat_factor,
        "repeats": repeats,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "runs": runs,
        "_tracer": traced_tracer,  # stripped before serialisation
    }


def study_json(payload: Dict[str, object]) -> str:
    """The report as JSON (the live tracer handle stripped)."""
    document = {key: value for key, value in payload.items() if key != "_tracer"}
    return json.dumps(document, indent=2, sort_keys=True)


def assert_overhead_bounded(payload: Dict[str, object]) -> None:
    """The guard both the pytest and CLI entry points enforce."""
    runs = {run["label"]: run for run in payload["runs"]}
    untraced = runs["untraced"]["throughput_qps"]
    disabled = runs["tracer-off"]["throughput_qps"]
    assert disabled >= untraced * (1.0 - MAX_DISABLED_OVERHEAD), (
        f"disabled tracing cost {1.0 - disabled / untraced:.1%} throughput "
        f"({disabled:.1f} qps vs {untraced:.1f} qps untraced; budget "
        f"{MAX_DISABLED_OVERHEAD:.0%})"
    )
    # The disabled run must have actually exercised the offer path.
    assert runs["tracer-off"]["tracing"]["started"] > 0
    assert runs["tracer-off"]["tracing"]["sampled"] == 0


@pytest.mark.benchmark(group="serving")
def test_tracing_overhead(benchmark, num_seeds):
    """Disabled tracing is free; enabled tracing records exportable trees."""
    payload = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_seeds": max(num_seeds, 4), "repeat_factor": 6},
        rounds=1,
        iterations=1,
    )
    print()
    print(study_json(payload))

    assert_overhead_bounded(payload)

    runs = {run["label"]: run for run in payload["runs"]}
    traced = runs["traced"]
    expected = traced["num_queries"] * payload["repeats"]
    assert traced["tracing"]["finished"] == expected
    assert traced["spans_per_query"] >= 2.0  # request + at least one child

    # The ring exports as a loadable Chrome trace-event document.
    tracer = payload["_tracer"]
    doc = tracer.perfetto()
    assert validate_trace_events(doc) > 0
    assert validate_trace_events(json.loads(json.dumps(doc))) > 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the JSON and writing artifacts."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-seeds", type=int, default=6, help="distinct hot seeds")
    parser.add_argument("--repeat-factor", type=int, default=6, help="queries per seed")
    parser.add_argument("--repeats", type=int, default=3, help="timed repeats per run")
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    parser.add_argument(
        "--perfetto",
        default=None,
        help="write the traced run's ring as Chrome trace-event JSON here "
        "(validated before writing; load it in Perfetto or chrome://tracing)",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(
        num_seeds=args.num_seeds,
        repeat_factor=args.repeat_factor,
        repeats=args.repeats,
    )
    document = study_json(payload)
    print(document)
    assert_overhead_bounded(payload)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    if args.perfetto:
        doc = payload["_tracer"].perfetto()
        count = validate_trace_events(doc)
        with open(args.perfetto, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        print(f"wrote {count} trace events to {args.perfetto}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
