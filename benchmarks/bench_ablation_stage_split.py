"""Benchmark E8 — ablation over the stage split L = l1 + l2 (+ l3)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_stage_split import format_stage_split, run_stage_split_ablation


@pytest.mark.benchmark(group="ablation")
def test_stage_split_ablation(benchmark, num_seeds):
    """Precision / memory / work across alternative splits of L = 6."""
    study = benchmark.pedantic(
        run_stage_split_ablation, kwargs={"num_seeds": num_seeds}, rounds=1, iterations=1
    )
    print()
    print(format_stage_split(study))

    rows = {row.stage_lengths: row for row in study.rows}
    # A larger stage-one depth drags the peak sub-graph back towards G_L(s):
    # the (5,1) split must need at least as much memory as the paper's (3,3).
    assert (
        rows[(5, 1)].mean_peak_subgraph_nodes
        >= rows[(3, 3)].mean_peak_subgraph_nodes
    )
    # The three-stage split keeps the peak sub-graph no larger than two-stage.
    assert (
        rows[(2, 2, 2)].mean_peak_subgraph_nodes
        <= rows[(3, 3)].mean_peak_subgraph_nodes + 1
    )
