"""Benchmark — HTTP front-door soak/overload (goodput at capacity multiples).

Drives the real :class:`~repro.serving.frontend.http.HttpQueryServer`
(sockets, HTTP parsing, JSON, micro-batching, admission control) with
Poisson arrivals at multiples of its measured closed-loop capacity and
emits the measurements as JSON in the same shape as the other serving
benchmarks — a top-level config plus a ``runs`` list whose entries carry a
``label`` and a ``throughput_qps`` (the goodput: completed answers per
second), so ``benchmarks/check_regression.py`` gates it like the rest.

The in-bench assertions encode the shed-not-collapse claim: at 10x offered
load the server must shed explicitly (HTTP 429) while its goodput stays
within tolerance of the sweep's peak.

Run under pytest (``pytest benchmarks/bench_http_serving.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_http_serving.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

import pytest

from repro.experiments.soak_study import (
    SoakStudy,
    format_soak,
    run_soak_study,
)

#: Allowed goodput loss at the deepest overload vs the sweep's peak.  The
#: acceptance target is 20%; the in-bench assertion allows a little CI
#: headroom on top (the committed-baseline gate tracks absolute goodput).
MAX_OVERLOAD_DEGRADATION = 0.25


def run_benchmark(
    num_seeds: int = 4,
    num_arrivals: int = 64,
    multipliers=(0.5, 1.0, 10.0),
) -> SoakStudy:
    """The measured sweep: HTTP soak on the citeseer stand-in, k = 100."""
    return run_soak_study(
        dataset="G1",
        num_seeds=num_seeds,
        num_arrivals=num_arrivals,
        multipliers=tuple(multipliers),
    )


def study_json(study: SoakStudy) -> str:
    """The study as a JSON document (goodput, shed rates, percentiles)."""
    return json.dumps(study.as_dict(), indent=2, sort_keys=True)


@pytest.mark.benchmark(group="serving")
def test_http_soak_sheds_not_collapses(benchmark, num_seeds):
    """10x overload must shed explicitly while goodput holds near peak."""
    study = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_seeds": max(num_seeds, 4), "num_arrivals": 64},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_soak(study))
    document = study_json(study)
    print(document)

    payload = json.loads(document)
    assert payload["runs"], "sweep produced no runs"
    for run in payload["runs"]:
        assert run["p50_ms"] <= run["p95_ms"] <= run["p99_ms"]
        assert 0.0 <= run["shed_rate"] <= 1.0
        assert run["completed"] + run["shed"] + run["expired"] == run["offered"]
        # The server's own /metrics counters agreed with the client tally
        # (cross-checked inside run_soak_study; re-assert the echo here).
        assert run["server_completed"] == run["completed"]
        assert run["server_shed"] == run["shed"]

    overload = max(study.runs, key=lambda run: run.multiplier)
    assert overload.multiplier >= 10.0, "sweep must include a 10x soak"
    assert overload.shed > 0, "10x offered load must trigger shedding"
    assert study.overload_degradation <= MAX_OVERLOAD_DEGRADATION, (
        f"goodput collapsed under overload: {overload.goodput_qps:.1f} qps at "
        f"{overload.label} vs peak {study.peak_goodput_qps:.1f} qps "
        f"({study.overload_degradation:.0%} > {MAX_OVERLOAD_DEGRADATION:.0%})"
    )
    # Correctness is enforced inside run_soak_study (every completed answer
    # bit-identical to the serial engine); reaching this point means it held.


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table and JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-seeds", type=int, default=4, help="hot-seed pool size")
    parser.add_argument(
        "--num-arrivals",
        type=int,
        default=64,
        help="timed arrivals per capacity multiple (scaled up under overload)",
    )
    parser.add_argument(
        "--multipliers",
        type=float,
        nargs="+",
        default=[0.5, 1.0, 10.0],
        help="offered load as multiples of measured capacity",
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_benchmark(
        num_seeds=args.num_seeds,
        num_arrivals=args.num_arrivals,
        multipliers=tuple(args.multipliers),
    )
    print(format_soak(study))
    document = study_json(study)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
