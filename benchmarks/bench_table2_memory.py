"""Benchmark E3 — regenerates Table II (memory comparison across six graphs).

The default run uses the analytical working-set model (fast, deterministic);
pass ``--paper-scale`` to also increase the seed counts.  The paper's exact
measurement methodology (``tracemalloc``) is available through
``run_table2(use_tracemalloc=True)`` and is exercised, at reduced scale, by
the dedicated tracemalloc benchmark below.
"""

from __future__ import annotations

import pytest

from repro.experiments.table2_memory import format_table2, run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_memory_modelled(benchmark, num_seeds_large):
    """Table II across all six graph stand-ins with the analytical byte model."""
    study = benchmark.pedantic(
        run_table2,
        kwargs={"num_seeds": num_seeds_large, "use_tracemalloc": False},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table2(study))

    # Headline shapes of Table II: MeLoPPR always reduces memory on CPU, the
    # FPGA tables are smaller still, and denser/larger graphs benefit more
    # than the smallest citation graph.
    for row in study.rows:
        assert row.cpu_reduction_mean > 1.0
        assert row.fpga_reduction_mean > row.cpu_reduction_mean
    reductions = {row.dataset: row.fpga_reduction_mean for row in study.rows}
    assert max(reductions.values()) > 2 * reductions["G1"] or reductions["G1"] > 50


@pytest.mark.benchmark(group="table2")
def test_table2_memory_tracemalloc_g1(benchmark):
    """The paper's tracemalloc measurement, restricted to G1 to stay fast."""
    study = benchmark.pedantic(
        run_table2,
        kwargs={"datasets": ("G1",), "num_seeds": 2, "use_tracemalloc": True},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table2(study))
    row = study.rows[0]
    assert row.cpu_reduction_mean > 1.0
    assert row.fpga_reduction_mean > 10.0
