"""Benchmark — cross-query stage-one result caching (hot-seed reuse).

Measures queries/second for a Zipfian hot-seed workload (E13 study) with
the :class:`~repro.serving.result_cache.ScoreTableCache` off and on, and
emits the measurements as JSON in the same shape as the other serving
benchmarks — a top-level config plus a ``runs`` list with
``label``/``throughput_qps`` — so ``benchmarks/check_regression.py`` gates
it against ``benchmarks/baselines/result_cache.json`` uniformly.

The headline claim asserted under pytest: on the Zipf(1.1) workload the
cache-on engine clears **2x** the cache-off throughput, with bit-identical
scores (the study itself raises if any score moves).

Run under pytest (``pytest benchmarks/bench_result_cache.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_result_cache.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

import pytest

from repro.experiments.result_cache_study import (
    ResultCacheStudy,
    format_result_cache,
    run_result_cache_study,
)


def run_benchmark(
    num_queries: int = 160,
    num_seeds: int = 16,
    skews=(0.0, 1.1),
) -> ResultCacheStudy:
    """The measured sweep: Zipf arrivals on the citeseer stand-in, k = 100."""
    return run_result_cache_study(
        dataset="G1",
        num_queries=num_queries,
        num_seeds=num_seeds,
        skews=tuple(skews),
    )


def study_json(study: ResultCacheStudy) -> str:
    """The study as a JSON document (throughputs, hit rates, speedups)."""
    return json.dumps(study.as_dict(), indent=2, sort_keys=True)


@pytest.mark.benchmark(group="serving")
def test_result_cache_throughput(benchmark, num_seeds):
    """Result caching must stay correct and clear 2x on the Zipf(1.1) stream."""
    study = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_queries": 160, "num_seeds": max(num_seeds, 16)},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result_cache(study))
    document = study_json(study)
    print(document)

    payload = json.loads(document)
    assert payload["runs"], "sweep produced no runs"
    labels = {run["label"] for run in payload["runs"]}
    assert "zipf1.1:off" in labels and "zipf1.1:on" in labels
    for run in payload["runs"]:
        assert run["throughput_qps"] > 0.0
        if run["cached"]:
            assert run["result_cache_hit_rate"] is not None
            assert run["speedup_vs_uncached"] is not None
    # Correctness is enforced inside run_result_cache_study (bit-identical
    # scores cache-on vs cache-off); reaching this point means it held.

    by_label = {run["label"]: run for run in payload["runs"]}
    ratio = (
        by_label["zipf1.1:on"]["throughput_qps"]
        / by_label["zipf1.1:off"]["throughput_qps"]
    )
    assert ratio > 2.0, (
        f"result cache is only {ratio:.2f}x cache-off on the Zipf(1.1) "
        "hot-seed workload; stage-one reuse should at least halve the work"
    )
    # The hot stream must actually have been hot — otherwise the ratio
    # tested a cold cache and passed by accident.
    assert by_label["zipf1.1:on"]["result_cache_hit_rate"] > 0.5


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table and JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--num-queries", type=int, default=160, help="Zipf arrivals per skew"
    )
    parser.add_argument(
        "--num-seeds", type=int, default=16, help="hot-seed pool size"
    )
    parser.add_argument(
        "--skews",
        type=float,
        nargs="+",
        default=[0.0, 1.1],
        help="Zipf exponents to sweep",
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_benchmark(
        num_queries=args.num_queries,
        num_seeds=args.num_seeds,
        skews=tuple(args.skews),
    )
    print(format_result_cache(study))
    document = study_json(study)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
