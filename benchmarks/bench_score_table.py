"""Benchmark E7 — regenerates the Sec. V-B global score-table size study."""

from __future__ import annotations

import pytest

from repro.experiments.score_table_study import format_score_table, run_score_table_study


@pytest.mark.benchmark(group="score_table")
def test_score_table_study(benchmark, num_seeds):
    """Precision loss of the bounded top-(c*k) score table across c values."""
    study = benchmark.pedantic(
        run_score_table_study,
        kwargs={"factors": (2, 4, 8, 10, 16), "num_seeds": num_seeds},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_score_table(study))

    # Headline shape of Sec. V-B: a larger table never loses more precision,
    # and the deployed c = 10 setting is essentially lossless.
    assert study.loss_at(10) <= study.loss_at(2) + 1e-9
    assert study.loss_at(16) <= study.loss_at(4) + 1e-9
    assert study.loss_at(10) < 0.05
