"""Benchmark — process-pool serving throughput (multi-core scaling).

Measures queries/second for the E9 repeated-seed workload answered by
``serial``, ``thread:N`` and ``process:N`` engines (E12 study) and emits the
measurements as JSON in the same shape as the other serving benchmarks — a
top-level config plus a ``runs`` list — including each configuration's
speedup over serial and, for the process runs, over the equally sized thread
pool.

Run under pytest (``pytest benchmarks/bench_process_serving.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_process_serving.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional

import pytest

from repro.experiments.process_study import (
    ProcessStudy,
    format_process,
    run_process_study,
)


def run_benchmark(
    num_seeds: int = 8,
    repeat_factor: int = 6,
    worker_counts=(2, 4),
) -> ProcessStudy:
    """The measured sweep: hot seeds on the citeseer stand-in, k = 100."""
    return run_process_study(
        dataset="G1",
        num_seeds=num_seeds,
        repeat_factor=repeat_factor,
        worker_counts=tuple(worker_counts),
    )


def study_json(study: ProcessStudy) -> str:
    """The study as a JSON document (throughputs, speedup curves)."""
    return json.dumps(study.as_dict(), indent=2, sort_keys=True)


@pytest.mark.benchmark(group="serving")
def test_process_serving_throughput(benchmark, num_seeds):
    """Process serving must stay correct; on multi-core it must beat threads."""
    # A colder, wider workload than the smoke defaults: distinct seeds keep
    # the extraction share (the GIL-bound part threads cannot scale) large,
    # which is what the multi-core ratio below actually measures.
    study = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_seeds": max(num_seeds, 8), "repeat_factor": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_process(study))
    document = study_json(study)
    print(document)

    payload = json.loads(document)
    assert payload["runs"], "sweep produced no runs"
    labels = {run["label"] for run in payload["runs"]}
    assert "serial" in labels
    assert any(label.startswith("process:") for label in labels)
    for run in payload["runs"]:
        assert run["throughput_qps"] > 0.0
        if run["label"].startswith("process:"):
            assert run["speedup_vs_threads"] is not None
    # Correctness is enforced inside run_process_study (bit-identical to the
    # serial engine); reaching this point means it held.

    # The headline multi-core claim only holds where there are multiple
    # cores: on the 4-core CI runners process:4 must clearly beat thread:4
    # (the GIL-bound baseline).  Single-core boxes measure IPC overhead, not
    # parallelism, so the ratio is not asserted there.
    cores = os.cpu_count() or 1
    by_label = {run["label"]: run for run in payload["runs"]}
    if cores >= 4 and "process:4" in by_label and "thread:4" in by_label:
        ratio = (
            by_label["process:4"]["throughput_qps"]
            / by_label["thread:4"]["throughput_qps"]
        )
        assert ratio > 1.5, (
            f"process:4 is only {ratio:.2f}x thread:4 on a {cores}-core "
            "machine; the process pool should scale past the GIL"
        )
    if cores >= 4 and "process:4" in by_label and "serial" in by_label:
        vs_serial = (
            by_label["process:4"]["throughput_qps"]
            / by_label["serial"]["throughput_qps"]
        )
        assert vs_serial > 1.0, (
            f"process:4 is only {vs_serial:.2f}x serial on a {cores}-core "
            "machine; with the vectorised diffusion kernels the per-task "
            "work no longer hides the IPC cost, so four workers must win"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table and JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-seeds", type=int, default=8, help="distinct hot seeds")
    parser.add_argument("--repeat-factor", type=int, default=6, help="queries per seed")
    parser.add_argument(
        "--worker-counts",
        type=int,
        nargs="+",
        default=[2, 4],
        help="pool sizes to sweep",
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_benchmark(
        num_seeds=args.num_seeds,
        repeat_factor=args.repeat_factor,
        worker_counts=tuple(args.worker_counts),
    )
    print(format_process(study))
    document = study_json(study)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
