"""Benchmark — sharded serving throughput (partitioners × shard counts).

Measures queries/second for a repeated-seed workload answered through a
shard-routed :class:`~repro.serving.engine.QueryEngine` (per-shard sub-graph
caches, halo-extended shard graphs) for every partition strategy × shard
count, and emits the measurements as JSON in the same shape as
``bench_serving_throughput.py`` — a top-level config plus a ``runs`` list —
including the per-shard cache hit rates and the cross-shard fallback rate.

Run under pytest (``pytest benchmarks/bench_sharded_serving.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_sharded_serving.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

import pytest

from repro.experiments.sharding_study import (
    ShardingStudy,
    format_sharding,
    run_sharding_study,
)


def run_benchmark(
    num_seeds: int = 8,
    repeat_factor: int = 6,
    shard_counts=(2, 4),
) -> ShardingStudy:
    """The measured sweep: hot seeds on the citeseer stand-in, k = 100."""
    return run_sharding_study(
        dataset="G1",
        num_seeds=num_seeds,
        repeat_factor=repeat_factor,
        shard_counts=shard_counts,
    )


def study_json(study: ShardingStudy) -> str:
    """The study as a JSON document (throughputs, hit rates, fallback rates)."""
    return json.dumps(study.as_dict(), indent=2, sort_keys=True)


@pytest.mark.benchmark(group="serving")
def test_sharded_serving_throughput(benchmark, num_seeds):
    """Sharded serving must stay correct and report locality in its JSON."""
    study = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_seeds": max(num_seeds, 4), "repeat_factor": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sharding(study))
    document = study_json(study)
    print(document)

    payload = json.loads(document)
    assert payload["runs"], "sweep produced no runs"
    for run in payload["runs"]:
        # The JSON must carry the locality metrics with sane values.
        assert 0.0 <= run["cache_hit_rate"] <= 1.0
        assert 0.0 <= run["cross_shard_fallback_rate"] <= 1.0
        assert len(run["per_shard_hit_rates"]) == run["num_shards"]
        assert all(0.0 <= rate <= 1.0 for rate in run["per_shard_hit_rates"])
        assert run["halo_overhead_bytes"] >= 0
    # The paper-default halo covers every stage depth: all extractions local.
    assert all(run["cross_shard_fallback_rate"] == 0.0 for run in payload["runs"])
    # The repeated-seed workload must actually hit the per-shard caches.
    assert max(run["cache_hit_rate"] for run in payload["runs"]) > 0.3
    # Correctness is enforced inside run_sharding_study (bit-identical to the
    # unsharded serial path); reaching this point means it held.


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table and JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-seeds", type=int, default=8, help="distinct hot seeds")
    parser.add_argument("--repeat-factor", type=int, default=6, help="queries per seed")
    parser.add_argument(
        "--shard-counts",
        type=int,
        nargs="+",
        default=[2, 4],
        help="shard counts to sweep",
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_benchmark(
        num_seeds=args.num_seeds,
        repeat_factor=args.repeat_factor,
        shard_counts=tuple(args.shard_counts),
    )
    print(format_sharding(study))
    document = study_json(study)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
