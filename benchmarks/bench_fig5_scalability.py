"""Benchmark E1 — regenerates Fig. 5 (FPGA scalability of the diffusion phase).

Run with ``pytest benchmarks/bench_fig5_scalability.py --benchmark-only``.
The benchmark times the full sweep and prints the latency-breakdown table
(CPU / FPGA-scheduling / FPGA-diffusion / FPGA-data-movement per parallelism)
that mirrors the paper's bar chart.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig5_scalability import format_fig5, run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_scalability(benchmark, num_seeds):
    """Time the Fig. 5 sweep and print the reproduced latency breakdown."""
    study = benchmark.pedantic(
        run_fig5, kwargs={"num_seeds": num_seeds}, rounds=1, iterations=1
    )
    print()
    print(format_fig5(study))
    speedups = study.speedup_from_first()
    print(f"FPGA compute speedup P=1 -> P=16: {speedups[16]:.1f}x")

    # Headline shapes of Fig. 5.
    compute = [
        point.fpga_diffusion_seconds + point.fpga_scheduling_seconds
        for point in study.points
    ]
    assert compute == sorted(compute, reverse=True)
    assert speedups[16] > 2.0
    for point in study.points:
        assert point.scheduling_fraction < 0.40
