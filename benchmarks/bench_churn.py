"""Benchmark — surgical cache invalidation vs clear-everything under churn.

Replays one churn script (E17's update stream: Zipfian hot-seed queries in
micro-batches with random edge insert/delete batches between them) through
two identically configured engines that differ only in invalidation policy:

* ``churn:surgical`` — :meth:`~repro.serving.engine.QueryEngine.apply_update`
  alone: the conservative hop-distance bound drops only the cache entries
  the update can reach, rekeys the survivors to the new fingerprint;
* ``churn:clear`` — the same ``apply_update`` followed by clearing both
  cache tiers, i.e. the classic "topology changed, throw everything away"
  baseline (the fingerprint-keyed caches would behave exactly like this on
  a naive swap, since every key's fingerprint goes stale).

Both policies are verified bit-identical to from-scratch rebuilds at every
step — the script carries reference scores from an uncached solver — so the
comparison is purely about how much cached state survives.  The headline
claim asserted under pytest: the surgical engine's combined hit rate is
**strictly higher** than the clearing engine's, and its throughput is gated
against ``benchmarks/baselines/churn.json`` by ``check_regression.py``.

Run under pytest (``pytest benchmarks/bench_churn.py``) or standalone::

    PYTHONPATH=src python benchmarks/bench_churn.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional

import numpy as np
import pytest

from repro.experiments.churn_study import make_churn_script
from repro.experiments.workloads import make_zipf_workload
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine
from repro.serving.result_cache import ScoreTableCache

POLICIES = ("surgical", "clear")


def run_benchmark(
    num_queries: int = 160,
    num_seeds: int = 16,
    batch_size: int = 8,
    update_rate: int = 6,
    cache_budget: int = 4 * 1024 * 1024,
) -> Dict[str, object]:
    """Replay one churn script under both invalidation policies.

    Returns the shared benchmark JSON shape: a top-level config plus a
    ``runs`` list with ``label``/``throughput_qps`` (and the hit rates the
    pytest assertion reads).
    """
    config = MeLoPPRConfig(
        stage_lengths=(3, 3),
        selector=RatioSelector(0.01),
        track_memory=False,
    )
    graph, queries = make_zipf_workload(
        "G1",
        num_queries,
        skew=1.1,
        num_seeds=num_seeds,
        k=50,
        length=6,
        rng=7,
    )
    script = make_churn_script(
        graph,
        queries,
        batch_size,
        update_rate,
        config,
        np.random.default_rng(123),
    )
    runs: List[Dict[str, object]] = []
    for policy in POLICIES:
        with QueryEngine(
            MeLoPPRSolver(graph, config),
            cache=SubgraphCache(cache_budget),
            result_cache=ScoreTableCache(cache_budget),
        ) as engine:
            for step in script:
                if step.ops:
                    engine.apply_update(list(step.ops))
                    if policy == "clear":
                        engine.cache.clear()
                        engine.result_cache.clear()
                results = engine.solve_batch(list(step.batch))
                scores = [dict(result.scores.items()) for result in results]
                if scores != list(step.reference_scores):
                    raise AssertionError(
                        f"churn:{policy}: answers diverged from the "
                        "from-scratch rebuild"
                    )
            stats = engine.stats()
        runs.append(
            {
                "label": f"churn:{policy}",
                "policy": policy,
                "num_queries": stats.queries_served,
                "wall_seconds": stats.wall_seconds,
                "throughput_qps": stats.throughput_qps,
                "hit_rate": None if stats.cache is None else stats.cache.hit_rate,
                "identical": True,
            }
        )
    return {
        "dataset": "G1",
        "num_queries": num_queries,
        "num_seeds": num_seeds,
        "batch_size": batch_size,
        "update_rate": update_rate,
        "cache_budget_bytes": cache_budget,
        "runs": runs,
    }


def report_json(report: Dict[str, object]) -> str:
    """The report as a JSON document."""
    return json.dumps(report, indent=2, sort_keys=True)


@pytest.mark.benchmark(group="serving")
def test_churn_surgical_beats_clearing(benchmark, num_seeds):
    """Surgical invalidation must keep a strictly higher hit rate than clearing."""
    report = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_queries": 160, "num_seeds": max(num_seeds, 16)},
        rounds=1,
        iterations=1,
    )
    document = report_json(report)
    print()
    print(document)

    payload = json.loads(document)
    by_label = {run["label"]: run for run in payload["runs"]}
    assert set(by_label) == {"churn:surgical", "churn:clear"}
    for run in payload["runs"]:
        assert run["throughput_qps"] > 0.0
        assert run["identical"] is True
    surgical = by_label["churn:surgical"]["hit_rate"]
    clearing = by_label["churn:clear"]["hit_rate"]
    assert surgical is not None and clearing is not None
    # The point of the whole delta path: cached state survives updates that
    # provably cannot reach it.  Clearing serves the same stream colder.
    assert surgical > clearing, (
        f"surgical invalidation hit rate {surgical:.1%} is not above the "
        f"clear-everything baseline {clearing:.1%}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--num-queries", type=int, default=160, help="Zipf arrivals"
    )
    parser.add_argument(
        "--num-seeds", type=int, default=16, help="hot-seed pool size"
    )
    parser.add_argument(
        "--batch-size", type=int, default=8, help="queries per micro-batch"
    )
    parser.add_argument(
        "--update-rate",
        type=int,
        default=6,
        help="edge ops applied between micro-batches",
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    report = run_benchmark(
        num_queries=args.num_queries,
        num_seeds=args.num_seeds,
        batch_size=args.batch_size,
        update_rate=args.update_rate,
    )
    document = report_json(report)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
