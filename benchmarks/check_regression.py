"""Gate serving-benchmark throughput against committed baselines.

Every serving benchmark in this repository (``bench_serving_throughput``,
``bench_sharded_serving``, ``bench_async_serving``, ``bench_process_serving``)
emits the same JSON shape — a ``runs`` list whose entries carry a ``label``
and a ``throughput_qps``.  This checker compares one or more candidate
reports against a committed baseline (``benchmarks/baselines/*.json``) and
fails when any configuration's throughput regressed by more than the
tolerance.

CI-runner noise is handled with **min-of-repeats**: the CI gate runs each
benchmark twice and passes both reports; per label the *best* candidate
throughput is compared (the minimum of the repeated runtimes is the standard
robust estimator — a single noisy run cannot fail the gate, only a
reproducible slowdown can).

Usage::

    # gate (exit 1 on regression)
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/serving.json run1.json run2.json

    # refresh a baseline from measured reports
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/serving.json --update run1.json run2.json

Baselines are machine-dependent (queries/second on the runner that produced
them); refresh them with ``--update`` whenever the CI runner class changes.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "DEFAULT_TOLERANCE",
    "RegressionCheck",
    "extract_metrics",
    "best_metrics",
    "check_metrics",
    "format_checks",
    "main",
]

#: Allowed fractional throughput drop before the gate fails (>30% regression).
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class RegressionCheck:
    """Outcome of one label's baseline comparison.

    Attributes
    ----------
    label:
        The benchmark configuration (a run label).
    baseline_qps:
        Committed throughput.
    candidate_qps:
        Best observed throughput across the candidate reports (``None``
        when the label is missing from every candidate).
    ratio:
        ``candidate / baseline`` (``None`` when not comparable).
    passed:
        Whether this label clears the tolerance.
    """

    label: str
    baseline_qps: float
    candidate_qps: Optional[float]
    ratio: Optional[float]
    passed: bool


def extract_metrics(document: Dict[str, object]) -> Dict[str, float]:
    """``{run label: throughput_qps}`` from one benchmark JSON document."""
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("benchmark document has no 'runs' list")
    metrics: Dict[str, float] = {}
    for run in runs:
        label = run.get("label")
        throughput = run.get("throughput_qps")
        if not isinstance(label, str) or not isinstance(throughput, (int, float)):
            raise ValueError(
                f"run entry lacks 'label'/'throughput_qps': {run!r}"
            )
        metrics[label] = float(throughput)
    return metrics


def best_metrics(documents: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Per-label maximum throughput over repeated reports (min-of-repeats)."""
    if not documents:
        raise ValueError("at least one candidate report is required")
    best: Dict[str, float] = {}
    for document in documents:
        for label, throughput in extract_metrics(document).items():
            if label not in best or throughput > best[label]:
                best[label] = throughput
    return best


def check_metrics(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[RegressionCheck]:
    """Compare candidate throughputs against the baseline, label by label.

    A label present in the baseline but missing from every candidate fails —
    a silently dropped configuration must not read as a pass.  Labels only
    the candidates know (newly added configurations) are ignored; they enter
    the gate when the baseline is refreshed.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    checks: List[RegressionCheck] = []
    for label in sorted(baseline):
        baseline_qps = float(baseline[label])
        candidate_qps = candidate.get(label)
        if candidate_qps is None:
            checks.append(
                RegressionCheck(
                    label=label,
                    baseline_qps=baseline_qps,
                    candidate_qps=None,
                    ratio=None,
                    passed=False,
                )
            )
            continue
        ratio = candidate_qps / baseline_qps if baseline_qps > 0 else float("inf")
        checks.append(
            RegressionCheck(
                label=label,
                baseline_qps=baseline_qps,
                candidate_qps=candidate_qps,
                ratio=ratio,
                passed=ratio >= 1.0 - tolerance,
            )
        )
    return checks


def format_checks(checks: Sequence[RegressionCheck], tolerance: float) -> str:
    """Render the comparison as an aligned text report."""
    width = max([len(check.label) for check in checks] + [13])
    lines = [
        f"{'configuration'.ljust(width)}  {'baseline':>12}  {'candidate':>12}"
        f"  {'ratio':>7}  status"
    ]
    for check in checks:
        candidate = (
            "missing" if check.candidate_qps is None else f"{check.candidate_qps:12.1f}"
        )
        ratio = "-" if check.ratio is None else f"{check.ratio:6.2f}x"
        status = "ok" if check.passed else f"FAIL (>{tolerance:.0%} regression)"
        lines.append(
            f"{check.label.ljust(width)}  {check.baseline_qps:12.1f}  "
            f"{candidate:>12}  {ratio:>7}  {status}"
        )
    return "\n".join(lines)


def _load_json(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point (exit 1 on any regression)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "candidates", nargs="+", help="benchmark JSON reports (repeated runs)"
    )
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON path"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the baseline from the candidates instead of gating",
    )
    args = parser.parse_args(argv)

    candidate = best_metrics([_load_json(path) for path in args.candidates])

    if args.update:
        document = {
            "note": (
                "committed serving-throughput baseline; refresh with "
                "benchmarks/check_regression.py --update when the runner "
                "class changes"
            ),
            "metrics": candidate,
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline {args.baseline} updated with {len(candidate)} metrics")
        return 0

    baseline_document = _load_json(args.baseline)
    baseline = baseline_document.get("metrics")
    if not isinstance(baseline, dict) or not baseline:
        raise SystemExit(f"baseline {args.baseline} has no 'metrics' mapping")
    checks = check_metrics(
        {label: float(value) for label, value in baseline.items()},
        candidate,
        tolerance=args.tolerance,
    )
    print(format_checks(checks, args.tolerance))
    failed = [check for check in checks if not check.passed]
    if failed:
        print(
            f"\n{len(failed)} of {len(checks)} configurations regressed "
            f"beyond {args.tolerance:.0%}"
        )
        return 1
    print(f"\nall {len(checks)} configurations within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
