"""Benchmark — replicated serving (throughput scaling vs fleet size).

Drives real fleets — ``N`` server subprocesses behind the consistent-hash
:class:`~repro.serving.frontend.router.ReplicaRouter` — with a fixed-
concurrency repeated-seed workload through real sockets, and emits the
measurements as JSON in the same shape as the other serving benchmarks — a
top-level config plus a ``runs`` list whose entries carry a ``label`` and a
``throughput_qps``, so ``benchmarks/check_regression.py`` gates it like the
rest.

The in-bench assertions encode the replication contract: every answer
bit-identical to the serial engine (enforced inside the study — a diverging
answer raises before any number is reported), zero failovers or retries on
a healthy fleet, and a ring that does not starve any replica.

Run under pytest (``pytest benchmarks/bench_replica_serving.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_replica_serving.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

import pytest

from repro.experiments.replica_study import (
    ReplicaStudy,
    format_replica,
    run_replica_study,
)

#: No replica may answer more than this share of a healthy fleet's queries
#: (a starving ring would make "add a replica" a no-op).  The bound is loose
#: because small CI workloads quantise coarsely over few hot seeds.
MAX_REPLICA_SHARE = 0.85


def run_benchmark(
    num_seeds: int = 4,
    repeat_factor: int = 4,
    replica_counts=(1, 2, 3),
) -> ReplicaStudy:
    """The measured sweep: replica fleets on the citeseer stand-in, k = 100."""
    return run_replica_study(
        dataset="G1",
        num_seeds=num_seeds,
        repeat_factor=repeat_factor,
        replica_counts=tuple(replica_counts),
    )


def study_json(study: ReplicaStudy) -> str:
    """The study as a JSON document (throughput, shares, retry counters)."""
    return json.dumps(study.as_dict(), indent=2, sort_keys=True)


@pytest.mark.benchmark(group="serving")
def test_replica_fleet_scales_and_stays_honest(benchmark, num_seeds):
    """A healthy fleet must spread load without retries or failovers."""
    study = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_seeds": max(num_seeds, 4), "repeat_factor": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_replica(study))
    document = study_json(study)
    print(document)

    payload = json.loads(document)
    assert payload["runs"], "sweep produced no runs"
    for run in payload["runs"]:
        assert run["throughput_qps"] > 0
        assert sum(run["per_replica_answers"]) == run["num_queries"]
        # Healthy fleet: the router never needed its failover machinery.
        assert run["retries"] == 0, f"unexpected retries in {run['label']}"
        assert run["failovers"] == 0, f"unexpected failovers in {run['label']}"

    multi = [run for run in payload["runs"] if run["replicas"] > 1]
    assert multi, "sweep must include a multi-replica fleet"
    for run in multi:
        assert all(count > 0 for count in run["per_replica_answers"]), (
            f"{run['label']}: consistent-hash ring starved a replica "
            f"({run['per_replica_answers']})"
        )
        assert run["max_replica_share"] <= MAX_REPLICA_SHARE, (
            f"{run['label']}: one replica answered "
            f"{run['max_replica_share']:.0%} of the workload"
        )
    # Bit-identical answers are enforced inside run_replica_study (any
    # divergence from the serial reference raises); reaching here means the
    # whole sweep's answers matched.


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table and JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-seeds", type=int, default=4, help="hot-seed pool size")
    parser.add_argument(
        "--repeat-factor", type=int, default=4, help="queries per hot seed"
    )
    parser.add_argument(
        "--replica-counts",
        type=int,
        nargs="+",
        default=[1, 2, 3],
        help="fleet sizes to sweep",
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_benchmark(
        num_seeds=args.num_seeds,
        repeat_factor=args.repeat_factor,
        replica_counts=tuple(args.replica_counts),
    )
    print(format_replica(study))
    document = study_json(study)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
