"""Benchmark E4 — regenerates Fig. 6 (sparsity and precision vs selection ratio)."""

from __future__ import annotations

import pytest

from repro.experiments.fig6_sparsity import format_fig6, run_fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_sparsity(benchmark, num_seeds):
    """Precision-vs-ratio curve on G1–G3 plus the residual score distribution."""
    study = benchmark.pedantic(
        run_fig6,
        kwargs={
            "datasets": ("G1", "G2", "G3"),
            "ratios": (0.01, 0.02, 0.03, 0.05, 0.20, 0.30),
            "num_seeds": num_seeds,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig6(study))

    # Headline shapes of Fig. 6: the precision curve rises with the selection
    # ratio and the residual score mass is concentrated on few nodes.
    precisions = [point.precision for point in study.curve]
    assert precisions[0] <= precisions[-1] + 0.02
    assert precisions[-1] >= 0.5
    assert study.distribution.top_decile_mass_fraction > 0.25
