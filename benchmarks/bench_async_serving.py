"""Benchmark — async serving latency under load (rates × batching policies).

Replays an open-loop Poisson workload through the async frontend
(:class:`~repro.serving.frontend.MicroBatcher` + admission control) for every
arrival rate × batching policy, and emits the measurements as JSON in the
same shape as the other serving benchmarks — a top-level config plus a
``runs`` list — including the p50/p95/p99 end-to-end latency, the shed rate
and the dedup/batch-size counters.

Run under pytest (``pytest benchmarks/bench_async_serving.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_async_serving.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

import pytest

from repro.experiments.latency_study import (
    LatencyStudy,
    format_latency,
    run_latency_study,
)


def run_benchmark(
    num_seeds: int = 6,
    num_arrivals: int = 48,
    rates_qps=(50.0, 4000.0),
) -> LatencyStudy:
    """The measured sweep: Poisson arrivals on the citeseer stand-in, k = 100."""
    return run_latency_study(
        dataset="G1",
        num_seeds=num_seeds,
        num_arrivals=num_arrivals,
        rates_qps=tuple(rates_qps),
    )


def study_json(study: LatencyStudy) -> str:
    """The study as a JSON document (latency percentiles, shed rates)."""
    return json.dumps(study.as_dict(), indent=2, sort_keys=True)


@pytest.mark.benchmark(group="serving")
def test_async_serving_latency(benchmark, num_seeds):
    """The frontend must stay correct and report percentiles + shed rate."""
    study = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_seeds": max(num_seeds, 4), "num_arrivals": 32},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_latency(study))
    document = study_json(study)
    print(document)

    payload = json.loads(document)
    assert payload["runs"], "sweep produced no runs"
    for run in payload["runs"]:
        # The JSON must carry the latency percentiles and shed accounting.
        assert run["p50_ms"] <= run["p95_ms"] <= run["p99_ms"]
        assert run["p99_ms"] <= run["max_ms"] + 1e-9
        assert 0.0 <= run["shed_rate"] <= 1.0
        assert run["completed"] + run["shed"] + run["expired"] == run["offered"]
        assert run["mean_batch_size"] >= 0.0
    # Correctness is enforced inside run_latency_study (bit-identical to the
    # serial engine); reaching this point means it held.


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table and JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-seeds", type=int, default=6, help="hot-seed pool size")
    parser.add_argument("--num-arrivals", type=int, default=48, help="timed arrivals")
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[50.0, 4000.0],
        help="offered arrival rates (queries/second)",
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_benchmark(
        num_seeds=args.num_seeds,
        num_arrivals=args.num_arrivals,
        rates_qps=tuple(args.rates),
    )
    print(format_latency(study))
    document = study_json(study)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
