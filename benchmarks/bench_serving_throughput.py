"""Benchmark — batched serving throughput (engine, cache, backends).

Measures queries/second for a repeated-seed workload answered through the
:class:`~repro.serving.engine.QueryEngine` in four configurations (serial /
thread-pool x cold / warm sub-graph cache) and emits the measurements as
JSON, including the cache hit rate.

Run under pytest (``pytest benchmarks/bench_serving_throughput.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

import pytest

from repro.experiments.serving_study import ServingStudy, format_serving, run_serving_study


def run_benchmark(num_seeds: int = 8, repeat_factor: int = 6) -> ServingStudy:
    """The measured sweep: hot seeds on the citeseer stand-in, k = 100."""
    return run_serving_study(
        dataset="G1",
        num_seeds=num_seeds,
        repeat_factor=repeat_factor,
        num_workers=4,
    )


def study_json(study: ServingStudy) -> str:
    """The study as a JSON document (throughputs, latencies, hit rates)."""
    return json.dumps(study.as_dict(), indent=2, sort_keys=True)


@pytest.mark.benchmark(group="serving")
def test_serving_throughput(benchmark, num_seeds):
    """Cache-enabled / threaded serving must beat the serial cold baseline."""
    study = benchmark.pedantic(
        run_benchmark,
        kwargs={"num_seeds": max(num_seeds, 6), "repeat_factor": 6},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_serving(study))
    print(study_json(study))

    runs = study.by_label()
    baseline = study.baseline
    assert baseline.label == "serial-cold"
    # The repeated-seed workload must actually hit the cache, and the hit
    # rate must be recorded in the JSON output.
    cached = runs["serial-cached"]
    assert cached.cache_hit_rate is not None and cached.cache_hit_rate > 0.3
    assert '"cache_hit_rate"' in study_json(study)
    # Headline claim: at least one engine configuration (warm cache and/or
    # thread pool) beats the serial cold-cache baseline.
    assert study.best.throughput_qps > baseline.throughput_qps
    assert study.best.label != "serial-cold"


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table and JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-seeds", type=int, default=8, help="distinct hot seeds")
    parser.add_argument("--repeat-factor", type=int, default=6, help="queries per seed")
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_benchmark(num_seeds=args.num_seeds, repeat_factor=args.repeat_factor)
    print(format_serving(study))
    document = study_json(study)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
