"""Benchmark E6 — regenerates the Sec. V-A fixed-point precision-loss study."""

from __future__ import annotations

import pytest

from repro.experiments.quantization_study import format_quantization, run_quantization_study


@pytest.mark.benchmark(group="quantization")
def test_quantization_study(benchmark, num_seeds):
    """Integer-datapath top-k precision under the three degree-scaling rules."""
    study = benchmark.pedantic(
        run_quantization_study, kwargs={"num_seeds": num_seeds}, rounds=1, iterations=1
    )
    print()
    print(format_quantization(study))

    rows = study.by_rule()
    # Headline shape of Sec. V-A: a larger integer scale loses less precision,
    # and the maximum-degree scale is close to lossless.
    assert rows["max"].mean_precision >= rows["average"].mean_precision - 0.02
    assert rows["half-max"].mean_precision >= rows["average"].mean_precision - 0.02
    assert rows["max"].mean_precision > 0.85
