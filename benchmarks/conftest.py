"""Shared configuration for the benchmark harness.

Every benchmark regenerates one paper artefact (table or figure) and prints
its rows via the experiment modules, while pytest-benchmark captures the
runtime of the underlying sweep.  Seed counts default to small values so the
whole harness completes in minutes; pass ``--paper-scale`` to use seed counts
closer to the paper's averaging.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="use seed counts close to the paper's averaging (slower)",
    )


@pytest.fixture(scope="session")
def num_seeds(request) -> int:
    """Seeds per graph for the benchmark sweeps."""
    return 20 if request.config.getoption("--paper-scale") else 3


@pytest.fixture(scope="session")
def num_seeds_large(request) -> int:
    """Seeds per graph for sweeps over the large-graph stand-ins."""
    return 10 if request.config.getoption("--paper-scale") else 2
