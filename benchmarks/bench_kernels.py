"""Micro-benchmarks of the core kernels (not a paper artefact).

These benchmarks track the throughput of the building blocks the experiments
lean on — BFS extraction, the diffusion kernels and a full MeLoPPR query — so
performance regressions in the substrate are visible independently of the
paper-level sweeps.

Every registered diffusion kernel gets its own benchmark on the same
one-hot workload, and ``test_kernel_speedup_floor`` asserts the headline
claim of the kernel registry: the ``auto`` kernel diffuses at least 3x
faster than the ``reference`` ``np.add.at`` implementation on a realistic
local-PPR sub-graph.

Run under pytest (``pytest benchmarks/bench_kernels.py``) or standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Callable, Dict, List, Optional

import numpy as np
import pytest

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.graph.bfs import extract_ego_subgraph
from repro.graph.datasets import load_dataset
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.local_ppr import LocalPPRSolver

#: Kernel labels benchmarked and emitted by the CLI.  ``numba`` is omitted
#: on purpose: the baseline gate fails on labels missing from a candidate
#: run, and the JIT is an optional dependency that CI does not install
#: (without it the numba kernel is just the frontier kernel measured twice).
KERNEL_LABELS = ("reference", "csr", "frontier", "auto")


@pytest.fixture(scope="module")
def citeseer():
    return load_dataset("G1")


@pytest.fixture(scope="module")
def pubmed():
    return load_dataset("G3")


@pytest.mark.benchmark(group="kernels")
def test_bench_bfs_extraction(benchmark, pubmed):
    """Depth-3 ego sub-graph extraction on the pubmed stand-in."""
    subgraph, _ = benchmark(extract_ego_subgraph, pubmed, 123, 3)
    assert subgraph.num_nodes > 1


@pytest.mark.benchmark(group="kernels")
@pytest.mark.parametrize("kernel", KERNEL_LABELS)
def test_bench_graph_diffusion(benchmark, pubmed, kernel):
    """Length-6 one-hot diffusion on the depth-6 ego sub-graph, per kernel."""
    subgraph, _ = extract_ego_subgraph(pubmed, 123, 6)
    initial = seed_vector(subgraph.num_nodes, subgraph.to_local(123))
    result = benchmark(
        graph_diffusion, subgraph.graph, initial, 6, 0.85, kernel=kernel
    )
    assert result.score_mass() == pytest.approx(1.0, abs=1e-6)


@pytest.mark.benchmark(group="kernels")
def test_bench_local_ppr_query(benchmark, citeseer):
    """The LocalPPR-CPU baseline answering one k=200 query."""
    solver = LocalPPRSolver(citeseer, track_memory=False)
    result = benchmark(solver.solve_seed, seed=42, k=200, length=6)
    assert result.top_k_nodes(1) == [42]


@pytest.mark.benchmark(group="kernels")
def test_bench_meloppr_query(benchmark, citeseer):
    """A full MeLoPPR query at the paper's default configuration."""
    config = MeLoPPRConfig.paper_default(0.02)
    solver = MeLoPPRSolver(
        citeseer,
        MeLoPPRConfig(
            stage_lengths=config.stage_lengths,
            selector=config.selector,
            score_table_factor=config.score_table_factor,
            track_memory=False,
        ),
    )
    result = benchmark(solver.solve_seed, seed=42, k=200, length=6)
    assert result.top_k_nodes(1) == [42]


def _legacy_diffusion(graph, initial: np.ndarray, length: int, alpha: float):
    """The pre-registry serial diffusion, reconstructed as a fixed baseline.

    This is what ``graph_diffusion`` compiled to before the kernel registry:
    a fresh operator per call (the planner built one per stage task), a
    ``np.repeat(np.arange(N), degrees)`` row-index rebuild inside **every**
    apply, and a boolean-mask degree sum per step for the work counter.  The
    speedup-floor test measures the new kernels against this, so the claim
    stays pinned to what the code actually did, not to the also-improved
    reference kernel.
    """
    degrees = graph.degrees()
    float_degrees = degrees.astype(np.float64)
    with np.errstate(divide="ignore"):
        inverse = np.where(float_degrees > 0, 1.0 / float_degrees, 0.0)
    residual = initial.copy()
    accumulated = np.zeros_like(initial)
    propagations = 0
    for step in range(length):
        accumulated += (1.0 - alpha) * (alpha**step) * residual
        propagations += int(degrees[residual != 0.0].sum())
        contribution = residual * inverse
        gathered = contribution[graph.indices]
        result = np.zeros(graph.num_nodes, dtype=np.float64)
        np.add.at(result, np.repeat(np.arange(graph.num_nodes), degrees), gathered)
        residual = result
    accumulated += (alpha**length) * residual
    return accumulated, residual, propagations


def _best_qps(fn: Callable[[], object], iterations: int, repeats: int) -> float:
    """Operations/second from the best of ``repeats`` timed loops."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, time.perf_counter() - start)
    return iterations / best


def test_kernel_speedup_floor(pubmed):
    """The acceptance claim: ``auto`` diffuses >= 3x the pre-registry loop."""
    subgraph, _ = extract_ego_subgraph(pubmed, 123, 6)
    initial = seed_vector(subgraph.num_nodes, subgraph.to_local(123))

    def run(kernel):
        return graph_diffusion(subgraph.graph, initial, 6, 0.85, kernel=kernel)

    result = run("auto")  # warm-up (operator + structure construction)
    assert result.score_mass() == pytest.approx(1.0, abs=1e-6)
    accumulated, residual, propagations = _legacy_diffusion(
        subgraph.graph, initial, 6, 0.85
    )
    # The new kernels must reproduce the legacy loop bit for bit.
    assert np.array_equal(result.accumulated, accumulated)
    assert np.array_equal(result.residual, residual)
    assert result.propagations == propagations

    legacy_qps = _best_qps(
        lambda: _legacy_diffusion(subgraph.graph, initial, 6, 0.85),
        iterations=10,
        repeats=3,
    )
    auto_qps = _best_qps(lambda: run("auto"), iterations=10, repeats=3)
    ratio = auto_qps / legacy_qps
    assert ratio >= 3.0, (
        f"auto kernel is only {ratio:.2f}x the pre-registry serial loop "
        f"({auto_qps:.0f} vs {legacy_qps:.0f} diffusions/s); the "
        "frontier-batched kernel should be at least 3x the np.add.at loop"
    )


def run_benchmark(repeats: int = 3) -> Dict[str, object]:
    """Measure every microbenchmark; returns the ``runs``-list document."""
    citeseer = load_dataset("G1")
    pubmed = load_dataset("G3")
    subgraph, _ = extract_ego_subgraph(pubmed, 123, 6)
    initial = seed_vector(subgraph.num_nodes, subgraph.to_local(123))
    meloppr = MeLoPPRSolver(
        citeseer,
        MeLoPPRConfig(
            stage_lengths=(3, 3),
            selector=RatioSelector(0.02),
            score_table_factor=10,
            track_memory=False,
        ),
    )

    runs: List[Dict[str, object]] = []

    def add(label: str, fn: Callable[[], object], iterations: int, **extra) -> float:
        fn()  # warm-up (operator/structure construction, caches)
        qps = _best_qps(fn, iterations=iterations, repeats=repeats)
        runs.append({"label": label, "throughput_qps": qps, **extra})
        return qps

    add("bfs_extract", lambda: extract_ego_subgraph(pubmed, 123, 3), iterations=10)
    legacy_qps = add(
        "diffusion:legacy",
        lambda: _legacy_diffusion(subgraph.graph, initial, 6, 0.85),
        iterations=10,
    )
    for kernel in KERNEL_LABELS:
        add(
            f"diffusion:{kernel}",
            lambda kernel=kernel: graph_diffusion(
                subgraph.graph, initial, 6, 0.85, kernel=kernel
            ),
            iterations=20,
        )
    for run in runs:
        if run["label"].startswith("diffusion:") and legacy_qps > 0:
            run["speedup_vs_legacy"] = run["throughput_qps"] / legacy_qps
    add(
        "meloppr:auto",
        lambda: meloppr.solve_seed(seed=42, k=200, length=6),
        iterations=5,
    )

    return {
        "workload": {
            "diffusion": "G3 ego(center=123, depth=6), one-hot length-6",
            "bfs_extract": "G3 depth-3 ego of node 123",
            "meloppr": "G1 seed 42, k=200, paper-default config",
            "repeats": repeats,
        },
        "runs": runs,
    }


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing (and optionally writing) the JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    document = json.dumps(run_benchmark(repeats=args.repeats), indent=2, sort_keys=True)
    print(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
