"""Micro-benchmarks of the core kernels (not a paper artefact).

These benchmarks track the throughput of the building blocks the experiments
lean on — BFS extraction, the diffusion kernel and a full MeLoPPR query — so
performance regressions in the substrate are visible independently of the
paper-level sweeps.
"""

from __future__ import annotations

import pytest

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.graph.bfs import extract_ego_subgraph
from repro.graph.datasets import load_dataset
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.local_ppr import LocalPPRSolver


@pytest.fixture(scope="module")
def citeseer():
    return load_dataset("G1")


@pytest.fixture(scope="module")
def pubmed():
    return load_dataset("G3")


@pytest.mark.benchmark(group="kernels")
def test_bench_bfs_extraction(benchmark, pubmed):
    """Depth-3 ego sub-graph extraction on the pubmed stand-in."""
    subgraph, _ = benchmark(extract_ego_subgraph, pubmed, 123, 3)
    assert subgraph.num_nodes > 1


@pytest.mark.benchmark(group="kernels")
def test_bench_graph_diffusion(benchmark, pubmed):
    """Length-6 diffusion on the depth-6 ego sub-graph of the pubmed stand-in."""
    subgraph, _ = extract_ego_subgraph(pubmed, 123, 6)
    initial = seed_vector(subgraph.num_nodes, subgraph.to_local(123))
    result = benchmark(graph_diffusion, subgraph.graph, initial, 6, 0.85)
    assert result.score_mass() == pytest.approx(1.0, abs=1e-6)


@pytest.mark.benchmark(group="kernels")
def test_bench_local_ppr_query(benchmark, citeseer):
    """The LocalPPR-CPU baseline answering one k=200 query."""
    solver = LocalPPRSolver(citeseer, track_memory=False)
    result = benchmark(solver.solve_seed, seed=42, k=200, length=6)
    assert result.top_k_nodes(1) == [42]


@pytest.mark.benchmark(group="kernels")
def test_bench_meloppr_query(benchmark, citeseer):
    """A full MeLoPPR query at the paper's default configuration."""
    config = MeLoPPRConfig.paper_default(0.02)
    solver = MeLoPPRSolver(
        citeseer,
        MeLoPPRConfig(
            stage_lengths=config.stage_lengths,
            selector=config.selector,
            score_table_factor=config.score_table_factor,
            track_memory=False,
        ),
    )
    result = benchmark(solver.solve_seed, seed=42, k=200, length=6)
    assert result.top_k_nodes(1) == [42]
