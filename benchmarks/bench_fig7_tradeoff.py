"""Benchmark E5 — regenerates Fig. 7 (precision-latency trade-off, all graphs)."""

from __future__ import annotations

import pytest

from repro.experiments.fig7_tradeoff import format_fig7, run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_tradeoff(benchmark, num_seeds_large):
    """Speedups, precision and BFS fraction per graph and operating point."""
    study = benchmark.pedantic(
        run_fig7,
        kwargs={
            "datasets": ("G1", "G2", "G3", "G4", "G5", "G6"),
            "ratios": (0.01, 0.10),
            "num_seeds": num_seeds_large,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig7(study))

    # Headline shapes of Fig. 7: precision rises and the FPGA speedup falls as
    # more next-stage nodes are computed; the co-designed system is never
    # slower than MeLoPPR-CPU.
    for dataset in study.datasets():
        points = study.for_dataset(dataset)
        assert points[0].precision <= points[-1].precision + 0.05
        assert points[-1].fpga_speedup <= points[0].fpga_speedup * 1.2
        for point in points:
            assert point.meloppr_fpga_seconds <= point.meloppr_cpu_seconds * 1.05
            assert 0.0 <= point.bfs_fraction <= 1.0
