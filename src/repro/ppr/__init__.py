"""PPR solvers and quality metrics (baselines + interfaces)."""

from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import (
    average_precision_over_seeds,
    precision_at_k,
    rank_agreement,
    recall_at_k,
    result_precision,
    score_l1_error,
)
from repro.ppr.monte_carlo import MonteCarloSolver
from repro.ppr.networkx_baseline import NetworkXPPRSolver
from repro.ppr.power_iteration import PowerIterationSolver

__all__ = [
    "PPRQuery",
    "PPRResult",
    "PPRSolver",
    "LocalPPRSolver",
    "average_precision_over_seeds",
    "precision_at_k",
    "rank_agreement",
    "recall_at_k",
    "result_precision",
    "score_l1_error",
    "MonteCarloSolver",
    "NetworkXPPRSolver",
    "PowerIterationSolver",
]
