"""Monte Carlo alpha-decay random-walk PPR.

The classic zero-index-space PPR estimator discussed in Sec. III of the
paper: launch many alpha-decay random walks (:math:`\\alpha`-RW) from the seed
and estimate ``pi(v)`` as the fraction of walks terminating at ``v``.  The
paper cites this as the "low space, high accesses" extreme of Fig. 2(a) — its
on-chip memory overhead is (near) zero, but every walk step is an off-chip
memory access on a large graph.

The walker therefore also counts the number of node-neighbourhood accesses it
performs so the hardware model can charge off-chip access cost to it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.graph.csr import CSRGraph
from repro.memory.tracker import MemoryTracker
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timing import TimingBreakdown
from repro.utils.validation import check_positive_int

__all__ = ["MonteCarloSolver"]


class MonteCarloSolver(PPRSolver):
    """Monte Carlo random-walk PPR estimator.

    Parameters
    ----------
    graph:
        Host graph.
    num_walks:
        Number of independent walks launched per query.
    rng:
        Seed or generator controlling the walks (deterministic by default).
    track_memory:
        Measure peak memory with ``tracemalloc``.
    """

    name = "monte-carlo"

    def __init__(
        self,
        graph: CSRGraph,
        num_walks: int = 10_000,
        rng: RngLike = None,
        track_memory: bool = False,
    ) -> None:
        super().__init__(graph)
        self._num_walks = check_positive_int(num_walks, "num_walks")
        self._rng = ensure_rng(rng)
        self._track_memory = bool(track_memory)

    def solve(self, query: PPRQuery) -> PPRResult:
        """Estimate PPR scores with ``num_walks`` terminating random walks."""
        timing = TimingBreakdown()
        tracker = MemoryTracker(enabled=self._track_memory)
        terminations = SparseScoreVector()
        memory_accesses = 0

        with tracker:
            with timing.measure("random_walks"):
                for _ in range(self._num_walks):
                    node = query.seed
                    for _ in range(query.length):
                        # Terminate with probability (1 - alpha).
                        if self._rng.random() >= query.alpha:
                            break
                        neighbors = self._graph.neighbors(node)
                        memory_accesses += 1
                        if neighbors.size == 0:
                            break
                        node = int(neighbors[int(self._rng.integers(0, neighbors.size))])
                    terminations.add(node, 1.0)
            with timing.measure("aggregation"):
                terminations.scale(1.0 / self._num_walks)

        return PPRResult(
            query=query,
            scores=terminations,
            timing=timing,
            peak_memory_bytes=tracker.peak_bytes,
            metadata={
                "num_walks": self._num_walks,
                "neighborhood_accesses": memory_accesses,
            },
        )
