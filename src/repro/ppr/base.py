"""Common interfaces for PPR solvers.

Every solver in the library — the single-stage local PPR baseline, the
full-graph power iteration, the Monte Carlo walker, the NetworkX wrapper and
MeLoPPR itself — implements :class:`PPRSolver` and returns a
:class:`PPRResult`, so experiments can swap solvers freely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.graph.csr import CSRGraph
from repro.utils.timing import TimingBreakdown

__all__ = ["PPRQuery", "PPRResult", "PPRSolver"]


@dataclass(frozen=True)
class PPRQuery:
    """One personalised-PageRank query.

    Attributes
    ----------
    seed:
        The source node ``s``.
    k:
        Number of top-ranked nodes requested (the paper uses ``k = 200``).
    alpha:
        Decay factor of the alpha-decay random walk.
    length:
        Maximum walk / diffusion length ``L`` (the paper uses ``L = 6``).
    """

    seed: int
    k: int = 200
    alpha: float = 0.85
    length: int = 6

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be > 0, got {self.k}")
        if self.length < 0:
            raise ValueError(f"length must be >= 0, got {self.length}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")


@dataclass
class PPRResult:
    """Result of one PPR query.

    Attributes
    ----------
    query:
        The query that produced this result.
    scores:
        Sparse PPR score vector over global node ids.
    timing:
        Wall-clock timing breakdown (``bfs``, ``diffusion``, ``aggregation``,
        ...).  The hardware co-simulation additionally attaches modelled
        FPGA time under dedicated bucket names.
    peak_memory_bytes:
        Peak working-set bytes measured (or modelled) while answering the
        query; the quantity compared in Table II.
    metadata:
        Free-form solver-specific details (sub-graph sizes, number of
        next-stage nodes expanded, cycle counts, ...).
    """

    query: PPRQuery
    scores: SparseScoreVector
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)
    peak_memory_bytes: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def top_k(self, k: Optional[int] = None) -> List[Tuple[int, float]]:
        """Top-``k`` (node, score) pairs; defaults to the query's ``k``."""
        return self.scores.top_k(self.query.k if k is None else k)

    def top_k_nodes(self, k: Optional[int] = None) -> List[int]:
        """Top-``k`` node ids; defaults to the query's ``k``."""
        return self.scores.top_k_nodes(self.query.k if k is None else k)

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock (or modelled) time spent answering the query."""
        return self.timing.total


class PPRSolver(abc.ABC):
    """Abstract base class of all PPR solvers.

    Parameters
    ----------
    graph:
        The host graph queries are answered on.
    """

    #: Short name used in reports and experiment tables.
    name: str = "ppr-solver"

    def __init__(self, graph: CSRGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> CSRGraph:
        """The host graph."""
        return self._graph

    def rebind_graph(self, graph: CSRGraph) -> None:
        """Point the solver at an updated host graph.

        Solvers read ``self._graph`` per call and keep no cross-call state
        derived from it (per-graph operator state is memoized on the graph
        object itself), so swapping the binding between calls is safe.  The
        serving engine's :meth:`~repro.serving.engine.QueryEngine.apply_update`
        calls this under its writer barrier after compacting an edge-update
        batch; the node set must be unchanged.
        """
        if graph.num_nodes != self._graph.num_nodes:
            raise ValueError(
                f"rebind_graph cannot change the node set: solver holds "
                f"{self._graph.num_nodes} nodes, got {graph.num_nodes}"
            )
        self._graph = graph

    @abc.abstractmethod
    def solve(self, query: PPRQuery) -> PPRResult:
        """Answer one PPR query."""

    def solve_seed(self, seed: int, k: int = 200, alpha: float = 0.85, length: int = 6) -> PPRResult:
        """Convenience wrapper building the :class:`PPRQuery` inline."""
        return self.solve(PPRQuery(seed=seed, k=k, alpha=alpha, length=length))

    def solve_many(self, queries: List[PPRQuery]) -> List[PPRResult]:
        """Answer a batch of queries through a serial query engine.

        Routing the batch through :class:`repro.serving.engine.QueryEngine`
        (serial backend, no cache) keeps one batching code path in the
        library while returning exactly what the historical sequential loop
        returned; per-query serving latency is attached under
        ``result.metadata["serving"]``.
        """
        from repro.serving.engine import QueryEngine  # deferred: avoids cycle

        return QueryEngine(self).solve_batch(list(queries))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(graph={self._graph.name!r})"
