"""Full-graph power-iteration PPR.

This is the textbook personalised-PageRank computation: iterate
``S <- (1 - alpha) * e_s + alpha * W * S`` over the *whole* graph until
convergence (or a fixed iteration count).  It serves two purposes here:

* as the **ground-truth oracle** for the precision metric — the paper's
  ``T(s, k)`` set of accurate top-k nodes, and
* as a memory-hungry reference point: its working set is ``O(|V|)`` regardless
  of how local the query is, illustrating why local methods matter on
  memory-constrained devices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.diffusion.transition import TransitionOperator
from repro.graph.csr import CSRGraph
from repro.memory.tracker import MemoryTracker
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.utils.timing import TimingBreakdown

__all__ = ["PowerIterationSolver"]


class PowerIterationSolver(PPRSolver):
    """Whole-graph power iteration PPR.

    Parameters
    ----------
    graph:
        Host graph.
    max_iterations:
        Iteration cap.  When ``None`` the query's ``length`` is used, which
        makes the solver an exact evaluator of the finite-length diffusion
        ``GD(L)(S0)`` — the paper's ground truth for precision.
    tolerance:
        Early-exit L1 tolerance on the score change between iterations.  Set
        to 0 to always run the full iteration count.
    track_memory:
        Measure peak memory with ``tracemalloc``.
    """

    name = "power-iteration"

    def __init__(
        self,
        graph: CSRGraph,
        max_iterations: Optional[int] = None,
        tolerance: float = 0.0,
        track_memory: bool = False,
    ) -> None:
        super().__init__(graph)
        if max_iterations is not None and max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self._max_iterations = max_iterations
        self._tolerance = float(tolerance)
        self._track_memory = bool(track_memory)
        self._operator = TransitionOperator(graph)

    def solve(self, query: PPRQuery) -> PPRResult:
        """Run power iteration from the query seed."""
        timing = TimingBreakdown()
        tracker = MemoryTracker(enabled=self._track_memory)
        iterations = (
            query.length if self._max_iterations is None else self._max_iterations
        )

        with tracker:
            with timing.measure("diffusion"):
                initial = np.zeros(self._graph.num_nodes, dtype=np.float64)
                initial[query.seed] = 1.0
                scores = initial.copy()
                performed = 0
                for _ in range(iterations):
                    updated = (1.0 - query.alpha) * initial + query.alpha * self._operator.apply(
                        scores
                    )
                    performed += 1
                    change = float(np.abs(updated - scores).sum())
                    scores = updated
                    if self._tolerance > 0 and change < self._tolerance:
                        break
            with timing.measure("aggregation"):
                sparse_scores = SparseScoreVector.from_dense(scores)

        return PPRResult(
            query=query,
            scores=sparse_scores,
            timing=timing,
            peak_memory_bytes=tracker.peak_bytes,
            metadata={"iterations": performed},
        )
