"""Quality metrics for approximate PPR results.

The paper's headline quality metric is *precision* (Sec. II, "Measurement"):

    ``Prec(s, k) = |{v : v in T_hat(s, k) and v in T(s, k)}| / k``

where ``T(s, k)`` is the accurate top-k node set and ``T_hat`` the
approximation.  Because top-k precision ignores ordering, we also provide
recall-at-k (identical to precision when both sets have size ``k``), a ranked
overlap measure and Kendall-tau-style rank agreement for ablation studies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.ppr.base import PPRResult

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "result_precision",
    "average_precision_over_seeds",
    "rank_agreement",
    "score_l1_error",
]


def precision_at_k(approximate: Iterable[int], exact: Iterable[int], k: int) -> float:
    """Top-k precision between an approximate and an exact node ranking.

    Parameters
    ----------
    approximate, exact:
        Node id sequences ranked by descending score; only their first ``k``
        entries are considered.
    k:
        The ``k`` of the query.
    """
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    approx_set = set(list(approximate)[:k])
    exact_set = set(list(exact)[:k])
    if not exact_set:
        return 1.0 if not approx_set else 0.0
    return len(approx_set & exact_set) / float(k)


def recall_at_k(approximate: Iterable[int], exact: Iterable[int], k: int) -> float:
    """Top-k recall: fraction of the exact top-k that the approximation found."""
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    approx_set = set(list(approximate)[:k])
    exact_set = set(list(exact)[:k])
    if not exact_set:
        return 1.0
    return len(approx_set & exact_set) / float(len(exact_set))


def result_precision(approximate: PPRResult, exact: PPRResult, k: int | None = None) -> float:
    """Precision between two :class:`PPRResult` objects (defaults to query ``k``)."""
    if k is None:
        k = approximate.query.k
    return precision_at_k(approximate.top_k_nodes(k), exact.top_k_nodes(k), k)


def average_precision_over_seeds(
    approximate_results: Sequence[PPRResult],
    exact_results: Sequence[PPRResult],
    k: int | None = None,
) -> float:
    """Mean precision across paired per-seed results (Fig. 6 / Fig. 7 averages)."""
    if len(approximate_results) != len(exact_results):
        raise ValueError("result sequences must have equal length")
    if not approximate_results:
        return 0.0
    values = [
        result_precision(approx, exact, k)
        for approx, exact in zip(approximate_results, exact_results)
    ]
    return float(np.mean(values))


def rank_agreement(approximate: Sequence[int], exact: Sequence[int], k: int) -> float:
    """Kendall-tau-style agreement over the intersection of two top-k lists.

    Returns a value in ``[-1, 1]``; 1 means the shared nodes appear in the
    same relative order.  Used by ablations that care about ordering, not just
    membership.
    """
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    approx_rank: Dict[int, int] = {node: i for i, node in enumerate(list(approximate)[:k])}
    exact_rank: Dict[int, int] = {node: i for i, node in enumerate(list(exact)[:k])}
    shared = [node for node in exact_rank if node in approx_rank]
    if len(shared) < 2:
        return 1.0
    concordant = 0
    discordant = 0
    for i in range(len(shared)):
        for j in range(i + 1, len(shared)):
            a = approx_rank[shared[i]] - approx_rank[shared[j]]
            b = exact_rank[shared[i]] - exact_rank[shared[j]]
            if a * b > 0:
                concordant += 1
            elif a * b < 0:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total


def score_l1_error(
    approximate: SparseScoreVector, exact: SparseScoreVector
) -> float:
    """L1 distance between two sparse score vectors (over their union support)."""
    nodes = set(approximate) | set(exact)
    return float(
        sum(abs(approximate.get(node) - exact.get(node)) for node in nodes)
    )
