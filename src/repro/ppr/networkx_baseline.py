"""NetworkX-based PPR baseline.

The paper's software implementation "is based on NetworkX Python library,
which also serves as the comparison baseline" (Sec. VI).  This wrapper runs
``networkx.pagerank`` with a personalisation vector concentrated on the seed
node, restricted to the depth-``L`` ego sub-graph (so it answers the same
local query as the other solvers rather than a global one).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.graph.bfs import extract_ego_subgraph
from repro.graph.csr import CSRGraph
from repro.memory.tracker import MemoryTracker
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.utils.timing import TimingBreakdown

__all__ = ["NetworkXPPRSolver"]


class NetworkXPPRSolver(PPRSolver):
    """Personalised PageRank via ``networkx.pagerank``.

    Parameters
    ----------
    graph:
        Host graph.
    local:
        When true (default) the computation is restricted to the depth-``L``
        ego sub-graph of the seed, matching the paper's local baseline.  When
        false the full graph is used (global personalised PageRank).
    max_iterations:
        Iteration cap handed to NetworkX; ``None`` uses the query length.
    track_memory:
        Measure peak memory with ``tracemalloc``.
    """

    name = "networkx-ppr"

    def __init__(
        self,
        graph: CSRGraph,
        local: bool = True,
        max_iterations: Optional[int] = None,
        track_memory: bool = False,
    ) -> None:
        super().__init__(graph)
        self._local = bool(local)
        self._max_iterations = max_iterations
        self._track_memory = bool(track_memory)
        self._nx_graph_cache: Optional[nx.Graph] = None

    def _full_nx_graph(self) -> nx.Graph:
        """Build (and cache) the NetworkX view of the host graph."""
        if self._nx_graph_cache is None:
            self._nx_graph_cache = self._graph.to_networkx()
        return self._nx_graph_cache

    def solve(self, query: PPRQuery) -> PPRResult:
        """Answer the query with ``networkx.pagerank``."""
        timing = TimingBreakdown()
        tracker = MemoryTracker(enabled=self._track_memory)
        iterations = (
            max(query.length, 1) if self._max_iterations is None else self._max_iterations
        )

        with tracker:
            if self._local:
                with timing.measure("bfs"):
                    subgraph, _ = extract_ego_subgraph(
                        self._graph, query.seed, query.length
                    )
                    nx_graph = subgraph.graph.to_networkx()
                    personalization = {subgraph.to_local(query.seed): 1.0}
            else:
                with timing.measure("bfs"):
                    subgraph = None
                    nx_graph = self._full_nx_graph()
                    personalization = {query.seed: 1.0}

            with timing.measure("diffusion"):
                try:
                    ranks = nx.pagerank(
                        nx_graph,
                        alpha=query.alpha,
                        personalization=personalization,
                        max_iter=iterations,
                        tol=1e-12,
                    )
                except nx.PowerIterationFailedConvergence:
                    # A fixed, small iteration budget frequently "fails" to
                    # converge by NetworkX's criterion; fall back to a larger
                    # budget with a loose tolerance, which always returns.
                    ranks = nx.pagerank(
                        nx_graph,
                        alpha=query.alpha,
                        personalization=personalization,
                        max_iter=max(100, iterations),
                        tol=1e-8,
                    )

            with timing.measure("aggregation"):
                scores = SparseScoreVector()
                if subgraph is not None:
                    for local_node, value in ranks.items():
                        scores.add(subgraph.to_global(int(local_node)), float(value))
                else:
                    for node, value in ranks.items():
                        scores.add(int(node), float(value))

        return PPRResult(
            query=query,
            scores=scores,
            timing=timing,
            peak_memory_bytes=tracker.peak_bytes,
            metadata={"local": self._local, "iterations": iterations},
        )
