"""Single-stage local PPR — the paper's CPU baseline ("LocalPPR-CPU").

The baseline answers a query by

1. extracting the depth-``L`` ego sub-graph ``G_L(s)`` with BFS (this is the
   "ideal method" of Sec. IV-A / Fig. 2(b): the whole related sub-graph is
   loaded into memory), then
2. running a single graph diffusion of length ``L`` on that sub-graph.

Its memory footprint is ``O(G_L(s))``, which is what Table II compares
MeLoPPR against, and its latency is dominated by the exponentially growing
BFS plus the diffusion on the large sub-graph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.diffusion.sparse_vector import SparseScoreVector
from repro.graph.bfs import extract_ego_subgraph
from repro.graph.csr import CSRGraph
from repro.memory.tracker import MemoryTracker
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.utils.timing import TimingBreakdown

__all__ = ["LocalPPRSolver"]


class LocalPPRSolver(PPRSolver):
    """Single-stage local PPR on the depth-``L`` ego sub-graph.

    Parameters
    ----------
    graph:
        Host graph.
    track_memory:
        When true (default) the solver measures its peak working set with
        :class:`~repro.memory.tracker.MemoryTracker` (``tracemalloc``), which
        is how the paper captures CPU memory for Table II.  Disable for
        latency-sensitive benchmarking where the tracing overhead matters.
    """

    name = "local-ppr-cpu"

    def __init__(self, graph: CSRGraph, track_memory: bool = True) -> None:
        super().__init__(graph)
        self._track_memory = bool(track_memory)

    def solve(self, query: PPRQuery) -> PPRResult:
        """Answer a query with BFS extraction plus one full-length diffusion."""
        timing = TimingBreakdown()
        tracker = MemoryTracker(enabled=self._track_memory)

        with tracker:
            with timing.measure("bfs"):
                subgraph, bfs = extract_ego_subgraph(
                    self._graph, query.seed, query.length
                )
            with timing.measure("diffusion"):
                initial = seed_vector(subgraph.num_nodes, subgraph.to_local(query.seed))
                diffusion = graph_diffusion(
                    subgraph.graph, initial, query.length, query.alpha
                )
            with timing.measure("aggregation"):
                scores = SparseScoreVector.from_arrays(
                    subgraph.global_ids, diffusion.accumulated
                )
                scores.prune(0.0)

        # The analytical working-set estimate mirrors what the sub-graph and
        # score vectors occupy; used as a fallback when tracing is disabled.
        modelled_bytes = (
            subgraph.graph.nbytes()
            + diffusion.accumulated.nbytes
            + diffusion.residual.nbytes
        )
        peak = tracker.peak_bytes if self._track_memory else modelled_bytes

        return PPRResult(
            query=query,
            scores=scores,
            timing=timing,
            peak_memory_bytes=peak,
            metadata={
                "subgraph_nodes": subgraph.num_nodes,
                "subgraph_edges": subgraph.num_edges,
                "bfs_edges_scanned": bfs.edges_scanned,
                "propagations": diffusion.propagations,
                "modelled_bytes": modelled_bytes,
            },
        )
