"""Processing-element (PE) model of the FPGA diffusion accelerator.

Fig. 4 of the paper shows one PE built from five components:

1. a **sub-graph table** storing, per node, the first/last neighbour address
   plus the concatenated neighbour lists,
2. a local **accumulated score table** (``pi_a`` per node),
3. a local **residual score table** (``pi_r`` per node),
4. a **diffuser** that walks the sub-graph table, fetches scores, computes one
   propagation and writes updated scores back, and
5. an **accumulator** folding propagation results into ``pi_a`` / ``pi_r``
   following the dataflow of Fig. 3(b).

The PE here is an *analytical cycle model*: given a diffusion task (sub-graph
size and the adjacency entries actually traversed), it reports the cycles each
phase takes and the BRAM bytes the three tables occupy.  The cycle
coefficients are per-operation costs of the pipelined HLS implementation:
one adjacency entry per cycle through the diffuser, plus per-node costs for
score reads/writes, table initialisation and the local aggregation pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.memory_model import subgraph_bram_bytes

__all__ = ["DiffusionTask", "PECycleCosts", "PECycleReport", "ProcessingElement"]


@dataclass(frozen=True)
class DiffusionTask:
    """One sub-graph diffusion to be executed on a PE.

    Attributes
    ----------
    task_id:
        Sequential identifier (dispatch order).
    stage_index:
        Which MeLoPPR stage the task belongs to (0 = stage one).
    subgraph_nodes, subgraph_edges:
        Size of the sub-graph loaded into the PE tables.
    propagations:
        Adjacency entries traversed across all diffusion iterations (from the
        software kernel's work counter).
    length:
        Number of diffusion iterations.
    bfs_edges_scanned:
        CPU-side BFS work that produced the sub-graph (charged to the host).
    """

    task_id: int
    stage_index: int
    subgraph_nodes: int
    subgraph_edges: int
    propagations: int
    length: int
    bfs_edges_scanned: int

    def __post_init__(self) -> None:
        if min(
            self.subgraph_nodes,
            self.subgraph_edges,
            self.propagations,
            self.length,
            self.bfs_edges_scanned,
        ) < 0:
            raise ValueError("task size fields must be non-negative")
        if self.subgraph_nodes == 0:
            raise ValueError("a diffusion task needs at least one node")

    @property
    def bram_bytes(self) -> int:
        """BRAM bytes of the three per-sub-graph tables for this task."""
        return subgraph_bram_bytes(self.subgraph_nodes, self.subgraph_edges)


@dataclass(frozen=True)
class PECycleCosts:
    """Per-operation cycle costs of the PE pipeline.

    Attributes
    ----------
    cycles_per_edge:
        Diffuser cost per adjacency entry traversed (pipelined, II = 1).
    cycles_per_node_per_iteration:
        Score-table read/update cost per node per iteration (accumulator).
    cycles_per_node_load:
        Table-initialisation cost per node when a new sub-graph is loaded.
    cycles_per_node_aggregate:
        Local-aggregation cost per node when folding the finished scores into
        the global score table.
    fixed_overhead_cycles:
        Per-task control overhead (start/drain of the pipeline).
    """

    cycles_per_edge: float = 1.0
    cycles_per_node_per_iteration: float = 2.0
    cycles_per_node_load: float = 1.0
    cycles_per_node_aggregate: float = 1.0
    fixed_overhead_cycles: float = 64.0


@dataclass(frozen=True)
class PECycleReport:
    """Cycle breakdown of one task on one PE."""

    task_id: int
    load_cycles: float
    diffusion_cycles: float
    aggregation_cycles: float
    score_table_writes: int

    @property
    def total_cycles(self) -> float:
        """All cycles the PE is busy with this task (excluding stalls)."""
        return self.load_cycles + self.diffusion_cycles + self.aggregation_cycles


class ProcessingElement:
    """Analytical cycle model of one PE.

    Parameters
    ----------
    costs:
        Per-operation cycle costs (defaults model the paper's pipelined HLS
        design at 100 MHz).
    """

    def __init__(self, costs: PECycleCosts | None = None) -> None:
        self._costs = costs if costs is not None else PECycleCosts()

    @property
    def costs(self) -> PECycleCosts:
        """The cycle-cost coefficients."""
        return self._costs

    def execute(self, task: DiffusionTask) -> PECycleReport:
        """Return the cycle breakdown for ``task``.

        The diffuser streams ``propagations`` adjacency entries at one per
        cycle; the accumulator touches every node once per iteration; loading
        initialises every node entry of the three tables; aggregation reads
        every node's final score once.
        """
        costs = self._costs
        load = (
            costs.cycles_per_node_load * task.subgraph_nodes
            + costs.fixed_overhead_cycles
        )
        diffusion = (
            costs.cycles_per_edge * task.propagations
            + costs.cycles_per_node_per_iteration
            * task.subgraph_nodes
            * max(task.length, 1)
        )
        aggregation = costs.cycles_per_node_aggregate * task.subgraph_nodes
        # Score-table traffic the scheduler must arbitrate between PEs: one
        # write per propagated edge (the diffuser pushing mass to a neighbour)
        # plus one accumulated/residual update per node per iteration (the
        # accumulator of Fig. 3(b)).
        writes = int(task.propagations + task.subgraph_nodes * max(task.length, 1))
        return PECycleReport(
            task_id=task.task_id,
            load_cycles=load,
            diffusion_cycles=diffusion,
            aggregation_cycles=aggregation,
            score_table_writes=writes,
        )
