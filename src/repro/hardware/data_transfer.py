"""CPU ↔ FPGA data-transfer model (the streaming interface of Fig. 4).

Three transfer types occur per query:

1. **Sub-graph upload** (CPU → FPGA) — the reorganised node/neighbour lists of
   each extracted sub-graph are streamed into the PE's sub-graph table.
2. **Next-stage node download** (FPGA → CPU) — after a stage's diffusions, the
   ids of the selected next-stage nodes are streamed back so the CPU can run
   the next round of BFS extractions.
3. **Final result download** (FPGA → CPU) — the top-``k`` entries of the
   global score table, sent exactly once per query.  Keeping the global score
   table in BRAM (Sec. V-B) is precisely what avoids a per-diffusion score
   download here.

Each transfer is modelled as ``fixed_latency + bytes / bandwidth`` over the
board's PCIe-style streaming link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.memory_model import BYTES_PER_WORD, subgraph_table_bytes
from repro.hardware.platform import FPGASpec, KC705

__all__ = ["TransferModel", "TransferReport"]


@dataclass(frozen=True)
class TransferReport:
    """Bytes moved and seconds spent on the host↔card link for one query."""

    upload_bytes: int
    download_bytes: int
    num_transfers: int
    seconds: float

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in both directions."""
        return self.upload_bytes + self.download_bytes


class TransferModel:
    """Latency/bandwidth model of the host↔FPGA streaming interface.

    Parameters
    ----------
    device:
        The FPGA board (supplies bandwidth and per-transfer latency).
    """

    def __init__(self, device: FPGASpec = KC705) -> None:
        self._device = device

    @property
    def device(self) -> FPGASpec:
        """The FPGA board description."""
        return self._device

    # ------------------------------------------------------------------
    def transfer_seconds(self, num_bytes: int) -> float:
        """Seconds for a single transfer of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        return self._device.pcie_latency_s + num_bytes / self._device.pcie_bandwidth_bytes_per_s

    def subgraph_upload_bytes(self, num_nodes: int, num_edges: int) -> int:
        """Bytes of one sub-graph upload (the sub-graph table contents)."""
        return subgraph_table_bytes(num_nodes, num_edges)

    def result_download_bytes(self, k: int) -> int:
        """Bytes of the final top-``k`` download (node id + score per entry)."""
        if k <= 0:
            raise ValueError("k must be > 0")
        return 2 * BYTES_PER_WORD * k

    def next_stage_download_bytes(self, num_selected: int) -> int:
        """Bytes to return ``num_selected`` next-stage node ids to the CPU."""
        if num_selected < 0:
            raise ValueError("num_selected must be >= 0")
        return BYTES_PER_WORD * num_selected

    # ------------------------------------------------------------------
    def query_report(
        self,
        subgraph_sizes: list[tuple[int, int]],
        num_next_stage_nodes: int,
        k: int,
    ) -> TransferReport:
        """Aggregate transfer report for one MeLoPPR query.

        Parameters
        ----------
        subgraph_sizes:
            ``(num_nodes, num_edges)`` of every sub-graph uploaded.
        num_next_stage_nodes:
            Number of next-stage node ids sent back to the CPU between stages.
        k:
            Top-k of the final result download.
        """
        upload_bytes = 0
        seconds = 0.0
        transfers = 0
        for num_nodes, num_edges in subgraph_sizes:
            chunk = self.subgraph_upload_bytes(num_nodes, num_edges)
            upload_bytes += chunk
            seconds += self.transfer_seconds(chunk)
            transfers += 1

        download_bytes = self.next_stage_download_bytes(num_next_stage_nodes)
        if num_next_stage_nodes > 0:
            seconds += self.transfer_seconds(download_bytes)
            transfers += 1

        result_bytes = self.result_download_bytes(k)
        download_bytes += result_bytes
        seconds += self.transfer_seconds(result_bytes)
        transfers += 1

        return TransferReport(
            upload_bytes=upload_bytes,
            download_bytes=download_bytes,
            num_transfers=transfers,
            seconds=seconds,
        )
