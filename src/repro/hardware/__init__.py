"""Hardware simulation substrate: PE model, scheduler, FPGA accelerator, co-sim."""

from repro.hardware.accelerator import FPGAAccelerator, FPGAExecutionReport
from repro.hardware.cosim import CoSimulationReport, MeLoPPRFPGASolver, tasks_from_records
from repro.hardware.data_transfer import TransferModel, TransferReport
from repro.hardware.memory_model import (
    BYTES_PER_WORD,
    FPGAMemoryModel,
    accumulated_table_bytes,
    global_score_table_bytes,
    residual_table_bytes,
    subgraph_bram_bytes,
    subgraph_table_bytes,
)
from repro.hardware.pe import DiffusionTask, PECycleCosts, PECycleReport, ProcessingElement
from repro.hardware.platform import CPUSpec, FPGASpec, KC705, LAPTOP_CPU
from repro.hardware.resources import PAPER_TABLE_I, ResourceModel, ResourceUsage
from repro.hardware.scheduler import (
    ScheduleResult,
    ScheduledTask,
    Scheduler,
    assign_tasks,
    conflict_probability,
    conflict_stall_cycles,
)

__all__ = [
    "FPGAAccelerator",
    "FPGAExecutionReport",
    "CoSimulationReport",
    "MeLoPPRFPGASolver",
    "tasks_from_records",
    "TransferModel",
    "TransferReport",
    "BYTES_PER_WORD",
    "FPGAMemoryModel",
    "accumulated_table_bytes",
    "global_score_table_bytes",
    "residual_table_bytes",
    "subgraph_bram_bytes",
    "subgraph_table_bytes",
    "DiffusionTask",
    "PECycleCosts",
    "PECycleReport",
    "ProcessingElement",
    "CPUSpec",
    "FPGASpec",
    "KC705",
    "LAPTOP_CPU",
    "PAPER_TABLE_I",
    "ResourceModel",
    "ResourceUsage",
    "ScheduleResult",
    "ScheduledTask",
    "Scheduler",
    "assign_tasks",
    "conflict_probability",
    "conflict_stall_cycles",
]
