"""The FPGA accelerator model: P processing elements + scheduler + transfers.

This module assembles the PE cycle model, the conflict-arbitrating scheduler
and the data-transfer model into a single object that, given the diffusion
tasks of one MeLoPPR query, reports

* the FPGA latency split into diffusion, scheduling and data-movement time
  (the stacked components of Fig. 5),
* the peak per-PE BRAM requirement (the MeLoPPR-FPGA memory column of
  Table II), and
* the resource utilisation of the chosen parallelism (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hardware.data_transfer import TransferModel, TransferReport
from repro.hardware.memory_model import FPGAMemoryModel
from repro.hardware.pe import DiffusionTask, PECycleCosts, ProcessingElement
from repro.hardware.platform import FPGASpec, KC705
from repro.hardware.resources import ResourceModel, ResourceUsage
from repro.hardware.scheduler import Scheduler, ScheduleResult

__all__ = ["FPGAExecutionReport", "FPGAAccelerator"]


@dataclass(frozen=True)
class FPGAExecutionReport:
    """Modelled outcome of running one query's diffusion tasks on the FPGA.

    Attributes
    ----------
    parallelism:
        Number of PEs used.
    diffusion_seconds:
        Time the PEs spend doing useful diffusion work (critical path over the
        PE timeline, excluding stalls).
    scheduling_seconds:
        Extra time caused by score-table write conflicts between diffusers.
    data_movement_seconds:
        Host↔card streaming time (sub-graph uploads + result download).
    makespan_seconds:
        End-to-end FPGA-side latency (critical path + data movement).
    peak_pe_bram_bytes:
        Largest per-sub-graph table footprint across all tasks — the on-chip
        memory requirement reported in Table II.
    total_bram_bytes:
        ``P`` worst-case PE footprints plus the global score table.
    schedule:
        The underlying cycle-level schedule.
    transfers:
        The underlying transfer report.
    resources:
        LUT/BRAM/DSP utilisation of this parallelism on the device.
    """

    parallelism: int
    diffusion_seconds: float
    scheduling_seconds: float
    data_movement_seconds: float
    makespan_seconds: float
    peak_pe_bram_bytes: int
    total_bram_bytes: int
    schedule: ScheduleResult
    transfers: TransferReport
    resources: ResourceUsage

    @property
    def fpga_seconds(self) -> float:
        """Total modelled FPGA-side time (what the co-simulation adds to CPU time)."""
        return self.makespan_seconds


class FPGAAccelerator:
    """Analytical model of the MeLoPPR FPGA accelerator.

    Parameters
    ----------
    parallelism:
        Number of processing elements ``P`` (the paper evaluates 1–16).
    device:
        FPGA board description (defaults to the KC705).
    pe_costs:
        Optional override of the PE cycle-cost coefficients.
    k:
        Top-k of the queries (sizes the global score table).
    score_table_factor:
        The ``c`` of the global score table.
    """

    def __init__(
        self,
        parallelism: int = 16,
        device: FPGASpec = KC705,
        pe_costs: Optional[PECycleCosts] = None,
        k: int = 200,
        score_table_factor: int = 10,
    ) -> None:
        if parallelism <= 0:
            raise ValueError(f"parallelism must be > 0, got {parallelism}")
        self._parallelism = parallelism
        self._device = device
        self._pe = ProcessingElement(pe_costs)
        self._scheduler = Scheduler(parallelism, self._pe)
        self._transfer = TransferModel(device)
        self._memory = FPGAMemoryModel(
            parallelism=parallelism, k=k, score_table_factor=score_table_factor
        )
        self._resources = ResourceModel(device=device)
        self._k = k

    # ------------------------------------------------------------------
    @property
    def parallelism(self) -> int:
        """Number of PEs."""
        return self._parallelism

    @property
    def device(self) -> FPGASpec:
        """The FPGA board."""
        return self._device

    @property
    def memory_model(self) -> FPGAMemoryModel:
        """The BRAM byte model for this configuration."""
        return self._memory

    # ------------------------------------------------------------------
    def execute(self, tasks: Sequence[DiffusionTask]) -> FPGAExecutionReport:
        """Model the execution of ``tasks`` and return the latency breakdown."""
        tasks = list(tasks)
        schedule = self._scheduler.run(tasks)

        # Split the makespan into useful diffusion time and conflict stalls in
        # proportion to the cycle totals: the stall fraction of the work is
        # also the stall fraction of the critical path under the greedy
        # first-idle-PE policy (stalls are spread uniformly over the tasks).
        makespan_seconds = self._device.cycles_to_seconds(schedule.makespan_cycles)
        busy_and_stall = schedule.diffusion_cycles + schedule.scheduling_cycles
        stall_fraction = (
            schedule.scheduling_cycles / busy_and_stall if busy_and_stall > 0 else 0.0
        )
        scheduling_seconds = makespan_seconds * stall_fraction
        diffusion_seconds = makespan_seconds - scheduling_seconds

        num_next_stage = sum(1 for task in tasks if task.stage_index > 0)
        transfers = self._transfer.query_report(
            subgraph_sizes=[(t.subgraph_nodes, t.subgraph_edges) for t in tasks],
            num_next_stage_nodes=num_next_stage,
            k=self._k,
        )

        peak_pe_bytes = max((task.bram_bytes for task in tasks), default=0)
        max_nodes = max((task.subgraph_nodes for task in tasks), default=0)
        max_edges = max((task.subgraph_edges for task in tasks), default=0)
        total_bram = self._memory.total_bytes(max_nodes, max_edges) if tasks else 0

        total_seconds = (
            diffusion_seconds + scheduling_seconds + transfers.seconds
        )

        return FPGAExecutionReport(
            parallelism=self._parallelism,
            diffusion_seconds=diffusion_seconds,
            scheduling_seconds=scheduling_seconds,
            data_movement_seconds=transfers.seconds,
            makespan_seconds=total_seconds,
            peak_pe_bram_bytes=peak_pe_bytes,
            total_bram_bytes=total_bram,
            schedule=schedule,
            transfers=transfers,
            resources=self._resources.usage(self._parallelism),
        )

    def fits_on_device(self, tasks: Sequence[DiffusionTask]) -> bool:
        """Whether the worst-case sub-graph of ``tasks`` fits in device BRAM."""
        max_nodes = max((task.subgraph_nodes for task in tasks), default=0)
        max_edges = max((task.subgraph_edges for task in tasks), default=0)
        return self._memory.fits(max_nodes, max_edges, self._device.total_bram_bytes)
