"""CPU + FPGA co-simulation: the "MeLoPPR-FPGA" system of the paper.

The co-designed system of Fig. 4 splits the work between the processing
system (PS — the host CPU) and the programmable logic (PL — the FPGA):

* the **CPU** extracts sub-graphs with BFS, reorganises them into node /
  neighbour lists, streams them to the FPGA and collects the final result;
* the **FPGA** runs the graph diffusions on ``P`` parallel PEs, maintains the
  per-PE score tables and the global top-``c*k`` score table, and only ships
  the final top-``k`` nodes back.

:class:`MeLoPPRFPGASolver` produces *numerically identical* results to the
CPU solver (same sub-graphs, same diffusions, same aggregation) — what
changes is the latency accounting: the diffusion/aggregation time is replaced
by the modelled FPGA time, while the BFS time remains the real measured CPU
time.  This mirrors the paper's measurement methodology, where speedups are
reported against the measured CPU baseline and the FPGA contribution comes
from the 100 MHz implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.graph.csr import CSRGraph
from repro.hardware.accelerator import FPGAAccelerator, FPGAExecutionReport
from repro.hardware.pe import DiffusionTask, PECycleCosts
from repro.hardware.platform import CPUSpec, FPGASpec, KC705, LAPTOP_CPU
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver, StageTaskRecord
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.utils.timing import TimingBreakdown

__all__ = ["CoSimulationReport", "MeLoPPRFPGASolver", "tasks_from_records"]


def tasks_from_records(
    records: List[StageTaskRecord], stage_lengths: tuple[int, ...]
) -> List[DiffusionTask]:
    """Convert the solver's :class:`StageTaskRecord` list into hardware tasks."""
    tasks: List[DiffusionTask] = []
    for task_id, record in enumerate(records):
        stage_length = stage_lengths[min(record.stage_index, len(stage_lengths) - 1)]
        tasks.append(
            DiffusionTask(
                task_id=task_id,
                stage_index=record.stage_index,
                subgraph_nodes=record.subgraph_nodes,
                subgraph_edges=record.subgraph_edges,
                propagations=record.propagations,
                length=stage_length,
                bfs_edges_scanned=record.bfs_edges_scanned,
            )
        )
    return tasks


@dataclass(frozen=True)
class CoSimulationReport:
    """Latency decomposition of one co-simulated query.

    Attributes
    ----------
    cpu_seconds:
        Host-side time (BFS extraction + sub-graph reorganisation + control).
    fpga_report:
        The modelled FPGA execution (diffusion / scheduling / data movement).
    total_seconds:
        End-to-end query latency of the co-designed system.
    bfs_fraction:
        Share of the total latency spent in CPU BFS — the light-blue bars of
        Fig. 7; it grows with ``P`` because the FPGA part shrinks.
    """

    cpu_seconds: float
    fpga_report: FPGAExecutionReport
    total_seconds: float
    bfs_fraction: float


class MeLoPPRFPGASolver(PPRSolver):
    """MeLoPPR on the hybrid CPU + FPGA platform (modelled).

    Parameters
    ----------
    graph:
        Host graph.
    config:
        MeLoPPR algorithm configuration (shared with the CPU solver).
    parallelism:
        Number of FPGA PEs ``P`` (the paper uses 16 for the Fig. 7 results).
    device:
        FPGA board description.
    cpu:
        Host CPU description.  Only used when ``use_measured_cpu_time`` is
        false; by default the real measured BFS time is charged to the CPU,
        like the paper does.
    use_measured_cpu_time:
        When true (default) the CPU share of the latency is the wall-clock
        BFS/preparation time measured while running the algorithm.  When
        false, an analytical estimate from ``cpu.bfs_seconds`` is used, which
        makes results machine-independent (useful for unit tests).
    pe_costs:
        Optional override of the PE cycle-cost coefficients.
    """

    name = "meloppr-fpga"

    def __init__(
        self,
        graph: CSRGraph,
        config: Optional[MeLoPPRConfig] = None,
        parallelism: int = 16,
        device: FPGASpec = KC705,
        cpu: CPUSpec = LAPTOP_CPU,
        use_measured_cpu_time: bool = True,
        pe_costs: Optional[PECycleCosts] = None,
    ) -> None:
        super().__init__(graph)
        self._config = config if config is not None else MeLoPPRConfig.paper_default()
        self._parallelism = parallelism
        self._device = device
        self._cpu = cpu
        self._use_measured_cpu_time = bool(use_measured_cpu_time)
        self._pe_costs = pe_costs
        self._software = MeLoPPRSolver(graph, self._config)

    # ------------------------------------------------------------------
    @property
    def config(self) -> MeLoPPRConfig:
        """The MeLoPPR algorithm configuration."""
        return self._config

    @property
    def parallelism(self) -> int:
        """Number of modelled PEs."""
        return self._parallelism

    # ------------------------------------------------------------------
    def solve(self, query: PPRQuery) -> PPRResult:
        """Answer the query and attach the co-simulation latency breakdown."""
        software_result = self._software.solve(query)
        records: List[StageTaskRecord] = software_result.metadata["tasks"]
        stage_lengths: tuple[int, ...] = software_result.metadata["stage_lengths"]
        tasks = tasks_from_records(records, stage_lengths)

        accelerator = FPGAAccelerator(
            parallelism=self._parallelism,
            device=self._device,
            pe_costs=self._pe_costs,
            k=query.k,
            score_table_factor=self._config.score_table_factor or 10,
        )
        fpga_report = accelerator.execute(tasks)

        if self._use_measured_cpu_time:
            cpu_seconds = software_result.timing.seconds.get("bfs", 0.0)
        else:
            cpu_seconds = self._cpu.bfs_seconds(
                sum(task.bfs_edges_scanned for task in tasks)
            )

        total_seconds = cpu_seconds + fpga_report.fpga_seconds
        bfs_fraction = cpu_seconds / total_seconds if total_seconds > 0 else 0.0
        report = CoSimulationReport(
            cpu_seconds=cpu_seconds,
            fpga_report=fpga_report,
            total_seconds=total_seconds,
            bfs_fraction=bfs_fraction,
        )

        timing = TimingBreakdown()
        timing.add("cpu_bfs", cpu_seconds)
        timing.add("fpga_diffusion", fpga_report.diffusion_seconds)
        timing.add("fpga_scheduling", fpga_report.scheduling_seconds)
        timing.add("fpga_data_movement", fpga_report.data_movement_seconds)

        metadata = dict(software_result.metadata)
        metadata.update(
            {
                "parallelism": self._parallelism,
                "cosim": report,
                "fpga_peak_pe_bram_bytes": fpga_report.peak_pe_bram_bytes,
                "fpga_total_bram_bytes": fpga_report.total_bram_bytes,
                "resources": fpga_report.resources,
            }
        )

        return PPRResult(
            query=query,
            scores=software_result.scores,
            timing=timing,
            peak_memory_bytes=fpga_report.peak_pe_bram_bytes,
            metadata=metadata,
        )
