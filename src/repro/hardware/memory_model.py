"""FPGA on-chip memory model (the BRAM byte formula of Sec. VI-B).

For each sub-graph loaded into a processing element, three tables are kept in
BRAM (Fig. 4):

* the **sub-graph table** ``Bg`` — per node the first/last neighbour address
  (2 words per node) plus the concatenated neighbour lists (2 words per
  undirected edge, one per direction),
* the **accumulated score table** ``Ba`` — 2 words per node (node id and
  ``pi_a``), and
* the **residual score table** ``Br`` — 1 word per node (``pi_r``; the node id
  is shared with ``Ba``).

With 4-byte words this is exactly the paper's formula:

``BRAM_bytes = Bg + Ba + Br
            = 4 * (2*|V| + 2*|E|  +  2*|V|  +  |V|)``

The global score table adds ``2 * c * k`` words on top (node id + score per
entry), and every PE replicates the three per-sub-graph tables.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BYTES_PER_WORD",
    "subgraph_table_bytes",
    "accumulated_table_bytes",
    "residual_table_bytes",
    "subgraph_bram_bytes",
    "global_score_table_bytes",
    "FPGAMemoryModel",
]

#: The accelerator stores scores and addresses as 32-bit words (Sec. V-A).
BYTES_PER_WORD = 4


def subgraph_table_bytes(num_nodes: int, num_edges: int) -> int:
    """Bytes of the sub-graph table ``Bg = 4 * (2|V| + 2|E|)``."""
    _check(num_nodes, num_edges)
    return BYTES_PER_WORD * (2 * num_nodes + 2 * num_edges)


def accumulated_table_bytes(num_nodes: int) -> int:
    """Bytes of the accumulated score table ``Ba = 4 * 2|V|``."""
    _check(num_nodes, 0)
    return BYTES_PER_WORD * 2 * num_nodes


def residual_table_bytes(num_nodes: int) -> int:
    """Bytes of the residual score table ``Br = 4 * |V|``."""
    _check(num_nodes, 0)
    return BYTES_PER_WORD * num_nodes


def subgraph_bram_bytes(num_nodes: int, num_edges: int) -> int:
    """Total per-sub-graph BRAM bytes: ``Bg + Ba + Br`` (the Table II formula)."""
    return (
        subgraph_table_bytes(num_nodes, num_edges)
        + accumulated_table_bytes(num_nodes)
        + residual_table_bytes(num_nodes)
    )


def global_score_table_bytes(k: int, factor: int) -> int:
    """Bytes of the global top-``c*k`` score table (node id + score per entry)."""
    if k <= 0 or factor <= 0:
        raise ValueError("k and factor must be > 0")
    return BYTES_PER_WORD * 2 * k * factor


def _check(num_nodes: int, num_edges: int) -> None:
    if num_nodes < 0 or num_edges < 0:
        raise ValueError("node and edge counts must be >= 0")


@dataclass(frozen=True)
class FPGAMemoryModel:
    """Aggregate BRAM requirement of a full accelerator configuration.

    Attributes
    ----------
    parallelism:
        Number of processing elements ``P`` (each holds its own tables).
    k:
        Top-k of the query.
    score_table_factor:
        The ``c`` of the global score table.
    """

    parallelism: int = 1
    k: int = 200
    score_table_factor: int = 10

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise ValueError("parallelism must be > 0")
        if self.k <= 0:
            raise ValueError("k must be > 0")
        if self.score_table_factor <= 0:
            raise ValueError("score_table_factor must be > 0")

    def per_pe_bytes(self, num_nodes: int, num_edges: int) -> int:
        """BRAM bytes one PE needs to host a ``(num_nodes, num_edges)`` sub-graph."""
        return subgraph_bram_bytes(num_nodes, num_edges)

    def total_bytes(self, num_nodes: int, num_edges: int) -> int:
        """BRAM bytes for ``P`` PEs each holding a worst-case sub-graph, plus
        the shared global score table."""
        return self.parallelism * self.per_pe_bytes(
            num_nodes, num_edges
        ) + global_score_table_bytes(self.k, self.score_table_factor)

    def fits(self, num_nodes: int, num_edges: int, capacity_bytes: int) -> bool:
        """Whether the configuration fits in ``capacity_bytes`` of BRAM."""
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        return self.total_bytes(num_nodes, num_edges) <= capacity_bytes
