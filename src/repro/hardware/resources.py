"""FPGA resource-utilisation model (LUT / BRAM / DSP), reproducing Table I.

Table I of the paper reports KC705 utilisation for parallelism ``P`` from 1 to
16:

=========  =====  =====  =====  =====  =====
Resource   P=1    P=2    P=4    P=8    P=16
=========  =====  =====  =====  =====  =====
LUTs       0.9 %  3.1 %  8.9 %  21.8 % 70.6 %
BRAM       4.8 %  9.9 %  19.2 % 36.1 % 72.8 %
DSP        <0.1 % (divisions implemented with logic)
=========  =====  =====  =====  =====  =====

The model decomposes utilisation into a fixed infrastructure part (PCIe/AXI
streaming interface, scheduler skeleton, global score table) plus a per-PE
part whose LUT cost grows super-linearly with ``P`` because the scheduler's
conflict-resolution crossbar between ``P`` diffusers and ``P`` score tables
scales roughly with ``P^2``.  The coefficients below are fitted to Table I and
the model exposes them so ablations can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.platform import FPGASpec, KC705

__all__ = ["ResourceUsage", "ResourceModel", "PAPER_TABLE_I"]

#: The utilisation percentages reported in Table I (fractions of the KC705).
PAPER_TABLE_I: Dict[int, Dict[str, float]] = {
    1: {"lut": 0.009, "bram": 0.048},
    2: {"lut": 0.031, "bram": 0.099},
    4: {"lut": 0.089, "bram": 0.192},
    8: {"lut": 0.218, "bram": 0.361},
    16: {"lut": 0.706, "bram": 0.728},
}


@dataclass(frozen=True)
class ResourceUsage:
    """Absolute and fractional resource usage of one accelerator build."""

    parallelism: int
    luts: int
    bram_blocks: int
    dsps: int
    lut_fraction: float
    bram_fraction: float
    dsp_fraction: float

    def fits(self) -> bool:
        """Whether every resource class fits on the device (fraction <= 1)."""
        return (
            self.lut_fraction <= 1.0
            and self.bram_fraction <= 1.0
            and self.dsp_fraction <= 1.0
        )


@dataclass(frozen=True)
class ResourceModel:
    """Parametric LUT/BRAM/DSP cost model of the MeLoPPR accelerator.

    The defaults are fitted to Table I on the KC705:

    * ``luts = lut_per_pe * P ** lut_exponent`` — super-linear in ``P``
      because the scheduler's conflict-resolution crossbar between ``P``
      diffusers and ``P`` score tables grows with the number of
      diffuser/table pairs, not just the number of PEs.
    * ``bram_blocks = bram_base + bram_per_pe * P`` — each PE replicates the
      three per-sub-graph tables; the base term is the global score table and
      the streaming interface FIFOs.
    * ``dsps = dsp_base`` — the datapath avoids DSP dividers entirely (the
      alpha multiplication is a shift, Sec. V-A), hence "under 0.1 %".
    """

    device: FPGASpec = KC705
    lut_per_pe: float = 1834.0
    lut_exponent: float = 1.57
    bram_base: float = 1.2
    bram_per_pe: float = 20.2
    dsp_base: float = 0.0

    def usage(self, parallelism: int) -> ResourceUsage:
        """Resource usage for a build with ``parallelism`` PEs."""
        if parallelism <= 0:
            raise ValueError(f"parallelism must be > 0, got {parallelism}")
        luts = int(round(self.lut_per_pe * parallelism**self.lut_exponent))
        bram_blocks = int(round(self.bram_base + self.bram_per_pe * parallelism))
        dsps = int(round(self.dsp_base))
        return ResourceUsage(
            parallelism=parallelism,
            luts=luts,
            bram_blocks=bram_blocks,
            dsps=dsps,
            lut_fraction=luts / self.device.total_luts,
            bram_fraction=bram_blocks / self.device.total_bram_blocks,
            dsp_fraction=dsps / self.device.total_dsps if self.device.total_dsps else 0.0,
        )

    def max_parallelism(self) -> int:
        """Largest ``P`` (power of two up to 64) that still fits on the device."""
        parallelism = 1
        best = 1
        while parallelism <= 64:
            if self.usage(parallelism).fits():
                best = parallelism
            parallelism *= 2
        return best

    def utilisation_table(self, parallelisms=(1, 2, 4, 8, 16)) -> Dict[int, ResourceUsage]:
        """Usage for a sweep of parallelism values (the Table I reproduction)."""
        return {p: self.usage(p) for p in parallelisms}
