"""Scheduler model: task dispatch and score-table conflict arbitration.

Two responsibilities, mirroring the "Scheduler" block of Fig. 4:

1. **Task dispatch** — distribute the stage-two diffusion tasks over the ``P``
   processing elements.  The hardware uses a simple greedy policy (next task
   goes to the first idle PE), which is what :func:`assign_tasks` implements.
2. **Conflict arbitration** — every diffuser writes to *all* local score
   tables (a node's score may live in another PE's table), so concurrent
   writes to the same table must be serialised.  The paper reports the
   resulting scheduling overhead to be below 20 % of the diffusion time at
   ``P = 2`` and below 40 % for larger ``P``.  :func:`conflict_stall_cycles`
   models the expected serialisation: with ``P`` active writers and ``P``
   banks, the probability a write collides with at least one other writer in
   the same cycle is ``(P - 1) / (2 P)`` (birthday-style pairing with the
   arbiter resolving half the collisions for free thanks to its two write
   ports), so each collision costs one extra cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hardware.pe import DiffusionTask, PECycleReport, ProcessingElement

__all__ = [
    "conflict_probability",
    "conflict_stall_cycles",
    "assign_tasks",
    "ScheduledTask",
    "ScheduleResult",
    "Scheduler",
]


def conflict_probability(parallelism: int) -> float:
    """Probability that a score-table write stalls, given ``P`` active PEs."""
    if parallelism <= 0:
        raise ValueError(f"parallelism must be > 0, got {parallelism}")
    if parallelism == 1:
        return 0.0
    return (parallelism - 1) / (2.0 * parallelism)


def conflict_stall_cycles(score_table_writes: int, parallelism: int) -> float:
    """Expected stall cycles for ``score_table_writes`` writes at parallelism ``P``."""
    if score_table_writes < 0:
        raise ValueError("score_table_writes must be >= 0")
    return score_table_writes * conflict_probability(parallelism)


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement and timing on the modelled accelerator."""

    task: DiffusionTask
    pe_index: int
    start_cycle: float
    busy_cycles: float
    stall_cycles: float

    @property
    def end_cycle(self) -> float:
        """Cycle at which the task (including stalls) completes."""
        return self.start_cycle + self.busy_cycles + self.stall_cycles


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a task list onto ``P`` PEs."""

    parallelism: int
    scheduled: Tuple[ScheduledTask, ...]
    makespan_cycles: float
    diffusion_cycles: float
    scheduling_cycles: float

    @property
    def num_tasks(self) -> int:
        """Number of scheduled tasks."""
        return len(self.scheduled)

    def pe_utilisation(self) -> Dict[int, float]:
        """Busy fraction of each PE over the makespan."""
        busy: Dict[int, float] = {}
        for item in self.scheduled:
            busy[item.pe_index] = busy.get(item.pe_index, 0.0) + (
                item.busy_cycles + item.stall_cycles
            )
        if self.makespan_cycles == 0:
            return {pe: 0.0 for pe in busy}
        return {pe: cycles / self.makespan_cycles for pe, cycles in busy.items()}


def assign_tasks(
    tasks: Sequence[DiffusionTask], parallelism: int
) -> List[Tuple[int, DiffusionTask]]:
    """Greedy first-idle-PE assignment; returns ``(pe_index, task)`` pairs.

    Tasks are dispatched in the order given (the solver already orders
    next-stage nodes by descending residual), each to the PE that becomes
    idle first — the same policy a simple hardware round-robin arbiter with
    back-pressure realises.
    """
    if parallelism <= 0:
        raise ValueError(f"parallelism must be > 0, got {parallelism}")
    pe_available = [0.0] * parallelism
    pe_model = ProcessingElement()
    assignment: List[Tuple[int, DiffusionTask]] = []
    for task in tasks:
        pe_index = min(range(parallelism), key=lambda i: pe_available[i])
        assignment.append((pe_index, task))
        pe_available[pe_index] += pe_model.execute(task).total_cycles
    return assignment


class Scheduler:
    """Schedules diffusion tasks onto ``P`` PEs and accounts for conflicts.

    Parameters
    ----------
    parallelism:
        Number of PEs ``P``.
    pe:
        The PE cycle model shared by all PEs (they are identical instances of
        the same HLS module).
    """

    def __init__(self, parallelism: int, pe: ProcessingElement | None = None) -> None:
        if parallelism <= 0:
            raise ValueError(f"parallelism must be > 0, got {parallelism}")
        self._parallelism = parallelism
        self._pe = pe if pe is not None else ProcessingElement()

    @property
    def parallelism(self) -> int:
        """Number of PEs."""
        return self._parallelism

    def run(self, tasks: Sequence[DiffusionTask]) -> ScheduleResult:
        """Schedule ``tasks`` and return the cycle-level outcome.

        Two parallelisation modes are combined, matching the hardware:

        * a **stage-one** task is alone in its stage, so its edge work is
          split *within* the diffusion across all ``P`` diffusers; every
          diffuser then writes to score-table partitions owned by its peers,
          so each write stalls with :func:`conflict_probability`;
        * **later-stage** tasks are dispatched whole to individual PEs
          (task-level parallelism — the linear decomposition makes them
          independent), and stall in proportion to how many PEs are busy
          alongside them.
        """
        pe_clock = [0.0] * self._parallelism
        scheduled: List[ScheduledTask] = []
        total_diffusion = 0.0
        total_stalls = 0.0

        for task in tasks:
            report = self._pe.execute(task)
            if task.stage_index == 0 or len(tasks) == 1:
                # Intra-diffusion parallelism: split the work across all PEs.
                busy = report.total_cycles / self._parallelism
                stalls = conflict_stall_cycles(
                    report.score_table_writes, self._parallelism
                ) / self._parallelism
                pe_index = min(
                    range(self._parallelism), key=lambda index: pe_clock[index]
                )
                start = max(pe_clock)
                scheduled.append(
                    ScheduledTask(
                        task=task,
                        pe_index=pe_index,
                        start_cycle=start,
                        busy_cycles=busy,
                        stall_cycles=stalls,
                    )
                )
                finish = start + busy + stalls
                pe_clock = [finish] * self._parallelism
                total_diffusion += busy
                total_stalls += stalls
                continue

            # Task-level parallelism for stage-two and later tasks.
            num_later_tasks = sum(1 for t in tasks if t.stage_index > 0)
            concurrently_active = min(self._parallelism, max(num_later_tasks, 1))
            stalls = conflict_stall_cycles(
                report.score_table_writes, concurrently_active
            )
            pe_index = min(
                range(self._parallelism), key=lambda index: pe_clock[index]
            )
            start = pe_clock[pe_index]
            scheduled.append(
                ScheduledTask(
                    task=task,
                    pe_index=pe_index,
                    start_cycle=start,
                    busy_cycles=report.total_cycles,
                    stall_cycles=stalls,
                )
            )
            pe_clock[pe_index] = start + report.total_cycles + stalls
            total_diffusion += report.total_cycles
            total_stalls += stalls

        makespan = max(pe_clock) if scheduled else 0.0
        return ScheduleResult(
            parallelism=self._parallelism,
            scheduled=tuple(scheduled),
            makespan_cycles=makespan,
            diffusion_cycles=total_diffusion,
            scheduling_cycles=total_stalls,
        )
