"""Platform descriptions of the paper's evaluation hardware.

Two devices appear in Sec. VI:

* a personal laptop with an Intel i7 at 2.8 GHz and 16 GB of memory (the CPU
  side of the co-design and the pure-CPU baselines), and
* a Xilinx Kintex-7 KC705 evaluation board clocked at 100 MHz (the FPGA side).

Neither device is available here, so both are represented by parameter
records that the cycle/latency models consume.  The CPU's *effective edge
processing rate* is calibrated against the Python implementation at import
time-free default values; experiments may recalibrate it from a measured BFS
so that modelled CPU time and measured CPU time line up on the same machine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGASpec", "CPUSpec", "KC705", "LAPTOP_CPU"]


@dataclass(frozen=True)
class FPGASpec:
    """Static description of an FPGA device and its clocking.

    Attributes
    ----------
    name:
        Device name.
    clock_hz:
        PL clock frequency (the paper runs the KC705 at 100 MHz).
    total_luts:
        Number of LUTs available on the device.
    total_bram_bytes:
        Total block-RAM capacity in bytes.
    total_bram_blocks:
        Number of 36 Kb BRAM blocks.
    total_dsps:
        Number of DSP48 slices.
    pcie_bandwidth_bytes_per_s:
        Effective host↔card streaming bandwidth for the data-transfer model.
    pcie_latency_s:
        Fixed per-transfer latency (driver + DMA setup).
    """

    name: str
    clock_hz: float
    total_luts: int
    total_bram_bytes: int
    total_bram_blocks: int
    total_dsps: int
    pcie_bandwidth_bytes_per_s: float
    pcie_latency_s: float

    @property
    def cycle_time_s(self) -> float:
        """Seconds per PL clock cycle."""
        return 1.0 / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count into seconds at the PL clock."""
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        return cycles * self.cycle_time_s


@dataclass(frozen=True)
class CPUSpec:
    """Description of the host CPU used by the analytical CPU-time model.

    Attributes
    ----------
    name:
        Processor name.
    clock_hz:
        Nominal clock.
    memory_bytes:
        Installed DRAM.
    edges_per_second:
        Effective BFS edge-traversal throughput of the *software stack being
        modelled* (graph library + Python overheads), used when converting
        BFS work into modelled CPU seconds.  The default is calibrated to the
        NetworkX-based implementation the paper measures; it can be replaced
        by a measured value via :meth:`calibrated`.
    """

    name: str
    clock_hz: float
    memory_bytes: int
    edges_per_second: float

    def bfs_seconds(self, edges_scanned: int) -> float:
        """Modelled CPU time to scan ``edges_scanned`` adjacency entries."""
        if edges_scanned < 0:
            raise ValueError("edges_scanned must be >= 0")
        return edges_scanned / self.edges_per_second

    def calibrated(self, edges_per_second: float) -> "CPUSpec":
        """Return a copy with a measured edge-traversal throughput."""
        if edges_per_second <= 0:
            raise ValueError("edges_per_second must be > 0")
        return CPUSpec(
            name=self.name,
            clock_hz=self.clock_hz,
            memory_bytes=self.memory_bytes,
            edges_per_second=edges_per_second,
        )


#: Xilinx Kintex-7 KC705 (XC7K325T): 203,800 LUTs, 445 36-Kb BRAM blocks
#: (~16 Mb = 2,004,480 bytes usable), 840 DSP48 slices.  PCIe Gen2 x8 board;
#: the transfer model uses a conservative effective bandwidth.
KC705 = FPGASpec(
    name="Xilinx Kintex-7 KC705 (XC7K325T)",
    clock_hz=100e6,
    total_luts=203_800,
    total_bram_bytes=445 * 36 * 1024 // 8,
    total_bram_blocks=445,
    total_dsps=840,
    pcie_bandwidth_bytes_per_s=1.6e9,
    pcie_latency_s=10e-6,
)

#: The paper's laptop-class host: Intel i7, 2.8 GHz, 16 GB memory.  The edge
#: throughput default reflects a Python/NetworkX-style traversal (hundreds of
#: thousands of edges per second), which is the software the paper measures.
LAPTOP_CPU = CPUSpec(
    name="Intel i7 (laptop), 2.8 GHz",
    clock_hz=2.8e9,
    memory_bytes=16 * 1024**3,
    edges_per_second=2.0e6,
)
