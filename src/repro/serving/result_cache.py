"""Cross-query stage-one result cache (hot-seed score-table reuse).

Real query streams are Zipfian: the same hot seeds arrive over and over.
The sub-graph caches (:class:`~repro.serving.cache.SubgraphCache`, one per
shard under a :class:`~repro.serving.sharding.ShardRouter`) already make the
*extractions* of a repeated query cheap, but every arrival still re-runs the
identical stage-one diffusion, fold, Eq. 6 correction and next-stage
selection.  All of that is a pure function of ``(seed, realised stage split,
alpha, score-table capacity, selector, graph)`` — so it can be computed once
and replayed.

:class:`ScoreTableCache` stores the folded stage-one state
(:class:`~repro.meloppr.planner.StageOneState`: score-table snapshot plus
the selected stage-two work list) keyed by :func:`stage_one_cache_key`.  On
a hit the engine resumes the plan with
:meth:`~repro.meloppr.planner.MeLoPPRPlan.from_stage_one_table` and only the
stage-two tasks run; scores are bit-identical to the uncached path because
the replayed fold state is byte-for-byte the state the plan would have
reached itself.

The cache is byte-budgeted with LRU eviction (like the sub-graph caches),
optionally TTL-bounded (long-running servers can bound staleness of *any*
derived artefact even though the key's graph fingerprint already rules out
serving a different topology), explicitly invalidatable, and thread-safe —
all bookkeeping runs under one lock, and the cached states are deeply
immutable so hits can be shared across backend threads freely.  Counters are
the shared :class:`~repro.serving.cache.CacheStats` shape, so hits roll up
into :attr:`~repro.serving.engine.EngineStats.cache` alongside the sub-graph
caches (and separately under ``EngineStats.result_cache``).

Composition with the async frontend: the
:class:`~repro.serving.frontend.batcher.MicroBatcher`'s in-flight dedup
collapses *concurrent* identical queries to one computation, and this cache
collapses *temporal* repeats — the first completed computation installs the
state, every later arrival resumes from it.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

from repro.meloppr.planner import MeLoPPRPlan, StageOneState
from repro.serving.cache import CacheStats

__all__ = [
    "DEFAULT_RESULT_CACHE_BYTES",
    "ScoreTableCache",
    "stage_one_cache_key",
]

#: Default byte budget — score tables are far smaller than sub-graphs, so a
#: modest budget holds thousands of hot seeds.
DEFAULT_RESULT_CACHE_BYTES = 32 * 1024 * 1024


def _value_identity(value) -> Hashable:
    """A faithful, hashable identity of one selector attribute value.

    ``repr`` is the general answer, but numpy elides large arrays
    (``[0.1, ..., 0.9]``), which would collide two masks differing only in
    the elided middle — so array-likes are identified by a digest of their
    raw bytes plus shape/dtype instead.
    """
    tobytes = getattr(value, "tobytes", None)
    if tobytes is not None:
        digest = hashlib.blake2b(tobytes(), digest_size=16).hexdigest()
        return (
            "array",
            tuple(getattr(value, "shape", ())),
            str(getattr(value, "dtype", "")),
            digest,
        )
    return repr(value)


def _selector_identity(selector) -> Tuple[Hashable, ...]:
    """A parameter-bearing identity of a next-stage selector.

    ``repr(selector)`` alone is not enough: the ``NextStageSelector`` base
    class default is ``f"{type(self).__name__}()"``, so a user-defined
    subclass with constructor knobs that does not override ``__repr__``
    would collide two differently-parameterised instances onto one cache
    key — and a hit would replay the *other* configuration's stage-two
    selection.  The class qualname plus the instance ``__dict__`` (each
    value via :func:`_value_identity` so the tuple stays hashable and
    array-valued knobs stay faithful) distinguishes them;
    ``__slots__``-only selectors fall back to ``repr`` — they opted out of
    ``__dict__`` and almost certainly define a faithful one.
    """
    try:
        fields = vars(selector)
    except TypeError:  # __slots__-only instance
        return (type(selector).__qualname__, repr(selector))
    return (
        type(selector).__qualname__,
        tuple(
            sorted((name, _value_identity(value)) for name, value in fields.items())
        ),
    )


def stage_one_cache_key(plan: MeLoPPRPlan) -> Tuple[Hashable, ...]:
    """The cache key under which ``plan``'s stage-one state may be reused.

    Covers every input the stage-one computation depends on:

    * ``seed``, ``alpha`` — the query parameters stage one diffuses with;
    * the **realised** stage split (after the planner's re-split for
      lengths that differ from the configured ``sum(stage_lengths)``), which
      fixes both the stage-one depth and the weights folded;
    * the score-table capacity (``c * k`` — two queries for different ``k``
      fold into differently bounded tables, so they must not share);
    * the selector and residual tolerance (they choose the stage-two work
      list stored in the state);
    * the host graph's structural fingerprint, so a rebuilt or repartitioned
      graph with different topology can never be served a stale table.
    """
    query = plan.query
    config = plan.config
    return (
        int(query.seed),
        tuple(plan.stage_plan.stage_lengths),
        float(query.alpha),
        config.score_table_capacity(query.k),
        _selector_identity(config.selector),
        float(config.residual_tolerance),
        plan.graph.fingerprint(),
    )


def _entry_nbytes(state: StageOneState) -> int:
    """Modelled retained bytes of one cached stage-one state.

    Mirrors the sub-graph cache's accounting style: dict-like entries are
    charged two machine words each (node id + float), records a flat per
    record cost, without paying a ``sys.getsizeof`` traversal per insert.
    """
    table_entries = len(state.table.scores) + len(state.table.evicted)
    return int(
        16 * table_entries
        + 16 * len(state.next_work)
        + 64 * len(state.records)
        + 128  # fixed per-entry overhead (key tuple, bookkeeping)
    )


class ScoreTableCache:
    """Byte-budgeted LRU cache of folded stage-one states.

    Parameters
    ----------
    max_bytes:
        Byte budget for retained entries.  Inserting past the budget evicts
        least-recently-used entries until the new entry fits; an entry larger
        than the whole budget is never cached (``stats.rejected``).
    ttl_seconds:
        Optional time-to-live.  An entry older than this is dropped on
        lookup (counted in ``stats.expired`` *and* as a miss).  ``None``
        (the default) keeps entries until evicted or invalidated — the graph
        fingerprint in the key already guarantees correctness, so a TTL is a
        freshness policy, not a safety requirement.
    clock:
        Monotonic time source (injectable for tests).

    Notes
    -----
    Unlike :class:`~repro.serving.cache.SubgraphCache` there is no
    ``get_or_compute``: producing a state requires executing a plan stage,
    which the engine orchestrates.  Two threads missing on the same key may
    both compute; the second :meth:`put` replaces the first with an
    identical state, which is harmless because stage one is deterministic.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_RESULT_CACHE_BYTES,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be > 0 or None, got {ttl_seconds}"
            )
        self._max_bytes = int(max_bytes)
        self._ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (state, nbytes, stored_at)
        self._entries: "OrderedDict[Tuple[Hashable, ...], Tuple[StageOneState, int, float]]" = (
            OrderedDict()
        )
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0
        self._expired = 0

    # ------------------------------------------------------------------
    @property
    def max_bytes(self) -> int:
        """The configured byte budget."""
        return self._max_bytes

    @property
    def ttl_seconds(self) -> Optional[float]:
        """The configured time-to-live (``None`` = entries never expire)."""
        return self._ttl_seconds

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                rejected=self._rejected,
                expired=self._expired,
                current_bytes=self._current_bytes,
                num_entries=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple[Hashable, ...]) -> bool:
        """Whether ``key`` holds an entry a :meth:`get` would actually serve.

        Finding the entry TTL-expired drops it on the spot (bytes freed,
        counted in ``stats.expired``) — answering ``False`` while leaving
        the bytes charged would let a never-re-requested key pin the budget.
        Not counted as a hit or miss: membership probes are not lookups.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if self._is_expired(entry[2]):
                del self._entries[key]
                self._current_bytes -= entry[1]
                self._expired += 1
                return False
            return True

    def _is_expired(self, stored_at: float) -> bool:
        """Whether an entry stored at ``stored_at`` has outlived the TTL."""
        return (
            self._ttl_seconds is not None
            and self._clock() - stored_at >= self._ttl_seconds
        )

    def _sweep_expired_locked(self) -> int:
        """Drop every TTL-expired entry (caller holds the lock).

        Shared by :meth:`put` and :meth:`resize` so budget pressure always
        reclaims dead bytes before evicting live entries, and so the two
        outcomes are counted apart (``stats.expired`` vs ``stats.evictions``).
        """
        if self._ttl_seconds is None:
            return 0
        dead = [
            entry_key
            for entry_key, (_, _, stored_at) in self._entries.items()
            if self._is_expired(stored_at)
        ]
        for entry_key in dead:
            _, dropped, _ = self._entries.pop(entry_key)
            self._current_bytes -= dropped
            self._expired += 1
        return len(dead)

    # ------------------------------------------------------------------
    def get(self, key: Tuple[Hashable, ...]) -> Optional[StageOneState]:
        """Look up a stage-one state, updating recency and counters."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            state, nbytes, stored_at = entry
            if self._is_expired(stored_at):
                del self._entries[key]
                self._current_bytes -= nbytes
                self._expired += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return state

    def put(self, key: Tuple[Hashable, ...], state: StageOneState) -> bool:
        """Insert a stage-one state; returns whether it was retained."""
        nbytes = _entry_nbytes(state)
        with self._lock:
            if nbytes > self._max_bytes:
                self._rejected += 1
                return False
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._current_bytes -= previous[1]
            # Reclaim entries whose TTL already passed before evicting live
            # ones — eviction metrics must never blame budget pressure for
            # ordinary expiry.
            self._sweep_expired_locked()
            while self._entries and self._current_bytes + nbytes > self._max_bytes:
                _, (_, dropped, _) = self._entries.popitem(last=False)
                self._current_bytes -= dropped
                self._evictions += 1
            self._entries[key] = (state, nbytes, self._clock())
            self._current_bytes += nbytes
            return True

    def resize(self, max_bytes: int) -> int:
        """Change the byte budget in place, evicting LRU entries past it.

        The hot-reload path of a live server: shrinking evicts (counted in
        ``stats.evictions``) until the retained bytes fit, growing just
        raises the ceiling — surviving entries stay warm.  Returns the
        number of evictions the resize forced.  TTL-expired entries are
        swept first, so a shrink never evicts a live entry to keep a dead
        one's bytes.
        """
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        with self._lock:
            self._max_bytes = int(max_bytes)
            self._sweep_expired_locked()
            evicted = 0
            while self._entries and self._current_bytes > self._max_bytes:
                _, (_, dropped, _) = self._entries.popitem(last=False)
                self._current_bytes -= dropped
                self._evictions += 1
                evicted += 1
            return evicted

    def max_stage_one_length(self) -> int:
        """Largest stage-one length among retained entries (0 when empty).

        Keys are :func:`stage_one_cache_key` tuples, whose second element is
        the realised stage split — its first stage is the radius of the ego
        ball the cached state was folded from.  The engine's live-update
        path uses this to size its BFS reach bound.
        """
        with self._lock:
            return max((int(key[1][0]) for key in self._entries), default=0)

    def apply_update(
        self, old_fingerprint: str, new_fingerprint: str, distances
    ) -> Tuple[int, int]:
        """Surgically migrate the cache across a topology update.

        ``distances[node]`` is a conservative hop distance to the nearest
        endpoint the update touched (see
        :func:`repro.graph.delta.update_distance_bound`).  Every entry keyed
        to ``old_fingerprint`` whose seed lies within its stage-one radius
        of a touched endpoint (``distances[seed] <= stage_one_length``) is
        dropped — its folded state could differ on the new topology.  Every
        other entry is **re-keyed** in place to ``new_fingerprint``
        (preserving LRU order and stored-at times): its stage-one ego ball
        contains no updated row on either topology, so the folded state is
        byte-identical to what the new graph would compute.  Returns
        ``(dropped, rekeyed)``; drops are explicit invalidations, not
        evictions.
        """
        dropped = 0
        rekeyed = 0
        with self._lock:
            migrated: "OrderedDict[Tuple[Hashable, ...], Tuple[StageOneState, int, float]]" = (
                OrderedDict()
            )
            for key, value in self._entries.items():
                if key[-1] == old_fingerprint:
                    seed = int(key[0])
                    stage_one_length = int(key[1][0])
                    if int(distances[seed]) <= stage_one_length:
                        self._current_bytes -= value[1]
                        dropped += 1
                        continue
                    key = key[:-1] + (new_fingerprint,)
                    rekeyed += 1
                migrated[key] = value
            self._entries = migrated
        return dropped, rekeyed

    def invalidate(self, key: Tuple[Hashable, ...]) -> bool:
        """Explicitly drop one entry; returns whether it was present.

        Not counted as an eviction (the budget did not force it) — live
        state just shrinks, like :meth:`clear`.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._current_bytes -= entry[1]
            return True

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the byte-accounting invariants, raising on drift.

        Invariants: ``current_bytes`` equals the sum of retained entries'
        recorded sizes, each recorded size matches a recomputation, and the
        budget is respected.  Cheap; used by the concurrency stress tests.
        """
        with self._lock:
            recomputed = 0
            for state, nbytes, _ in self._entries.values():
                actual = _entry_nbytes(state)
                if actual != nbytes:
                    raise AssertionError(
                        f"entry records {nbytes} bytes but holds {actual}"
                    )
                recomputed += nbytes
            if recomputed != self._current_bytes:
                raise AssertionError(
                    f"current_bytes={self._current_bytes} but entries sum to "
                    f"{recomputed}"
                )
            if self._current_bytes > self._max_bytes:
                raise AssertionError(
                    f"current_bytes={self._current_bytes} exceeds the budget "
                    f"{self._max_bytes}"
                )

    def reset_stats(self) -> None:
        """Zero the counters (entries are kept) — same contract as
        :meth:`SubgraphCache.reset_stats`: ``current_bytes``/``num_entries``
        describe live state, not history, and are unaffected."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._rejected = 0
            self._expired = 0

    def clear(self) -> None:
        """Drop every entry (counters are kept) — same contract as
        :meth:`SubgraphCache.clear`."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0

    def __repr__(self) -> str:
        stats = self.stats
        ttl = "none" if self._ttl_seconds is None else f"{self._ttl_seconds:g}s"
        return (
            f"ScoreTableCache(max_bytes={self._max_bytes}, ttl={ttl}, "
            f"entries={stats.num_entries}, bytes={stats.current_bytes}, "
            f"hit_rate={stats.hit_rate:.2f})"
        )
