"""Shared-memory export of CSR graph buffers for process-pool serving.

A process pool can only beat the thread pool if the workers do not each pay
for (or copy) the host graph: the whole point of the paper's CSR layout is
that a graph is three contiguous arrays, and contiguous arrays are exactly
what :mod:`multiprocessing.shared_memory` shares for free.  This module owns
that lifecycle:

* :class:`SharedGraphHandle` — parent side.  ``export(graph)`` copies the CSR
  arrays into named shared-memory segments once; :attr:`descriptor` is a tiny
  picklable :class:`SharedGraphDescriptor` a worker can be handed at spawn.
  ``close()`` detaches, ``unlink()`` frees the segments (idempotent; the
  creator must unlink exactly once or ``/dev/shm`` leaks).
* :class:`AttachedGraph` — worker side.  ``SharedGraphHandle.attach(desc)``
  maps the segments and wraps them in a zero-copy :class:`CSRGraph` built
  from ``np.frombuffer`` views — no per-worker copy of the graph, which is
  the NUMA/memory story of the ROADMAP's process-pool item.
* :class:`SharedShardHandle` / :class:`AttachedShard` — the same for one
  shard of a :class:`~repro.graph.partition.GraphPartition`: the shard's
  halo-extended CSR sub-graph plus its global-id map, so a worker pinned to
  a shard holds only that shard's bytes.

Segment names carry the :data:`SHM_PREFIX` prefix so leak checks (and the
regression test guarding ``QueryEngine.__exit__`` error paths) can tell this
library's segments apart from anything else in ``/dev/shm``.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphShard
from repro.graph.subgraph import Subgraph

__all__ = [
    "SHM_PREFIX",
    "SharedArraySpec",
    "SharedGraphDescriptor",
    "SharedShardDescriptor",
    "SharedGraphHandle",
    "SharedShardHandle",
    "AttachedGraph",
    "AttachedShard",
    "leaked_segment_names",
]

#: Prefix of every shared-memory segment this library creates.
SHM_PREFIX = "repro-shm"

#: Where POSIX shared memory appears on Linux (used by the leak checker).
_SHM_DIR = "/dev/shm"


@dataclass(frozen=True)
class SharedArraySpec:
    """Where one numpy array lives in shared memory.

    Attributes
    ----------
    segment:
        Shared-memory segment name.
    shape:
        Array shape (always 1-D here, kept general for symmetry).
    dtype:
        Numpy dtype string (``"int64"``, ``"int32"``, ...).
    """

    segment: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def count(self) -> int:
        """Number of elements."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count


@dataclass(frozen=True)
class SharedGraphDescriptor:
    """Everything a worker needs to attach a shared :class:`CSRGraph`."""

    graph_name: str
    indptr: SharedArraySpec
    indices: SharedArraySpec


@dataclass(frozen=True)
class SharedShardDescriptor:
    """Everything a worker needs to attach one shard's sub-graph.

    Attributes
    ----------
    shard_id:
        The shard this descriptor exports.
    host_name:
        Name of the partitioned host graph (extractions embed it in the
        returned sub-graph names, matching the host-graph extraction path).
    halo_depth:
        Hop radius of the halo; extractions up to this depth are shard-local.
    graph:
        The shard sub-graph's CSR arrays.
    global_ids:
        The shard-local → global node-id map.
    """

    shard_id: int
    host_name: str
    halo_depth: int
    graph: SharedGraphDescriptor
    global_ids: SharedArraySpec


def _segment_name() -> str:
    """A fresh, collision-resistant segment name with the library prefix."""
    return f"{SHM_PREFIX}-{secrets.token_hex(6)}-{os.getpid()}"


def _export_array(array: np.ndarray) -> Tuple[shared_memory.SharedMemory, SharedArraySpec]:
    """Copy ``array`` into a new shared segment and describe it."""
    array = np.ascontiguousarray(array)
    # SharedMemory refuses zero-byte segments; a 1-byte segment backs an
    # empty array just fine (the spec's count keeps the view empty).
    segment = shared_memory.SharedMemory(
        create=True, size=max(1, array.nbytes), name=_segment_name()
    )
    view = np.frombuffer(segment.buf, dtype=array.dtype, count=array.size)
    view[:] = array.reshape(-1)
    del view  # drop the buffer export so close() cannot be blocked by it
    return segment, SharedArraySpec(
        segment=segment.name, shape=tuple(array.shape), dtype=str(array.dtype)
    )


def _attach_array(spec: SharedArraySpec) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map a described segment and return a read-only zero-copy view.

    Attaching re-registers the segment with the resource tracker, which is
    deliberate and harmless here: every attaching process is a child of the
    creator, so they all share one tracker whose registry is a name *set* —
    the re-add is a no-op and the creator's single ``unlink`` still clears
    it.  (Unregistering on attach, the folklore workaround for *unrelated*
    processes, would instead erase the creator's registration.)
    """
    segment = shared_memory.SharedMemory(name=spec.segment, create=False)
    array = np.frombuffer(segment.buf, dtype=np.dtype(spec.dtype), count=spec.count)
    array = array.reshape(spec.shape)
    array.setflags(write=False)
    return segment, array


def _close_segments(segments: List[shared_memory.SharedMemory]) -> None:
    """Best-effort detach: a still-exported buffer must not abort cleanup."""
    for segment in segments:
        try:
            segment.close()
        except BufferError:
            # A numpy view of the buffer is still alive somewhere; the
            # mapping is released when the view dies (or the process exits).
            pass


class SharedGraphHandle:
    """Creator-side handle of a host graph exported to shared memory.

    Create with :meth:`export`, hand :attr:`descriptor` to workers, and on
    shutdown call :meth:`unlink` (or use the handle as a context manager) —
    the segments outlive every attaching process until the creator unlinks
    them, so forgetting this step leaks ``/dev/shm``.
    """

    def __init__(
        self,
        descriptor: SharedGraphDescriptor,
        segments: List[shared_memory.SharedMemory],
    ) -> None:
        self._descriptor = descriptor
        self._segments = segments
        self._unlinked = False

    @classmethod
    def export(cls, graph: CSRGraph) -> "SharedGraphHandle":
        """Copy ``graph``'s CSR arrays into fresh shared segments."""
        segments: List[shared_memory.SharedMemory] = []
        try:
            indptr_segment, indptr_spec = _export_array(graph.indptr)
            segments.append(indptr_segment)
            indices_segment, indices_spec = _export_array(graph.indices)
            segments.append(indices_segment)
        except Exception:
            for segment in segments:
                segment.close()
                segment.unlink()
            raise
        descriptor = SharedGraphDescriptor(
            graph_name=graph.name, indptr=indptr_spec, indices=indices_spec
        )
        return cls(descriptor, segments)

    @property
    def descriptor(self) -> SharedGraphDescriptor:
        """The picklable attachment recipe for workers."""
        return self._descriptor

    def nbytes(self) -> int:
        """Bytes of shared memory held by this handle's segments."""
        return sum(segment.size for segment in self._segments)

    @staticmethod
    def attach(descriptor: SharedGraphDescriptor) -> "AttachedGraph":
        """Worker side: map the segments into a zero-copy :class:`CSRGraph`."""
        segments: List[shared_memory.SharedMemory] = []
        try:
            indptr_segment, indptr = _attach_array(descriptor.indptr)
            segments.append(indptr_segment)
            indices_segment, indices = _attach_array(descriptor.indices)
            segments.append(indices_segment)
            graph = CSRGraph(indptr, indices, name=descriptor.graph_name)
        except Exception:
            _close_segments(segments)
            raise
        return AttachedGraph(graph=graph, segments=segments)

    def close(self) -> None:
        """Detach this process's mappings (idempotent)."""
        _close_segments(self._segments)

    def unlink(self) -> None:
        """Free the segments system-wide (idempotent; creator-only)."""
        if self._unlinked:
            return
        self._unlinked = True
        self.close()
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already freed
                pass

    def __enter__(self) -> "SharedGraphHandle":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedGraphHandle(graph={self._descriptor.graph_name!r}, "
            f"nbytes={self.nbytes()}, unlinked={self._unlinked})"
        )


class AttachedGraph:
    """Worker-side view of a shared host graph (zero-copy)."""

    def __init__(
        self, graph: CSRGraph, segments: List[shared_memory.SharedMemory]
    ) -> None:
        self.graph = graph
        self._segments = segments

    def close(self) -> None:
        """Detach the mappings (views into them must be dropped first)."""
        _close_segments(self._segments)

    def __enter__(self) -> "AttachedGraph":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()


class SharedShardHandle:
    """Creator-side handle of one shard's sub-graph in shared memory."""

    def __init__(
        self,
        descriptor: SharedShardDescriptor,
        graph_handle: SharedGraphHandle,
        id_segment: shared_memory.SharedMemory,
    ) -> None:
        self._descriptor = descriptor
        self._graph_handle = graph_handle
        self._id_segment = id_segment
        self._unlinked = False

    @classmethod
    def export(
        cls, shard: GraphShard, host_name: str, halo_depth: int
    ) -> "SharedShardHandle":
        """Export a shard's halo-extended CSR sub-graph and id map."""
        graph_handle = SharedGraphHandle.export(shard.subgraph.graph)
        try:
            id_segment, id_spec = _export_array(shard.subgraph.global_ids)
        except Exception:
            graph_handle.unlink()
            raise
        descriptor = SharedShardDescriptor(
            shard_id=shard.shard_id,
            host_name=host_name,
            halo_depth=int(halo_depth),
            graph=graph_handle.descriptor,
            global_ids=id_spec,
        )
        return cls(descriptor, graph_handle, id_segment)

    @property
    def descriptor(self) -> SharedShardDescriptor:
        """The picklable attachment recipe for workers."""
        return self._descriptor

    def nbytes(self) -> int:
        """Bytes of shared memory held by this shard's segments."""
        return self._graph_handle.nbytes() + self._id_segment.size

    @staticmethod
    def attach(descriptor: SharedShardDescriptor) -> "AttachedShard":
        """Worker side: map the shard into a zero-copy :class:`Subgraph`."""
        attached_graph = SharedGraphHandle.attach(descriptor.graph)
        try:
            id_segment, global_ids = _attach_array(descriptor.global_ids)
        except Exception:
            attached_graph.close()
            raise
        try:
            subgraph = Subgraph(attached_graph.graph, global_ids)
        except Exception:
            _close_segments([id_segment])
            attached_graph.close()
            raise
        return AttachedShard(
            shard_id=descriptor.shard_id,
            host_name=descriptor.host_name,
            halo_depth=descriptor.halo_depth,
            subgraph=subgraph,
            attached_graph=attached_graph,
            id_segment=id_segment,
        )

    def close(self) -> None:
        """Detach this process's mappings (idempotent)."""
        self._graph_handle.close()
        _close_segments([self._id_segment])

    def unlink(self) -> None:
        """Free the segments system-wide (idempotent; creator-only)."""
        if self._unlinked:
            return
        self._unlinked = True
        self._graph_handle.unlink()
        try:
            self._id_segment.close()
        except BufferError:  # pragma: no cover - exported view still alive
            pass
        try:
            self._id_segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already freed
            pass

    def __enter__(self) -> "SharedShardHandle":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedShardHandle(shard={self._descriptor.shard_id}, "
            f"host={self._descriptor.host_name!r}, nbytes={self.nbytes()})"
        )


class AttachedShard:
    """Worker-side view of one shard (zero-copy sub-graph + id map)."""

    def __init__(
        self,
        shard_id: int,
        host_name: str,
        halo_depth: int,
        subgraph: Subgraph,
        attached_graph: AttachedGraph,
        id_segment: shared_memory.SharedMemory,
    ) -> None:
        self.shard_id = shard_id
        self.host_name = host_name
        self.halo_depth = halo_depth
        self.subgraph = subgraph
        self._attached_graph = attached_graph
        self._id_segment = id_segment

    def close(self) -> None:
        """Detach the mappings (views into them must be dropped first)."""
        self._attached_graph.close()
        _close_segments([self._id_segment])

    def __enter__(self) -> "AttachedShard":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"AttachedShard(shard={self.shard_id}, host={self.host_name!r}, "
            f"nodes={self.subgraph.num_nodes})"
        )


def leaked_segment_names(shm_dir: str = _SHM_DIR) -> List[str]:
    """Names of this library's shared segments still present on the system.

    The process-pool lifecycle tests assert this is empty after an engine
    shuts down — including the failure paths — so a ``/dev/shm`` leak is a
    test failure, not a slow surprise in production.  Returns an empty list
    on platforms without a ``/dev/shm`` directory (the check is then simply
    unavailable, not failing).
    """
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(SHM_PREFIX))
