"""Replica fleet supervision for multi-replica serving.

Two pieces live here:

``ConsistentHashRing``
    A deterministic consistent-hash ring mapping keys (shard ids) onto
    replica members.  Hashing uses ``hashlib.blake2b`` rather than the
    builtin ``hash()`` so the assignment is identical across processes
    and Python runs (``PYTHONHASHSEED`` does not leak in).  Each member
    owns many virtual nodes, so removing one replica moves only the
    keys that replica owned — everything else stays put (minimal
    movement), which is exactly what keeps warm shard caches warm
    during failover.

``ReplicaSet``
    A supervisor that launches N HTTP server subprocesses (one per
    replica), each built from a shared :class:`ServingConfig` with a
    per-replica port and ready file.  Readiness is a file handshake:
    the server writes an atomic JSON record once its listener is bound,
    and the supervisor polls for it — no stdout parsing, no races.
    Every replica loads the *full* graph behind a ``ShardRouter``, so
    any replica can answer any seed bit-identically; the ring is a
    cache-locality optimisation, not a correctness constraint.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    # Runtime import would be circular: frontend/__init__ re-exports the
    # router, which needs this module's ring.
    from repro.serving.frontend.config import ServingConfig

__all__ = [
    "ConsistentHashRing",
    "ReplicaSpec",
    "ReplicaSet",
    "pick_free_port",
]

DEFAULT_VNODES = 256
"""Virtual nodes per member: keeps load imbalance under ~10% at N=3
(measured over 1000 keys) while ring construction stays sub-millisecond."""


def _ring_hash(token: str) -> int:
    """A stable 64-bit position for ``token`` (blake2b, cross-process)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Deterministic consistent hashing of keys onto named members.

    Members are arbitrary strings (replica names); keys are ints or
    strings (shard ids, seeds).  ``owner(key)`` walks clockwise from
    the key's position to the first virtual node; ``preference(key)``
    continues the walk to produce an ordered list of *distinct*
    members — the failover order for that key.
    """

    def __init__(
        self,
        members: Sequence[str] = (),
        *,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be > 0, got {vnodes}")
        self._vnodes = vnodes
        self._positions: List[int] = []
        self._owners: List[str] = []
        self._members: Dict[str, List[int]] = {}
        for member in members:
            self.add(member)

    @property
    def members(self) -> List[str]:
        """Current members in sorted order."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        """Add ``member``, claiming its virtual nodes on the ring."""
        if member in self._members:
            raise ValueError(f"member already on ring: {member!r}")
        positions = []
        for replica in range(self._vnodes):
            pos = _ring_hash(f"{member}#{replica}")
            index = bisect.bisect_left(self._positions, pos)
            # blake2b collisions across distinct tokens are vanishingly
            # rare; ties resolve by insertion order, deterministically.
            self._positions.insert(index, pos)
            self._owners.insert(index, member)
            positions.append(pos)
        self._members[member] = positions

    def remove(self, member: str) -> None:
        """Remove ``member``; only its keys move (minimal movement)."""
        if member not in self._members:
            raise KeyError(member)
        del self._members[member]
        keep = [
            (pos, owner)
            for pos, owner in zip(self._positions, self._owners)
            if owner != member
        ]
        self._positions = [pos for pos, _ in keep]
        self._owners = [owner for _, owner in keep]

    def owner(self, key: object) -> str:
        """The member owning ``key`` (first vnode clockwise)."""
        if not self._members:
            raise LookupError("ring has no members")
        pos = _ring_hash(f"key:{key}")
        index = bisect.bisect_right(self._positions, pos)
        if index == len(self._positions):
            index = 0  # wrap past twelve o'clock
        return self._owners[index]

    def preference(self, key: object, count: Optional[int] = None) -> List[str]:
        """Ordered distinct members for ``key``: owner first, then failovers."""
        if not self._members:
            raise LookupError("ring has no members")
        limit = len(self._members) if count is None else min(count, len(self._members))
        pos = _ring_hash(f"key:{key}")
        start = bisect.bisect_right(self._positions, pos)
        seen: List[str] = []
        for offset in range(len(self._positions)):
            owner = self._owners[(start + offset) % len(self._positions)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) >= limit:
                    break
        return seen

    def assignment(self, keys: Sequence[object]) -> Dict[str, List[object]]:
        """Group ``keys`` by owning member (members with none included)."""
        out: Dict[str, List[object]] = {member: [] for member in self._members}
        for key in keys:
            out[self.owner(key)].append(key)
        return out


def pick_free_port(host: str = "127.0.0.1") -> int:
    """Bind-and-release an ephemeral port; free at time of return.

    There is an inherent TOCTOU window before the subprocess re-binds
    it, but on a quiet CI host collisions are effectively never seen,
    and ``ReplicaSet.wait_ready`` would surface one as a startup
    failure rather than a hang.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class ReplicaSpec:
    """One launched replica: its identity, endpoint, and process."""

    index: int
    name: str
    host: str
    port: int
    config: "ServingConfig"
    ready_file: str
    process: Optional[subprocess.Popen] = None
    ready_info: Optional[Dict[str, object]] = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class ReplicaSet:
    """Launch and supervise N HTTP serving subprocesses.

    Each replica runs ``python -m repro.serving.frontend.http`` with the
    shared :class:`ServingConfig` (distinct port + ready file per
    replica).  The supervisor owns the lifecycle: spawn, readiness
    wait, targeted restart, crash injection for tests, and graceful
    stop (SIGTERM, then SIGKILL after a grace period).
    """

    def __init__(
        self,
        config: "ServingConfig",
        num_replicas: int,
        *,
        host: str = "127.0.0.1",
        vnodes: int = DEFAULT_VNODES,
        startup_timeout: float = 60.0,
    ) -> None:
        if num_replicas <= 0:
            raise ValueError(f"num_replicas must be > 0, got {num_replicas}")
        self._config = config
        self._host = host
        self._startup_timeout = startup_timeout
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-replicas-")
        self.replicas: List[ReplicaSpec] = []
        for index in range(num_replicas):
            port = pick_free_port(host)
            ready_file = os.path.join(self._tmpdir.name, f"ready-{index}.json")
            replica_config = config.replace(
                host=host, port=port, ready_file=ready_file
            )
            self.replicas.append(
                ReplicaSpec(
                    index=index,
                    name=f"replica-{index}",
                    host=host,
                    port=port,
                    config=replica_config,
                    ready_file=ready_file,
                )
            )
        self.ring = ConsistentHashRing(
            [spec.name for spec in self.replicas], vnodes=vnodes
        )

    # -- lifecycle -----------------------------------------------------

    def _spawn(self, spec: ReplicaSpec) -> None:
        if os.path.exists(spec.ready_file):
            os.unlink(spec.ready_file)
        spec.ready_info = None
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        spec.process = subprocess.Popen(
            [sys.executable, "-m", "repro.serving.frontend.http"]
            + spec.config.to_argv(),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def start(self) -> None:
        """Spawn every replica (does not wait for readiness)."""
        for spec in self.replicas:
            if not spec.alive:
                self._spawn(spec)

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until every live replica has written its ready file.

        Raises ``RuntimeError`` if a replica process exits before
        becoming ready, or ``TimeoutError`` on expiry.
        """
        deadline = time.monotonic() + (
            self._startup_timeout if timeout is None else timeout
        )
        pending = [spec for spec in self.replicas if spec.ready_info is None]
        while pending:
            still_pending = []
            for spec in pending:
                if spec.process is not None and spec.process.poll() is not None:
                    raise RuntimeError(
                        f"{spec.name} exited with code "
                        f"{spec.process.returncode} before becoming ready"
                    )
                info = self._read_ready_file(spec)
                if info is None:
                    still_pending.append(spec)
                else:
                    spec.ready_info = info
            pending = still_pending
            if pending:
                if time.monotonic() > deadline:
                    names = ", ".join(spec.name for spec in pending)
                    raise TimeoutError(f"replicas not ready in time: {names}")
                time.sleep(0.05)

    @staticmethod
    def _read_ready_file(spec: ReplicaSpec) -> Optional[Dict[str, object]]:
        try:
            with open(spec.ready_file, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # The write is atomic (os.replace), so this should not
            # happen — treat a torn read defensively as not-ready.
            return None

    def restart(self, index: int) -> ReplicaSpec:
        """Kill (if needed) and relaunch replica ``index`` on its port."""
        spec = self.replicas[index]
        if spec.alive:
            self.terminate(index, sig=signal.SIGKILL)
        self._spawn(spec)
        return spec

    def terminate(self, index: int, sig: int = signal.SIGTERM) -> None:
        """Send ``sig`` to replica ``index`` and reap it.

        ``SIGKILL`` is the crash-injection path used by failover tests;
        ``SIGTERM`` triggers the server's graceful drain handler.
        """
        spec = self.replicas[index]
        if spec.process is None:
            return
        if spec.process.poll() is None:
            spec.process.send_signal(sig)
            try:
                spec.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                spec.process.kill()
                spec.process.wait(timeout=10.0)
        spec.ready_info = None

    def poll(self) -> Dict[str, Optional[int]]:
        """Exit codes by replica name (None while still running)."""
        return {
            spec.name: (
                None if spec.process is None else spec.process.poll()
            )
            for spec in self.replicas
        }

    def stop(self) -> None:
        """Gracefully stop every replica (SIGTERM, then SIGKILL)."""
        for spec in self.replicas:
            if spec.alive:
                spec.process.terminate()
        deadline = time.monotonic() + 10.0
        for spec in self.replicas:
            if spec.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                spec.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                spec.process.kill()
                spec.process.wait(timeout=10.0)
        self._tmpdir.cleanup()

    def __enter__(self) -> "ReplicaSet":
        try:
            self.start()
            self.wait_ready()
        except BaseException:
            self.stop()
            raise
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- topology ------------------------------------------------------

    def owned_shards(self, num_shards: int) -> Dict[str, List[int]]:
        """Shard ids grouped by owning replica under the current ring."""
        return self.ring.assignment(list(range(num_shards)))
