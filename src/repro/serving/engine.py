"""The batched query-serving engine.

:class:`QueryEngine` is the front door for answering PPR queries at volume.
It wraps any :class:`~repro.ppr.base.PPRSolver` and adds the three things a
serving layer needs that a solver should not know about:

* **Batching** — ``submit`` enqueues queries and ``drain`` answers the whole
  pending batch (``solve_batch`` does both in one call), amortising backend
  and cache warm-up across queries.
* **Extraction reuse** — an optional :class:`~repro.serving.cache.SubgraphCache`
  is wired into the planner's extraction hook, so hot ego sub-graphs are
  extracted once per batch instead of once per task.
* **Pluggable execution** — an :class:`~repro.serving.backends.ExecutionBackend`
  decides how the per-query jobs run (serially, on a thread pool, ...).

Solvers that expose a ``plan(query)`` method (today: MeLoPPR) are executed
through the planner/executor path, which is where the cache hook applies;
any other solver falls back to its own ``solve`` and still benefits from
batching, per-query timing and throughput accounting.

Scores are bit-identical to the sequential ``solver.solve`` loop for every
backend, with the cache enabled or disabled: queries are independent, task
order within a query is preserved by the planner, and cached extractions are
the same immutable objects a fresh extraction would produce.  The one field
that legitimately differs is measurement, not computation: wall-clock timing
always varies, and under a concurrent backend ``peak_memory_bytes`` reports
the modelled working set because the process-global ``tracemalloc`` cannot
attribute peaks to overlapping queries.  (Fallback solvers that measure
memory themselves stay correct too — their tracked sections serialise on
:class:`~repro.memory.tracker.MemoryTracker`'s shared lock — but pass
``track_memory=False`` at solver construction to actually run in parallel.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.diffusion.kernels import DiffusionKernel, resolve_kernel_name
from repro.graph.delta import (
    DeltaGraph,
    EdgeOp,
    normalize_edge_ops,
    update_distance_bound,
)
from repro.meloppr.planner import MeLoPPRPlan, default_extract, execute_plan
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.serving.backends import ExecutionBackend, SerialBackend
from repro.serving.cache import CacheStats, SubgraphCache
from repro.serving.result_cache import ScoreTableCache, stage_one_cache_key
from repro.serving.sharding import RouterStats, ShardRouter
from repro.serving.telemetry import LatencyHistogram, LatencySnapshot
from repro.serving.tracing import TraceContext, Tracer, TracingStats

__all__ = ["EngineStats", "QueryEngine"]


def _merge_cache_stats(
    first: Optional[CacheStats], second: Optional[CacheStats]
) -> Optional[CacheStats]:
    """Counter-wise sum of two cache snapshots (``None`` acts as empty)."""
    if first is None:
        return second
    if second is None:
        return first
    return first + second


@dataclass
class EngineStats:
    """Aggregate serving statistics of a :class:`QueryEngine`.

    Attributes
    ----------
    backend:
        Name of the execution backend.
    queries_served, batches:
        Totals since engine construction.
    wall_seconds:
        Wall-clock time spent inside ``solve_batch`` (the denominator of
        :attr:`throughput_qps`).
    query_seconds:
        Sum of per-query latencies; under a parallel backend this exceeds
        ``wall_seconds``, and their ratio is the effective parallelism.
    min_latency_seconds, max_latency_seconds:
        Extremes of the per-query latencies.
    latency:
        Bucketed per-query latency percentiles (p50/p95/p99); ``None`` only
        on the engine's internal accumulator, never in :meth:`QueryEngine.stats`
        snapshots.
    cache:
        Aggregate cache counters, uniform across serving modes: the engine
        cache's counters (or the router's per-shard + fallback aggregate)
        summed with the stage-one result-cache counters and any stage-task
        backend's worker-cache counters — every hit the serving stack scored,
        so dashboards can read ``stats.cache.hit_rate`` either way.  ``None``
        only when caching is off entirely.
    result_cache:
        The stage-one result cache's share of those counters alone (engine
        level or the router's per-shard aggregate; ``None`` when cross-query
        result caching is off).  ``cache`` already includes these, so
        reconcile as ``cache == extraction caches + result_cache``.
    router:
        Snapshot of the shard-routing counters (``None`` when unsharded).
    tracing:
        Snapshot of the tracer's counters — offered/sampled/finished traces,
        recorded spans, slow traces (``None`` when no tracer is attached).
    """

    backend: str
    queries_served: int = 0
    batches: int = 0
    wall_seconds: float = 0.0
    query_seconds: float = 0.0
    min_latency_seconds: float = field(default=float("inf"))
    max_latency_seconds: float = 0.0
    latency: Optional[LatencySnapshot] = None
    cache: Optional[CacheStats] = None
    result_cache: Optional[CacheStats] = None
    router: Optional[RouterStats] = None
    tracing: Optional[TracingStats] = None

    @property
    def throughput_qps(self) -> float:
        """Queries served per wall-clock second (0.0 before any batch)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.queries_served / self.wall_seconds

    @property
    def mean_latency_seconds(self) -> float:
        """Mean per-query latency (0.0 before any query)."""
        if self.queries_served == 0:
            return 0.0
        return self.query_seconds / self.queries_served

    def reset(self) -> None:
        """Zero the accumulated counters (for per-interval reporting).

        A long-running server calls :meth:`QueryEngine.reset_stats` at each
        reporting interval instead of recreating the engine; that resets this
        accumulator and the engine's latency histogram together.
        """
        self.queries_served = 0
        self.batches = 0
        self.wall_seconds = 0.0
        self.query_seconds = 0.0
        self.min_latency_seconds = float("inf")
        self.max_latency_seconds = 0.0
        self.latency = None
        self.cache = None
        self.result_cache = None
        self.router = None
        self.tracing = None

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        return {
            "backend": self.backend,
            "queries_served": self.queries_served,
            "batches": self.batches,
            "wall_seconds": self.wall_seconds,
            "query_seconds": self.query_seconds,
            "throughput_qps": self.throughput_qps,
            "mean_latency_seconds": self.mean_latency_seconds,
            "min_latency_seconds": (
                0.0 if self.queries_served == 0 else self.min_latency_seconds
            ),
            "max_latency_seconds": self.max_latency_seconds,
            "latency": None if self.latency is None else self.latency.as_dict(),
            "cache": None if self.cache is None else self.cache.as_dict(),
            "result_cache": (
                None if self.result_cache is None else self.result_cache.as_dict()
            ),
            "router": None if self.router is None else self.router.as_dict(),
            "tracing": None if self.tracing is None else self.tracing.as_dict(),
        }


class QueryEngine:
    """Batched PPR query serving over a pluggable execution backend.

    Parameters
    ----------
    solver:
        The solver answering individual queries.  A solver exposing
        ``plan(query, track_memory=None)`` (MeLoPPR) runs through the
        planner/executor path and can share extractions via the cache; other
        solvers run their own ``solve``.
    backend:
        Execution strategy; defaults to :class:`SerialBackend`.
    cache:
        Optional shared ego-sub-graph cache.  Pass a configured
        :class:`SubgraphCache` to reuse extractions across queries/batches.
    router:
        Optional :class:`~repro.serving.sharding.ShardRouter` serving
        extractions from a partitioned host graph (one cache per shard).
        Mutually exclusive with ``cache`` — the router owns its caches.
    result_cache:
        Optional :class:`~repro.serving.result_cache.ScoreTableCache`
        reusing folded stage-one score tables across queries: a repeated hot
        seed skips straight to its stage-two tasks with bit-identical
        scores.  Mutually exclusive with ``router`` — a sharded engine keeps
        one result cache per shard, configured via
        ``ShardRouter(result_cache_bytes=...)``.  Compatible with every
        backend, including stage-task backends (the cache lives parent-side,
        so workers only ever see the stage-two tasks of a cached query).
    kernel:
        Diffusion-kernel selection for every stage task this engine runs
        (see :mod:`repro.diffusion.kernels`): a registered name, ``"auto"``
        or ``None`` for the environment default.  Resolved to a concrete
        name once, at construction — in-process backends pass it to the
        plan executor, stage-task backends ship it to their workers.  All
        kernels are bit-identical, so this is purely a speed knob and
        deliberately **not** part of any cache key.
    tracer:
        Optional :class:`~repro.serving.tracing.Tracer`.  Sampled queries
        (driven through ``solve_batch(queries, contexts=...)``) record a
        span tree — per-stage spans, cache hit/miss and shard-routing
        annotations, worker-side spans re-parented across the process-pool
        IPC boundary.  ``None`` (the default) keeps the hot path free of
        any tracing work beyond ``is None`` checks.

    Example
    -------
    >>> from repro.graph.generators import barabasi_albert_graph
    >>> from repro.meloppr import MeLoPPRSolver
    >>> from repro.ppr import PPRQuery
    >>> from repro.serving import QueryEngine, SubgraphCache
    >>> graph = barabasi_albert_graph(300, 2, rng=0)
    >>> engine = QueryEngine(MeLoPPRSolver(graph), cache=SubgraphCache())
    >>> results = engine.solve_batch([PPRQuery(seed=5, k=10), PPRQuery(seed=5, k=10)])
    >>> engine.stats().queries_served
    2
    """

    def __init__(
        self,
        solver: PPRSolver,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[SubgraphCache] = None,
        router: Optional[ShardRouter] = None,
        result_cache: Optional[ScoreTableCache] = None,
        kernel: Union[str, DiffusionKernel, None] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if cache is not None and router is not None:
            raise ValueError(
                "pass either cache= or router=, not both: the router owns "
                "one cache per shard"
            )
        if result_cache is not None and router is not None:
            raise ValueError(
                "pass either result_cache= or router=, not both: a sharded "
                "engine keeps one result cache per shard "
                "(ShardRouter(result_cache_bytes=...))"
            )
        self._solver = solver
        self._backend = backend if backend is not None else SerialBackend()
        # Resolve eagerly: an unknown kernel name should fail at engine
        # construction, not on the first query of a serving batch.
        self._kernel = resolve_kernel_name(kernel)
        self._cache = cache
        self._router = router
        self._result_cache = result_cache
        self._tracer = tracer
        self._pending: List[PPRQuery] = []
        self._stats = EngineStats(backend=self._backend.name)
        self._latency = LatencyHistogram()
        # Serving counters are mutated by whichever thread calls solve_batch
        # (the stress suite hammers one engine from many); accumulation,
        # snapshotting and resets all serialise on this lock so per-interval
        # metrics can never under- or over-count a batch.
        self._stats_lock = threading.Lock()
        # Streaming edge updates swap the topology under live traffic.  The
        # swap must be atomic with respect to whole batches — a batch that
        # starts on graph G finishes on graph G — so updates take a writer
        # barrier: solve_batch registers as a reader (many at once), and
        # apply_update waits until no batch is in flight, blocks new ones,
        # swaps, then releases.  Writer-preference (readers queue behind a
        # waiting writer) keeps a busy engine from starving updates.
        self._update_lock = threading.Condition(threading.Lock())
        self._active_batches = 0
        self._updating = False
        # The result-cache key includes the host graph's structural
        # fingerprint; force the (memoised) hash now so a multi-GB graph
        # charges it to engine construction, not to the first query's
        # latency.
        if result_cache is not None:
            solver.graph.fingerprint()
        elif router is not None and router.result_caching_enabled:
            router.partition.host.fingerprint()
        # A stage-task backend (the process pool) must know what graph its
        # workers serve before the first batch: bind it to the partition when
        # sharded (workers pin to shards) or to the host graph otherwise.
        if getattr(self._backend, "executes_stage_tasks", False):
            if cache is not None:
                # The extractions happen inside the workers, so an
                # engine-level cache would never see a single lookup —
                # reject the dead combination instead of silently ignoring
                # a configured budget (mirrors the cache=/router= conflict).
                raise ValueError(
                    f"backend {self._backend.name!r} executes stage tasks in "
                    "worker processes, which cache extractions themselves — "
                    "configure the worker cache via the backend (e.g. "
                    "ProcessPoolBackend(cache_bytes=...)) instead of cache="
                )
            if router is not None:
                self._backend.bind_partition(router.partition)
            else:
                self._backend.bind_graph(solver.graph)

    # ------------------------------------------------------------------
    @property
    def solver(self) -> PPRSolver:
        """The wrapped solver."""
        return self._solver

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend."""
        return self._backend

    @property
    def kernel(self) -> str:
        """Resolved diffusion-kernel name used for every stage task."""
        return self._kernel

    @property
    def cache(self) -> Optional[SubgraphCache]:
        """The shared sub-graph cache (``None`` when disabled)."""
        return self._cache

    @property
    def router(self) -> Optional[ShardRouter]:
        """The shard router (``None`` when serving the unsharded graph)."""
        return self._router

    @property
    def result_cache(self) -> Optional[ScoreTableCache]:
        """The engine-level stage-one result cache (``None`` when disabled;
        a sharded engine's per-shard result caches live on the router)."""
        return self._result_cache

    @property
    def tracer(self) -> Optional[Tracer]:
        """The attached tracer (``None`` when tracing is off)."""
        return self._tracer

    @property
    def num_pending(self) -> int:
        """Queries submitted but not yet drained."""
        return len(self._pending)

    # ------------------------------------------------------------------
    def submit(self, query: PPRQuery) -> int:
        """Enqueue one query; returns its index in the next :meth:`drain`."""
        self._pending.append(query)
        return len(self._pending) - 1

    def drain(self) -> List[PPRResult]:
        """Answer every pending query (in submission order) and clear the queue."""
        pending, self._pending = self._pending, []
        if not pending:
            return []
        return self.solve_batch(pending)

    def solve_batch(
        self,
        queries: Sequence[PPRQuery],
        contexts: Optional[Sequence[Optional[TraceContext]]] = None,
    ) -> List[PPRResult]:
        """Answer a batch of queries through the backend, in input order.

        ``contexts`` (optional, same length as ``queries``) carries one
        :class:`~repro.serving.tracing.TraceContext` — or ``None`` — per
        query; sampled queries record engine/stage/cache/worker spans into
        theirs.  Omitting it (the common case) keeps the dispatch path
        byte-for-byte the pre-tracing one.
        """
        queries = list(queries)
        if not queries:
            return []
        # Register as a reader against the update barrier: the whole batch
        # runs on one topology, and a waiting writer blocks new batches.
        with self._update_lock:
            while self._updating:
                self._update_lock.wait()
            self._active_batches += 1
        try:
            start = time.perf_counter()
            if contexts is None:
                results = self._backend.map(self._solve_one, queries)
            else:
                contexts = list(contexts)
                if len(contexts) != len(queries):
                    raise ValueError(
                        f"contexts length {len(contexts)} != queries length "
                        f"{len(queries)}"
                    )
                results = self._backend.map(
                    self._solve_traced, list(zip(queries, contexts))
                )
            wall = time.perf_counter() - start
        finally:
            with self._update_lock:
                self._active_batches -= 1
                if self._active_batches == 0:
                    self._update_lock.notify_all()

        with self._stats_lock:
            stats = self._stats
            stats.batches += 1
            stats.queries_served += len(results)
            stats.wall_seconds += wall
            for result in results:
                latency = float(result.metadata["serving"]["latency_seconds"])
                stats.query_seconds += latency
                stats.min_latency_seconds = min(stats.min_latency_seconds, latency)
                stats.max_latency_seconds = max(stats.max_latency_seconds, latency)
                self._latency.record(latency)
        return results

    def apply_update(self, ops: Sequence[EdgeOp]) -> Dict[str, object]:
        """Apply a batch of edge ops to the live graph, surgically.

        The batch (``("insert"|"delete", u, v)`` tuples or the equivalent
        dicts — see :func:`repro.graph.delta.normalize_edge_ops`) is
        validated, overlaid on the current topology through a
        :class:`~repro.graph.delta.DeltaGraph`, and compacted into a fresh
        canonical CSR — bit-identical to rebuilding from scratch, so every
        fingerprint-keyed artefact behaves exactly as if the graph had been
        reloaded.  Instead of clearing the caches, the engine then
        invalidates *surgically*: a conservative hop-distance bound from the
        touched endpoints (minimised over the old and new topology) proves
        which cached ego sub-graphs, stage-one score tables and shards the
        update can possibly reach, and only those are dropped or rebuilt —
        everything else survives, with result-cache keys rewritten to the
        new fingerprint.

        Runs under the engine's writer barrier: in-flight batches finish on
        the old graph, new batches wait for the swap (writer-preferred, so a
        busy engine cannot starve updates).  Validation failures raise
        ``ValueError`` before anything is swapped — the engine state is
        untouched.  Returns an outcome report for the admin surface.
        """
        canonical = normalize_edge_ops(ops, self._solver.graph.num_nodes)
        with self._update_lock:
            while self._updating:
                self._update_lock.wait()
            self._updating = True
            while self._active_batches:
                self._update_lock.wait()
        try:
            return self._apply_update_barriered(canonical)
        finally:
            with self._update_lock:
                self._updating = False
                self._update_lock.notify_all()

    def _apply_update_barriered(
        self, canonical: List[EdgeOp]
    ) -> Dict[str, object]:
        """The swap itself; caller holds the writer barrier."""
        old_graph = self._solver.graph
        old_fingerprint = old_graph.fingerprint()
        delta = DeltaGraph(old_graph)
        # Existence validation happens here, against the live topology, and
        # is all-or-nothing per DeltaGraph.apply — a bad op raises before
        # any cache or binding is touched.
        delta.apply(canonical)
        new_graph = delta.compact()
        new_fingerprint = new_graph.fingerprint()
        touched = delta.touched_nodes()
        # Distances only need resolving out to the deepest cached artefact
        # (and the halo test, when sharded); beyond that every entry
        # trivially survives.
        radius = 0
        if self._cache is not None:
            radius = max(radius, self._cache.max_depth())
        if self._result_cache is not None:
            radius = max(radius, self._result_cache.max_stage_one_length())
        if self._router is not None:
            radius = max(radius, self._router.update_radius())
        distances = update_distance_bound(old_graph, new_graph, touched, radius)
        invalidated = {
            "shards_rebuilt": 0,
            "subgraph_entries_dropped": 0,
            "result_entries_dropped": 0,
            "result_entries_rekeyed": 0,
        }
        if self._cache is not None:
            invalidated["subgraph_entries_dropped"] += (
                self._cache.invalidate_covering(distances)
            )
            self._cache.rebind(new_graph)
        if self._result_cache is not None:
            dropped, rekeyed = self._result_cache.apply_update(
                old_fingerprint, new_fingerprint, distances
            )
            invalidated["result_entries_dropped"] += dropped
            invalidated["result_entries_rekeyed"] += rekeyed
        if self._router is not None:
            router_outcome = self._router.apply_update(
                new_graph, old_fingerprint, new_fingerprint, distances
            )
            for key, value in router_outcome.items():
                invalidated[key] += value
        self._solver.rebind_graph(new_graph)
        if getattr(self._backend, "executes_stage_tasks", False):
            # Stage-task workers hold the old shared buffers; swap their
            # binding so the next dispatch respawns against the new graph.
            if self._router is not None:
                self._backend.rebind_partition(self._router.partition)
            else:
                self._backend.rebind_graph(new_graph)
        return {
            "ops": len(canonical),
            "touched_nodes": int(touched.size),
            "radius": int(radius),
            "old_fingerprint": old_fingerprint,
            "new_fingerprint": new_fingerprint,
            "num_nodes": int(new_graph.num_nodes),
            "num_edges": int(new_graph.num_edges),
            "invalidated": invalidated,
        }

    def _solve_traced(self, job) -> PPRResult:
        """Backend-map adapter for ``(query, context)`` pairs."""
        query, ctx = job
        if ctx is None:
            return self._solve_one(query)
        with ctx.span(
            "engine.query",
            seed=int(query.seed),
            k=int(query.k),
            backend=self._backend.name,
        ):
            return self._solve_one(query, ctx)

    def _solve_one(
        self, query: PPRQuery, ctx: Optional[TraceContext] = None
    ) -> PPRResult:
        """Answer one query (runs on a backend worker)."""
        start = time.perf_counter()
        result_cache_outcome: Optional[str] = None
        plan_factory = getattr(self._solver, "plan", None)
        if plan_factory is not None:
            if self._router is not None:
                extract = self._router.extract
            elif self._cache is not None:
                extract = self._cache.get_or_extract
            else:
                extract = None
            if ctx is not None and not getattr(
                self._backend, "executes_stage_tasks", False
            ):
                # Traced in-process extraction: wrap the hook so every
                # extraction records a span with cache hit/miss and (when
                # sharded) shard-routing annotations.  Stage-task backends
                # extract inside their workers, which record their own spans.
                extract = self._traced_extract(
                    extract if extract is not None else default_extract, ctx
                )
            # tracemalloc is process-global: under a concurrent backend two
            # plans measuring at once would corrupt each other's peaks, so
            # force tracking off there (peak_memory_bytes then reports the
            # deterministic modelled working set instead).
            track_memory = False if self._backend.concurrent else None
            plan = plan_factory(query, track_memory=track_memory)

            # Cross-query stage-one reuse: a hit resumes the plan past its
            # first stage, a miss installs the folded state after the first
            # stage completes.  Both paths are parent-side — a stage-task
            # backend's workers only ever see the remaining stage-two tasks.
            result_cache = (
                self._router.result_cache_for(query.seed)
                if self._router is not None
                else self._result_cache
            )
            install: Optional[Callable[[MeLoPPRPlan], None]] = None
            if result_cache is not None:
                rc_span = (
                    None
                    if ctx is None
                    else ctx.begin_span("engine.result_cache")
                )
                key = stage_one_cache_key(plan)
                state = result_cache.get(key)
                if state is not None:
                    plan = MeLoPPRPlan.from_stage_one_table(
                        plan.graph,
                        plan.config,
                        query,
                        state,
                        track_memory=track_memory,
                    )
                    result_cache_outcome = "hit"
                else:
                    install = lambda done_plan: result_cache.put(
                        key, done_plan.stage_one_state()
                    )
                    result_cache_outcome = "miss"
                if rc_span is not None:
                    ctx.end_span(rc_span, outcome=result_cache_outcome)
            result = self._drive_plan(plan, extract, install=install, ctx=ctx)
        else:
            result = self._solver.solve(query)
        latency = time.perf_counter() - start
        return self._finish_result(result, latency, result_cache_outcome)

    def _traced_extract(self, inner, ctx: TraceContext):
        """Wrap an extraction hook so each call records an ``extract`` span."""
        router = self._router

        def traced(graph, center, depth):
            with ctx.span("extract", center=int(center), depth=int(depth)) as span:
                if router is not None:
                    shard_id, fallback = router.route_info(center, depth)
                    span.attributes["shard_id"] = shard_id
                    span.attributes["halo_fallback"] = fallback
                subgraph, bfs, cache_hit = inner(graph, center, depth)
                span.attributes["cache_hit"] = bool(cache_hit)
            return subgraph, bfs, cache_hit

        return traced

    def _drive_plan(
        self,
        plan: MeLoPPRPlan,
        extract,
        install: Optional[Callable[[MeLoPPRPlan], None]] = None,
        ctx: Optional[TraceContext] = None,
    ) -> PPRResult:
        """Drive a plan to completion through the backend.

        The plan (folding, residual selection) always runs in the parent, in
        exactly the serial order, so scores stay bit-identical to
        :func:`~repro.meloppr.planner.execute_plan` — an in-process backend
        literally runs ``execute_plan`` (one serial drive loop in the
        library); a stage-task backend runs the extraction + diffusion of
        each task in a worker process, with ``extract`` as the parent-side
        hook for tasks the workers cannot serve (sharded extractions beyond
        the halo fall back to the host graph here).  ``install`` runs once,
        right after the first stage folds — the result cache's snapshot
        point.
        """
        after_stage: Optional[Callable[[MeLoPPRPlan], None]] = None
        if install is not None:
            pending = install

            def after_stage(done_plan: MeLoPPRPlan) -> None:
                nonlocal pending
                if pending is not None:
                    callback, pending = pending, None
                    callback(done_plan)

        if not getattr(self._backend, "executes_stage_tasks", False):
            return execute_plan(
                plan,
                extract=extract,
                after_stage=after_stage,
                kernel=self._kernel,
                span=None if ctx is None else ctx.span,
            )
        try:
            while not plan.done:
                tasks = plan.pending_tasks
                stage_span = (
                    None
                    if ctx is None
                    else ctx.begin_span(
                        "engine.stage",
                        push=True,
                        stage=tasks[0].stage_index,
                        num_tasks=len(tasks),
                    )
                )
                try:
                    plan.complete_stage(
                        self._backend.run_stage_tasks(
                            tasks,
                            fallback=extract,
                            timing=plan.timing,
                            kernel=self._kernel,
                            trace=ctx,
                        )
                    )
                finally:
                    if stage_span is not None:
                        ctx.end_span(stage_span)
                if after_stage is not None:
                    after_stage(plan)
        finally:
            plan.close()
        return plan.finish()

    def _finish_result(
        self,
        result: PPRResult,
        latency: float,
        result_cache_outcome: Optional[str] = None,
    ) -> PPRResult:
        """Stamp the serving metadata onto one query's result."""
        result.metadata["serving"] = {
            "backend": self._backend.name,
            "remote_tasks": getattr(self._backend, "executes_stage_tasks", False),
            "latency_seconds": latency,
            "cache_enabled": (
                self._cache is not None
                or (self._router is not None and self._router.caching_enabled)
                or getattr(self._backend, "cache_bytes", None) is not None
            ),
            # "hit" (stage one replayed from cache), "miss" (computed and
            # installed) or None (result caching off / non-planner solver).
            "result_cache": result_cache_outcome,
            "sharded": self._router is not None,
        }
        return result

    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """Aggregate stats snapshot (includes current cache counters).

        The ``cache`` field is uniform across serving modes: it carries the
        engine-level cache's counters when one is configured, and the
        router's aggregated per-shard + fallback counters when sharded —
        plus, folded in, any stage-task backend's worker-cache counters and
        the stage-one result cache's counters (the latter also reported
        alone under ``result_cache``).
        """
        router_stats = None if self._router is None else self._router.stats()
        if self._cache is not None:
            cache_stats: Optional[CacheStats] = self._cache.stats
        elif router_stats is not None:
            cache_stats = router_stats.aggregate_cache()
        else:
            cache_stats = None
        # A stage-task backend caches extractions in its workers; fold those
        # counters in so ``stats.cache.hit_rate`` stays meaningful there too.
        backend_cache_stats = getattr(self._backend, "cache_stats", None)
        if backend_cache_stats is not None:
            cache_stats = _merge_cache_stats(cache_stats, backend_cache_stats())
        if self._result_cache is not None:
            result_cache_stats: Optional[CacheStats] = self._result_cache.stats
        elif router_stats is not None:
            result_cache_stats = router_stats.aggregate_result_cache()
        else:
            result_cache_stats = None
        cache_stats = _merge_cache_stats(cache_stats, result_cache_stats)
        with self._stats_lock:
            stats = self._stats
            return EngineStats(
                backend=stats.backend,
                queries_served=stats.queries_served,
                batches=stats.batches,
                wall_seconds=stats.wall_seconds,
                query_seconds=stats.query_seconds,
                min_latency_seconds=stats.min_latency_seconds,
                max_latency_seconds=stats.max_latency_seconds,
                latency=self._latency.snapshot(),
                cache=cache_stats,
                result_cache=result_cache_stats,
                router=router_stats,
                tracing=(
                    None if self._tracer is None else self._tracer.stats()
                ),
            )

    def reset_stats(self, reset_cache_stats: bool = False) -> None:
        """Zero the serving counters (for per-interval server metrics).

        Cache contents are never touched — only counters reset.  By default
        the cache/router counters keep accumulating (their hit rates describe
        the cache's whole life); pass ``reset_cache_stats=True`` to zero them
        too so every interval reports interval-local hit rates.  That resets
        **every** counter source ``stats()`` aggregates — the engine cache or
        the router's per-shard/fallback/result caches, the engine-level
        result cache, and a stage-task backend's worker caches — so an
        interval snapshot can never mix a freshly zeroed engine counter with
        a stale cache counter.  (The engine accumulator and the latency
        histogram reset under the stats lock; with traffic still in flight
        the caches quiesce at their own locks, so drain first for exact
        cross-source invariants, as the stress tests do.)
        """
        with self._stats_lock:
            self._stats.reset()
            self._latency.reset()
        # Tracing counters are serving counters, not cache counters: they
        # reset unconditionally, like the latency histogram (the trace ring
        # buffer itself is debug state and survives — see Tracer.clear()).
        if self._tracer is not None:
            self._tracer.reset_stats()
        if reset_cache_stats:
            if self._cache is not None:
                self._cache.reset_stats()
            if self._router is not None:
                self._router.reset_stats()
            if self._result_cache is not None:
                self._result_cache.reset_stats()
            backend_reset = getattr(self._backend, "reset_cache_stats", None)
            if backend_reset is not None:
                backend_reset()

    def close(self, discard_pending: bool = False) -> None:
        """Shut down the backend (the cache, if any, is left warm).

        Submitted-but-undrained queries are answers the caller still expects,
        so closing with a non-empty queue raises unless ``discard_pending``
        explicitly waives them — call :meth:`drain` first to get the results.
        The backend is released **even on that error path** (in a
        ``finally``): backends may hold OS resources (worker processes,
        shared-memory segments) that must never outlive a failed close.  A
        subsequent :meth:`drain` still works — every backend restarts lazily
        on its next dispatch.
        """
        try:
            if self._pending:
                if not discard_pending:
                    raise RuntimeError(
                        f"{len(self._pending)} submitted queries are still pending; "
                        "drain() before close(), or close(discard_pending=True) "
                        "to drop them"
                    )
                self._pending.clear()
        finally:
            self._backend.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        # When the body is already raising, don't mask its exception with the
        # pending-queries error — the queue is forfeit either way.
        if exc_type is not None:
            self.close(discard_pending=True)
            return
        pending = len(self._pending)
        if pending:
            # The engine reference dies with the with-block, so the backend
            # must be shut down (worker threads joined) before surfacing the
            # dropped-queries error.
            self.close(discard_pending=True)
            raise RuntimeError(
                f"{pending} submitted queries were still pending at context "
                "exit; drain() before leaving the with-block"
            )
        self.close()

    def __repr__(self) -> str:
        cache = "none" if self._cache is None else repr(self._cache)
        result_cache = (
            "none" if self._result_cache is None else repr(self._result_cache)
        )
        return (
            f"QueryEngine(solver={self._solver!r}, backend={self._backend!r}, "
            f"cache={cache}, result_cache={result_cache}, "
            f"router={self._router!r})"
        )
