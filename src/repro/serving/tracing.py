"""Zero-dependency distributed tracing for the serving request path.

PR 7 gave the front door aggregate Prometheus metrics; this module answers
the per-request question those aggregates cannot: *where did this one slow
query spend its time?*  It provides a minimal span tracer — no OpenTelemetry,
no third-party packages — threaded through every layer of the request path:

* :class:`Tracer` — owns the sampling decision, a bounded in-memory ring
  buffer of finished traces, monotonically updated counters
  (:class:`TracingStats`), and the threshold-triggered slow-query log.
* :class:`TraceContext` — one sampled request.  Layers open spans with
  ``ctx.span(name, **attrs)`` (nesting tracked via an explicit parent
  stack), or :meth:`TraceContext.begin_span` / :meth:`TraceContext.end_span`
  when the start and end live in different coroutine steps (queue waits,
  batch membership).  Worker-side spans recorded in other processes are
  re-parented under the current position with :meth:`TraceContext.adopt`.
* :class:`Span` — one timed operation: ids, parent link, wall-aligned
  monotonic start/end, free-form attributes, recording pid/tid so the
  Perfetto export lays worker processes out on their own tracks.

Context propagates *in* via a W3C-style ``traceparent`` header
(:func:`parse_traceparent` / :func:`format_traceparent`) and flows *out*
via :meth:`Tracer.traces` (JSON span trees for ``GET /debug/traces``),
:meth:`Tracer.perfetto` (Chrome trace-event format, loadable in Perfetto or
``chrome://tracing``), and the slow-query JSONL log.

Clocks: every timestamp is ``wall_anchor + perf_counter()`` where the anchor
is captured once per process (:func:`monotonic_wall`).  Within a process the
timeline is strictly monotonic; across processes on the same host it is
wall-aligned, so parent and worker spans interleave correctly on one
Perfetto timeline without any clock-sync protocol.

When sampling is off (``sample_rate == 0`` or no tracer configured) every
hook in the hot path is a single ``is None`` check — the overhead guard in
``benchmarks/bench_tracing.py`` holds the serving benchmark to the same
throughput either way.
"""

from __future__ import annotations

import json
import os
import random
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "TracingStats",
    "format_traceparent",
    "make_span_id",
    "make_trace_id",
    "monotonic_wall",
    "parse_traceparent",
    "validate_trace_events",
    "worker_task_spans",
]

# Captured once per process: the wall-clock reading at one perf_counter
# origin.  perf_counter() is CLOCK_MONOTONIC on Linux (system-wide), so the
# anchor stays valid across fork; spawn re-imports and re-anchors, which is
# equally consistent because both anchors measure the same host wall clock.
_WALL_ANCHOR = time.time() - time.perf_counter()


def monotonic_wall() -> float:
    """Wall-aligned monotonic seconds (see module docstring for the scheme)."""
    return _WALL_ANCHOR + time.perf_counter()


def make_trace_id() -> str:
    """A 32-hex-char trace id (random, non-zero as required by W3C)."""
    raw = os.urandom(16).hex()
    return raw if raw != "0" * 32 else make_trace_id()


def make_span_id() -> str:
    """A 16-hex-char span id."""
    raw = os.urandom(8).hex()
    return raw if raw != "0" * 16 else make_span_id()


_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def parse_traceparent(header: str) -> Optional[Tuple[str, str, bool]]:
    """Parse a W3C ``traceparent`` header.

    Returns ``(trace_id, parent_span_id, sampled)`` or ``None`` when the
    header is malformed — per the spec, an unparseable header is ignored
    (the request simply starts a fresh trace) rather than rejected.
    """
    if not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff" or trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id, bool(int(flags, 16) & 0x01)


def format_traceparent(trace_id: str, span_id: str, sampled: bool = True) -> str:
    """Render a version-00 ``traceparent`` header."""
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


class Span:
    """One timed operation inside a trace.

    ``start``/``end`` are :func:`monotonic_wall` seconds; ``end`` is ``None``
    while the span is open.  ``attributes`` is a free-form dict of
    JSON-serialisable annotations (cache hit/miss, shard id, batch size...).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attributes",
        "pid",
        "tid",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        end: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.attributes: Dict[str, Any] = attributes if attributes is not None else {}
        self.pid = pid if pid is not None else os.getpid()
        self.tid = tid if tid is not None else threading.get_ident()

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds, 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_ms": self.duration_seconds * 1e3,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration_seconds * 1e3:.3f}ms)"
        )


class _ScopedSpan:
    """``with ctx.span(...) as span:`` — begin on enter, end on exit."""

    __slots__ = ("_ctx", "_name", "_attributes", "span")

    def __init__(self, ctx: "TraceContext", name: str, attributes: Dict[str, Any]):
        self._ctx = ctx
        self._name = name
        self._attributes = attributes
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._ctx.begin_span(self._name, push=True, **self._attributes)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.span is not None
        if exc_type is not None:
            self._ctx.end_span(self.span, status="error", error=repr(exc))
        else:
            self._ctx.end_span(self.span)
        return False


class TraceContext:
    """All spans of one sampled request, plus the live nesting state.

    A context only exists when the request *is* sampled — unsampled requests
    get ``None`` and every instrumentation site gates on that, keeping the
    untraced hot path to one pointer comparison.

    Thread-safety: span begin/end/adopt are lock-guarded.  The parent
    *stack* assumes the request's operations are causally ordered (queue →
    batch → engine → stages), which holds for the serving path even as it
    hops between the event loop, executor threads, and the collector thread;
    concurrent *sibling* work (process-pool workers) records spans in its own
    process and re-parents them via :meth:`adopt` instead of sharing the
    stack.
    """

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        name: str = "request",
        parent_id: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._finished = False
        self.root = Span(
            trace_id,
            make_span_id(),
            parent_id,
            name,
            monotonic_wall(),
            attributes=dict(attributes or {}),
        )
        self.spans: List[Span] = [self.root]
        self._stack: List[Span] = [self.root]
        self._open: List[Span] = []

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _ScopedSpan:
        """Context manager opening a child span under the current position."""
        return _ScopedSpan(self, name, attributes)

    def begin_span(
        self, name: str, push: bool = False, **attributes: Any
    ) -> Span:
        """Open a span now; the caller ends it later with :meth:`end_span`.

        ``push=True`` additionally makes it the parent of subsequently
        opened spans until it ends (what ``ctx.span(...)`` does).
        """
        with self._lock:
            parent = self._stack[-1] if self._stack else self.root
            span = Span(
                self.trace_id,
                make_span_id(),
                parent.span_id,
                name,
                monotonic_wall(),
                attributes=dict(attributes),
            )
            self.spans.append(span)
            self._open.append(span)
            if push:
                self._stack.append(span)
            return span

    def end_span(self, span: Span, **attributes: Any) -> None:
        """Close ``span`` (idempotent) and merge any final attributes."""
        with self._lock:
            if span.end is not None:
                return
            span.end = monotonic_wall()
            if attributes:
                span.attributes.update(attributes)
            try:
                self._open.remove(span)
            except ValueError:  # pragma: no cover - defensive
                pass
            if span in self._stack:
                self._stack.remove(span)

    def current_span_id(self) -> str:
        """Id of the innermost open span (for outbound propagation)."""
        with self._lock:
            return (self._stack[-1] if self._stack else self.root).span_id

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the root span."""
        with self._lock:
            self.root.attributes.update(attributes)

    # -- cross-process adoption -------------------------------------------

    def adopt(self, raw_spans: Iterable[Mapping[str, Any]]) -> int:
        """Graft worker-recorded span dicts into this trace.

        Workers know nothing about the query's trace: they record spans with
        local ids and ``parent_id=None`` at their roots (children keep their
        intra-worker links).  Adoption rewrites the trace id and re-parents
        every root under the innermost span open *here* — the per-stage span
        that issued the IPC round-trip.  Returns the number of spans grafted.
        """
        count = 0
        with self._lock:
            parent = (self._stack[-1] if self._stack else self.root).span_id
            for raw in raw_spans:
                span = Span(
                    self.trace_id,
                    str(raw["span_id"]),
                    str(raw["parent_id"]) if raw.get("parent_id") else parent,
                    str(raw["name"]),
                    float(raw["start"]),
                    float(raw["end"]) if raw.get("end") is not None else None,
                    attributes=dict(raw.get("attributes") or {}),
                    pid=raw.get("pid"),
                    tid=raw.get("tid"),
                )
                self.spans.append(span)
                count += 1
        return count

    # -- completion --------------------------------------------------------

    def finish(self, status: str = "ok", **attributes: Any) -> None:
        """Close the trace and hand the span tree to the tracer (idempotent).

        Any spans still open (error paths that bypassed an ``end_span``) are
        closed here and flagged ``auto_closed`` so a truncated tree is
        visible as such instead of silently losing durations.
        """
        with self._lock:
            if self._finished:
                return
            self._finished = True
            now = monotonic_wall()
            for span in self._open:
                span.end = now
                span.attributes.setdefault("auto_closed", True)
            self._open.clear()
            self._stack.clear()
            self.root.attributes.update(attributes)
            self.root.attributes["status"] = status
            self.root.end = now
        self._tracer._record(self)

    def as_dict(self) -> Dict[str, Any]:
        """The finished span tree in ``/debug/traces`` JSON shape."""
        with self._lock:
            spans = [span.as_dict() for span in self.spans]
        root = spans[0]
        return {
            "trace_id": self.trace_id,
            "root_span_id": self.root.span_id,
            "name": self.root.name,
            "status": self.root.attributes.get("status"),
            "start": root["start"],
            "duration_ms": root["duration_ms"],
            "spans": spans,
        }


@dataclass(frozen=True)
class TracingStats:
    """Monotonic tracer counters, folded into ``EngineStats``/Prometheus."""

    started: int = 0
    sampled: int = 0
    finished: int = 0
    spans: int = 0
    slow_traces: int = 0
    dropped: int = 0
    sample_rate: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "started": self.started,
            "sampled": self.sampled,
            "finished": self.finished,
            "spans": self.spans,
            "slow_traces": self.slow_traces,
            "dropped": self.dropped,
            "sample_rate": self.sample_rate,
        }


class Tracer:
    """Sampling, the finished-trace ring buffer, and the slow-query log.

    ``sample_rate`` is the probability an offered request is traced (0.0
    disables local sampling; an inbound ``traceparent`` with the sampled
    flag set forces tracing regardless, so an operator can always trace one
    request by hand with ``curl -H 'traceparent: ...'``).  Finished traces
    land in a ``ring_size``-bounded deque served at ``/debug/traces``;
    traces slower than ``slow_threshold_ms`` are additionally appended as
    JSONL span trees to ``slow_log_path``.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        ring_size: int = 512,
        slow_threshold_ms: Optional[float] = None,
        slow_log_path: Optional[str] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        if slow_threshold_ms is not None and slow_threshold_ms < 0:
            raise ValueError(
                f"slow_threshold_ms must be >= 0, got {slow_threshold_ms}"
            )
        self._lock = threading.Lock()
        self._sample_rate = float(sample_rate)
        self._ring: deque = deque(maxlen=int(ring_size))
        self._slow_threshold_ms = slow_threshold_ms
        self._slow_log_path = slow_log_path
        self._rng = rng if rng is not None else random.Random()
        self._started = 0
        self._sampled = 0
        self._finished = 0
        self._spans = 0
        self._slow = 0
        self._dropped = 0

    # -- configuration -----------------------------------------------------

    @property
    def sample_rate(self) -> float:
        with self._lock:
            return self._sample_rate

    def set_sample_rate(self, rate: float) -> None:
        """Hot-reload hook (``/admin/reload`` key ``trace_sample``)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {rate}")
        with self._lock:
            self._sample_rate = float(rate)

    @property
    def slow_threshold_ms(self) -> Optional[float]:
        return self._slow_threshold_ms

    @property
    def slow_log_path(self) -> Optional[str]:
        return self._slow_log_path

    # -- trace lifecycle ---------------------------------------------------

    def start_trace(
        self,
        name: str = "request",
        traceparent: Optional[str] = None,
        **attributes: Any,
    ) -> Optional[TraceContext]:
        """Offer a request to the tracer; ``None`` means *not sampled*.

        An inbound ``traceparent`` (if parseable) pins the trace id and links
        the root span to the external parent; its sampled flag forces
        sampling.  Otherwise the local ``sample_rate`` decides.
        """
        trace_id: Optional[str] = None
        parent_id: Optional[str] = None
        forced = False
        if traceparent is not None:
            parsed = parse_traceparent(traceparent)
            if parsed is not None:
                trace_id, parent_id, forced = parsed
        with self._lock:
            self._started += 1
            rate = self._sample_rate
            sampled = forced or (rate > 0.0 and self._rng.random() < rate)
            if not sampled:
                return None
            self._sampled += 1
        return TraceContext(
            self,
            trace_id if trace_id is not None else make_trace_id(),
            name=name,
            parent_id=parent_id,
            attributes=attributes,
        )

    def _record(self, ctx: TraceContext) -> None:
        """Called by :meth:`TraceContext.finish` — never directly."""
        tree = ctx.as_dict()
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(tree)
            self._finished += 1
            self._spans += len(tree["spans"])
            threshold = self._slow_threshold_ms
            is_slow = threshold is not None and tree["duration_ms"] >= threshold
            if is_slow:
                self._slow += 1
        if is_slow and self._slow_log_path is not None:
            line = json.dumps(tree, separators=(",", ":"), sort_keys=False)
            with self._lock:
                with open(self._slow_log_path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")

    # -- export ------------------------------------------------------------

    def traces(self) -> List[Dict[str, Any]]:
        """Finished span trees, oldest first (bounded by the ring size)."""
        with self._lock:
            return list(self._ring)

    def perfetto(self) -> Dict[str, Any]:
        """The ring as a Chrome trace-event document.

        Every span becomes one complete ("X") event; timestamps are rebased
        so the earliest span starts at ts=0 and converted to microseconds.
        Worker pids get process_name metadata so Perfetto labels the tracks.
        """
        trees = self.traces()
        events: List[Dict[str, Any]] = []
        pids: Dict[int, None] = {}
        base: Optional[float] = None
        for tree in trees:
            for span in tree["spans"]:
                if base is None or span["start"] < base:
                    base = span["start"]
        for tree in trees:
            for span in tree["spans"]:
                end = span["end"] if span["end"] is not None else span["start"]
                args = dict(span["attributes"])
                args["trace_id"] = tree["trace_id"]
                args["span_id"] = span["span_id"]
                if span["parent_id"] is not None:
                    args["parent_id"] = span["parent_id"]
                events.append(
                    {
                        "name": span["name"],
                        "cat": "serving",
                        "ph": "X",
                        "ts": (span["start"] - base) * 1e6,
                        "dur": max(0.0, end - span["start"]) * 1e6,
                        "pid": span["pid"],
                        "tid": span["tid"],
                        "args": args,
                    }
                )
                pids.setdefault(span["pid"])
        this_pid = os.getpid()
        for pid in pids:
            label = "serving" if pid == this_pid else f"worker-{pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # -- counters ----------------------------------------------------------

    def stats(self) -> TracingStats:
        with self._lock:
            return TracingStats(
                started=self._started,
                sampled=self._sampled,
                finished=self._finished,
                spans=self._spans,
                slow_traces=self._slow,
                dropped=self._dropped,
                sample_rate=self._sample_rate,
            )

    def reset_stats(self) -> None:
        """Zero the counters (the ring and configuration are untouched)."""
        with self._lock:
            self._started = 0
            self._sampled = 0
            self._finished = 0
            self._spans = 0
            self._slow = 0
            self._dropped = 0

    def clear(self) -> None:
        """Drop buffered traces (``reset_stats`` does *not* do this)."""
        with self._lock:
            self._ring.clear()


# -- worker-side span synthesis -------------------------------------------


def worker_task_spans(
    stage_index: int,
    center: int,
    shard_id: Optional[int],
    started: float,
    ended: float,
    timing_seconds: Mapping[str, float],
    cache_hit: Optional[bool] = None,
) -> List[Dict[str, Any]]:
    """Span dicts for one stage task executed inside a pool worker.

    The worker has no :class:`TraceContext`; it synthesises plain dicts
    (cheap to pickle onto the existing response message) which the parent
    grafts into the query's trace with :meth:`TraceContext.adopt`.  The
    task's measured ``bfs``/``diffusion`` timing buckets become child spans
    anchored at the task's start/end: extraction happens first, diffusion
    last, so ``[started, started+bfs]`` and ``[ended-diffusion, ended]``
    place them faithfully on the timeline.
    """
    pid = os.getpid()
    tid = threading.get_ident()
    task_id = make_span_id()
    attrs: Dict[str, Any] = {
        "stage": int(stage_index),
        "center": int(center),
        "worker_pid": pid,
    }
    if shard_id is not None:
        attrs["shard_id"] = int(shard_id)
    if cache_hit is not None:
        attrs["cache_hit"] = bool(cache_hit)
    spans: List[Dict[str, Any]] = [
        {
            "span_id": task_id,
            "parent_id": None,
            "name": "worker.task",
            "start": started,
            "end": ended,
            "pid": pid,
            "tid": tid,
            "attributes": attrs,
        }
    ]
    bfs = float(timing_seconds.get("bfs", 0.0))
    diffusion = float(timing_seconds.get("diffusion", 0.0))
    if bfs > 0.0:
        spans.append(
            {
                "span_id": make_span_id(),
                "parent_id": task_id,
                "name": "worker.extract",
                "start": started,
                "end": min(ended, started + bfs),
                "pid": pid,
                "tid": tid,
                "attributes": {} if cache_hit is None else {"cache_hit": bool(cache_hit)},
            }
        )
    if diffusion > 0.0:
        spans.append(
            {
                "span_id": make_span_id(),
                "parent_id": task_id,
                "name": "worker.diffusion",
                "start": max(started, ended - diffusion),
                "end": ended,
                "pid": pid,
                "tid": tid,
                "attributes": {},
            }
        )
    return spans


# -- export validation -----------------------------------------------------


def validate_trace_events(doc: Any) -> int:
    """Validate a Chrome trace-event JSON document; return the event count.

    Checks the subset of the trace-event schema that Perfetto and
    ``chrome://tracing`` require to load the file: a ``traceEvents`` array
    whose members carry ``name``/``ph``/``pid``/``tid``, with complete
    ("X") events additionally carrying numeric non-negative ``ts``/``dur``.
    Raises :class:`ValueError` on the first violation — used by tests and
    the CI bench-smoke step to scrape-validate ``/debug/traces/perfetto``.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must carry a 'traceEvents' array")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: events must be objects")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"{where}: missing required field {key!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"{where}: 'name' must be a string")
        phase = event["ph"]
        if not isinstance(phase, str) or len(phase) != 1:
            raise ValueError(f"{where}: 'ph' must be a single-character string")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int) or isinstance(event[key], bool):
                raise ValueError(f"{where}: {key!r} must be an integer")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(f"{where}: {key!r} must be a number")
                if value < 0:
                    raise ValueError(f"{where}: {key!r} must be >= 0")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")
    return len(events)
