"""Pluggable execution backends for the query-serving engine.

A backend answers one question: *how do the independent per-query jobs of a
batch run?*  The engine builds a closure per query (plan → execute → result)
and hands the whole batch to :meth:`ExecutionBackend.map`; the backend owns
ordering and concurrency.  Two backends ship today:

* :class:`SerialBackend` — the reference: runs jobs one by one on the calling
  thread.  Zero overhead, bit-identical to the historical sequential loop.
* :class:`ThreadPoolBackend` — a persistent ``ThreadPoolExecutor``.  The
  diffusion kernel spends its time in NumPy ufuncs that release the GIL, so
  threads overlap real work; results are still returned in submission order
  and are deterministic because every query's computation is independent.
* :class:`ProcessPoolBackend` — persistent worker *processes* serving the
  BFS-heavy stage tasks from a shared-memory copy of the graph.  The thread
  pool is GIL-bound for the Python share of the extraction work (frontier
  bookkeeping, sub-graph relabelling, id maps); the process pool is the first
  backend whose throughput scales past one core.  Workers attach the CSR
  buffers exported by :mod:`repro.serving.shm` once at spawn and then serve
  pickled :class:`~repro.meloppr.planner.StageTask` requests; planning and
  score folding stay in the parent, so scores are bit-identical to
  :class:`SerialBackend`.  Bound to a
  :class:`~repro.graph.partition.GraphPartition`, each worker is pinned to
  its shards' sub-graphs (per-shard shared segments) and extractions beyond
  the halo are proxied back to the parent.

A further backend, :class:`~repro.serving.frontend.AsyncBackend`, runs jobs
on an asyncio event loop (see :mod:`repro.serving.frontend`); benchmarks, the
server CLI and user code construct any of them from a compact spec string via
:func:`make_backend` (``"serial"``, ``"thread:8"``, ``"async:4"``,
``"process:4"``).  Later PRs can add a modelled-FPGA backend behind the same
interface (see ROADMAP open items).
"""

from __future__ import annotations

import abc
import itertools
import multiprocessing
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing.connection import wait as _connection_wait
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.serving.cache import DEFAULT_CACHE_BYTES, CacheStats, SubgraphCache
from repro.serving.tracing import monotonic_wall, worker_task_spans

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "WorkerCrashError",
    "make_backend",
]

#: Knuth's multiplicative hash constant (same spread as the hash partitioner).
_HASH_MULTIPLIER = 2654435761

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend(abc.ABC):
    """Strategy running a batch of independent query jobs.

    Implementations must preserve input order in the returned list and must
    not reorder effects visible through a shared cache in a way that changes
    results (extractions are deterministic, so any interleaving is safe).
    """

    #: Short name used in stats, reports and benchmarks.
    name: str = "backend"

    #: Whether jobs may run simultaneously.  The engine uses this to disable
    #: per-query ``tracemalloc`` measurement, which is process-global and
    #: cannot attribute peaks to overlapping queries.
    concurrent: bool = False

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``items``, returning results in input order."""

    def close(self) -> None:
        """Release any held resources (idempotent; default no-op)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every job sequentially on the calling thread."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadPoolBackend(ExecutionBackend):
    """Run jobs on a persistent thread pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``ThreadPoolExecutor``'s heuristic.  The pool
        is created lazily on first use and survives across batches so
        steady-state serving does not pay thread start-up per batch.
    """

    name = "thread-pool"
    concurrent = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be > 0, got {max_workers}")
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def max_workers(self) -> Optional[int]:
        """Configured pool size (``None`` = executor default)."""
        return self._max_workers

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-serving",
            )
        return self._executor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        # Executor.map yields results in submission order regardless of
        # completion order, which is exactly the ordering contract.
        return list(self._ensure_executor().map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:
        workers = "default" if self._max_workers is None else self._max_workers
        return f"ThreadPoolBackend(max_workers={workers})"


class WorkerCrashError(RuntimeError):
    """A process-pool worker died (or the pool is unusable after a death).

    Raised for every stage task that was in flight when a worker crashed and
    for every dispatch attempted afterwards, so a killed worker surfaces as a
    clear batch error instead of a hang.  ``close()`` resets the pool; the
    next batch respawns fresh workers.
    """


# ----------------------------------------------------------------------
# Worker-side execution (runs in the spawned/forked worker processes).
# ----------------------------------------------------------------------
class _WireGraph:
    """Size-only stand-in for the ego CSR graph in a wire outcome."""

    __slots__ = ("_nbytes",)

    def __init__(self, nbytes: int) -> None:
        self._nbytes = int(nbytes)

    def nbytes(self) -> int:
        return self._nbytes


class _WireSubgraph:
    """The slice of a :class:`~repro.graph.subgraph.Subgraph` the planner folds.

    The parent's fold loop reads ``global_ids``, the node/edge counts and the
    retained byte size — never the CSR arrays or the global→local map, which
    dominate the pickle cost of a full sub-graph.  Workers therefore ship
    this compact stand-in instead: ~third of the bytes, ~third of the
    parent-side unpickle time, and the parent's unpickle+fold throughput is
    exactly what bounds how many workers the pool can feed.
    """

    __slots__ = ("global_ids", "num_nodes", "num_edges", "graph")

    def __init__(self, global_ids, num_nodes: int, num_edges: int, graph_nbytes: int) -> None:
        self.global_ids = global_ids
        self.num_nodes = int(num_nodes)
        self.num_edges = int(num_edges)
        self.graph = _WireGraph(graph_nbytes)


class _WireBFS:
    """The slice of a BFS record the planner folds (cost model input)."""

    __slots__ = ("source", "depth", "edges_scanned")

    def __init__(self, source: int, depth: int, edges_scanned: int) -> None:
        self.source = int(source)
        self.depth = int(depth)
        self.edges_scanned = int(edges_scanned)


def _compact_outcome(outcome):
    """Shrink a worker's StageTaskOutcome to the fields the planner folds."""
    from repro.meloppr.planner import StageTaskOutcome

    subgraph = outcome.subgraph
    bfs = outcome.bfs
    return StageTaskOutcome(
        task=outcome.task,
        subgraph=_WireSubgraph(
            subgraph.global_ids,
            subgraph.num_nodes,
            subgraph.num_edges,
            subgraph.graph.nbytes(),
        ),
        bfs=_WireBFS(bfs.source, bfs.depth, bfs.edges_scanned),
        diffusion=outcome.diffusion,
        cache_hit=outcome.cache_hit,
    )



class _WorkerState:
    """One worker's attached graph(s) and extraction cache(s).

    Built from the shared-memory descriptors the parent hands to
    :func:`_process_worker_main`; also constructed in-process by the unit
    tests, which is what keeps this logic under the coverage floor even
    though the worker loop itself runs in a child process.
    """

    def __init__(self, bindings, cache_bytes: Optional[int]) -> None:
        # Imported here (not at module top) so importing the backends module
        # stays light; workers pay the import once at spawn.
        from repro.serving.shm import (
            SharedGraphDescriptor,
            SharedGraphHandle,
            SharedShardHandle,
        )

        self._cache_bytes = cache_bytes
        self._host_graph = None
        self._host_cache: Optional[SubgraphCache] = None
        self._shards: Dict[int, Tuple[object, Optional[SubgraphCache]]] = {}
        if isinstance(bindings, SharedGraphDescriptor):
            self._attached = SharedGraphHandle.attach(bindings)
            self._host_graph = self._attached.graph
            if cache_bytes is not None:
                self._host_cache = SubgraphCache(cache_bytes)
        else:
            self._attachments = []
            for descriptor in bindings:
                attached = SharedShardHandle.attach(descriptor)
                self._attachments.append(attached)
                cache = SubgraphCache(cache_bytes) if cache_bytes is not None else None
                self._shards[attached.shard_id] = (attached, cache)

    # ------------------------------------------------------------------
    def run_task(self, task, shard_id: Optional[int], kernel: Optional[str] = None):
        """Execute one stage task; returns ``(outcome, timing_seconds)``.

        ``kernel`` is the parent-resolved diffusion-kernel name (shipped
        with each task group); the memoised per-sub-graph operators it
        selects live on the cached extraction objects, so a worker's
        shm-attached cache carries warm operator structure across tasks.
        """
        from repro.meloppr.planner import execute_stage_task
        from repro.utils.timing import TimingBreakdown

        timing = TimingBreakdown()
        if shard_id is None:
            extract = (
                self._host_cache.get_or_extract
                if self._host_cache is not None
                else None
            )
            outcome = execute_stage_task(
                self._host_graph, task, extract=extract, timing=timing, kernel=kernel
            )
        else:
            outcome = execute_stage_task(
                # The shard-local extract hook ignores the graph argument
                # (workers never hold the host graph); None documents that.
                None,
                task,
                extract=self._shard_extract(shard_id),
                timing=timing,
                kernel=kernel,
            )
        return outcome, dict(timing.seconds)

    def _shard_extract(self, shard_id: int):
        """The shard-local extraction hook (mirrors ``ShardRouter._extract_local``)."""
        from repro.serving.sharding import globalize_shard_extraction

        try:
            attached, cache = self._shards[shard_id]
        except KeyError:
            raise WorkerCrashError(
                f"worker does not hold shard {shard_id} "
                f"(holds {sorted(self._shards)})"
            ) from None

        def extract(_graph, center: int, depth: int):
            if cache is not None:
                cached = cache.get(center, depth)
                if cached is not None:
                    return cached[0], cached[1], True
            subgraph, bfs = globalize_shard_extraction(
                attached.host_name, attached.subgraph, center, depth
            )
            if cache is not None:
                cache.put(center, depth, subgraph, bfs)
            return subgraph, bfs, False

        return extract

    def cache_stats(self) -> Optional[CacheStats]:
        """Summed cache counters of this worker (``None`` with caching off)."""
        caches = [cache for _, cache in self._shards.values() if cache is not None]
        if self._host_cache is not None:
            caches.append(self._host_cache)
        if not caches:
            return None
        totals = CacheStats()
        for cache in caches:
            totals = totals + cache.stats
        return totals

    def reset_cache_stats(self) -> None:
        """Zero every worker cache's counters (entries stay warm)."""
        for _, cache in self._shards.values():
            if cache is not None:
                cache.reset_stats()
        if self._host_cache is not None:
            self._host_cache.reset_stats()


def _picklable_exception(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, else a faithful stand-in."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _process_worker_main(
    worker_index: int,
    bindings,
    cache_bytes: Optional[int],
    requests,
    responses,
) -> None:  # pragma: no cover - runs in a child process
    """Worker loop: attach shared graph buffers once, serve stage tasks.

    Protocol (all over ``SimpleQueue`` — no feeder threads, so a worker can
    exit with ``os._exit`` without losing buffered responses).  Stage tasks
    arrive *grouped*: all of one stage's tasks routed to this worker travel
    in a single message, so the per-message IPC cost (two pickles, two
    context switches) is paid once per worker per stage instead of once per
    task — that overhead is what would otherwise eat the multi-core win on
    small sub-graphs:

    * request ``("tasks", request_id, kernel_name,
      [(shard_id_or_None, StageTask), ...], traced)``
      → response ``("ok", request_id, [StageTaskOutcome, ...], timing_seconds,
      span_dicts_or_None)`` or ``("err", request_id, exception)`` (the whole
      group fails).  ``traced`` piggybacks the query's sampling decision on
      the existing message; a traced group records wall-anchored worker-side
      spans (task + extract/diffusion children, see
      :func:`repro.serving.tracing.worker_task_spans`) which the parent
      re-parents into the query's trace — untraced groups ship ``None`` and
      skip every clock read.
    * request ``("stats", request_id)`` →
      response ``("stats", request_id, cache_counters_or_None)``
    * request ``("reset-stats", request_id)`` → zero the worker's cache
      counters (entries stay warm) → response ``("stats", request_id, None)``
    * request ``None`` → clean shutdown.
    """
    try:
        state = _WorkerState(bindings, cache_bytes)
    except BaseException as exc:
        responses.put(("spawn-err", worker_index, _picklable_exception(exc)))
        os._exit(1)
    responses.put(("ready", worker_index, None))
    exit_code = 0
    while True:
        try:
            item = requests.get()
        except (EOFError, OSError):
            exit_code = 1
            break
        if item is None:
            break
        kind = item[0]
        if kind == "tasks":
            _, request_id, kernel_name, entries, traced = item
            try:
                outcomes = []
                timing: Dict[str, float] = {}
                spans: Optional[List[dict]] = [] if traced else None
                for shard_id, task in entries:
                    started = monotonic_wall() if traced else 0.0
                    outcome, task_timing = state.run_task(task, shard_id, kernel_name)
                    if spans is not None:
                        spans.extend(
                            worker_task_spans(
                                task.stage_index,
                                task.center,
                                shard_id,
                                started,
                                monotonic_wall(),
                                task_timing,
                                cache_hit=outcome.cache_hit,
                            )
                        )
                    outcomes.append(_compact_outcome(outcome))
                    for bucket, seconds in task_timing.items():
                        timing[bucket] = timing.get(bucket, 0.0) + seconds
                responses.put(("ok", request_id, outcomes, timing, spans))
            except BaseException as exc:
                responses.put(("err", request_id, _picklable_exception(exc)))
        elif kind == "stats":
            _, request_id = item
            responses.put(("stats", request_id, state.cache_stats()))
        elif kind == "reset-stats":
            _, request_id = item
            state.reset_cache_stats()
            responses.put(("stats", request_id, None))
    # _exit skips interpreter teardown: a forked worker must not run the
    # parent's inherited atexit hooks (coverage, logging, ...) and SimpleQueue
    # writes are synchronous, so nothing is left buffered.
    os._exit(exit_code)


# ----------------------------------------------------------------------
# Parent-side backend.
# ----------------------------------------------------------------------
class ProcessPoolBackend(ExecutionBackend):
    """Serve stage tasks on persistent worker processes over shared memory.

    The backend must be bound before use — :class:`~repro.serving.engine.
    QueryEngine` does this at construction: :meth:`bind_graph` exports the
    host graph's CSR buffers to shared memory (every worker attaches the same
    segments), :meth:`bind_partition` exports one segment set per shard and
    pins each worker to the shards it serves (``shard_id % num_workers``).
    Workers start lazily on first dispatch and survive across batches; after
    :meth:`close` (which joins the workers and **unlinks** the shared
    segments) the next dispatch transparently respawns the pool from the
    stored binding.

    Division of labour per query: the parent runs the planner (folding,
    residual selection — cheap, Python) on :meth:`map`'s thread pool, while
    every :class:`~repro.meloppr.planner.StageTask` (BFS extraction +
    diffusion — the GIL-heavy share) is pickled to a worker and its
    :class:`~repro.meloppr.planner.StageTaskOutcome` pickled back, in
    submission order.  Scores are bit-identical to :class:`SerialBackend`
    because the fold order and every task's arithmetic are unchanged; only
    where the task ran differs.

    Parameters
    ----------
    num_workers:
        Worker processes; defaults to ``os.cpu_count()``.
    mp_context:
        Start method (``"fork"``/``"spawn"``/``"forkserver"``); defaults to
        ``"fork"`` where available (fast spawn, Linux) else ``"spawn"``.
    cache_bytes:
        Byte budget of each worker's extraction cache (workers cache
        extractions themselves — the parent's cache cannot help them).
        ``None`` disables worker-side caching.
    """

    name = "process-pool"
    concurrent = True
    #: Engines route plan execution through :meth:`run_stage_tasks` when set.
    executes_stage_tasks = True

    _JOIN_TIMEOUT_SECONDS = 5.0

    def __init__(
        self,
        num_workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        cache_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
        kernel: Optional[str] = None,
    ) -> None:
        if num_workers is not None and num_workers <= 0:
            raise ValueError(f"num_workers must be > 0, got {num_workers}")
        if cache_bytes is not None and cache_bytes <= 0:
            raise ValueError(f"cache_bytes must be > 0 or None, got {cache_bytes}")
        # Default diffusion kernel for run_stage_tasks; resolved eagerly so
        # bad specs fail at construction, not inside a worker.
        from repro.diffusion.kernels import resolve_kernel_name

        self._kernel = resolve_kernel_name(kernel)
        self._num_workers = num_workers if num_workers is not None else (os.cpu_count() or 1)
        if mp_context is not None and mp_context not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"unknown start method {mp_context!r}; choose from "
                f"{multiprocessing.get_all_start_methods()}"
            )
        self._mp_context_name = mp_context
        self._cache_bytes = cache_bytes

        self._state_lock = threading.RLock()
        self._pending_lock = threading.Lock()
        self._task_ids = itertools.count()
        self._pending: Dict[int, Future] = {}
        self._broken: Optional[WorkerCrashError] = None
        self._stop_event: Optional[threading.Event] = None

        # Binding (what to serve) persists across close(); runtime state
        # (workers, queues, shared segments) is created per start.
        self._bound_graph = None
        self._bound_partition = None
        self._workers: List[multiprocessing.process.BaseProcess] = []
        self._request_queues: List[object] = []
        self._response_queue = None
        self._collector: Optional[threading.Thread] = None
        self._shm_handles: List[object] = []
        self._threads: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Configured worker-process count."""
        return self._num_workers

    @property
    def cache_bytes(self) -> Optional[int]:
        """Per-worker extraction-cache budget (``None`` = caching off)."""
        return self._cache_bytes

    @property
    def mp_context(self) -> Optional[str]:
        """Configured start-method name (``None`` = platform default)."""
        return self._mp_context_name

    @property
    def kernel(self) -> str:
        """Resolved default diffusion-kernel name for stage tasks."""
        return self._kernel

    @property
    def is_running(self) -> bool:
        """Whether worker processes are currently alive."""
        return bool(self._workers)

    def _context(self):
        if self._mp_context_name is not None:
            return multiprocessing.get_context(self._mp_context_name)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind_graph(self, graph) -> None:
        """Serve stage tasks for ``graph`` (whole host graph in every worker).

        Starts the workers eagerly so the spawn cost lands at engine
        construction, not inside the first measured batch.
        """
        with self._state_lock:
            if self._bound_partition is not None:
                raise RuntimeError("backend is already bound to a partition")
            if self._bound_graph is not None:
                if self._bound_graph is graph:
                    return
                raise RuntimeError(
                    f"backend is bound to graph {self._bound_graph.name!r}; "
                    f"create one ProcessPoolBackend per graph (got {graph.name!r})"
                )
            self._bound_graph = graph
            self._ensure_running()

    def bind_partition(self, partition) -> None:
        """Serve stage tasks for a partitioned graph (workers pinned to shards)."""
        with self._state_lock:
            if self._bound_graph is not None:
                raise RuntimeError("backend is already bound to a host graph")
            if self._bound_partition is not None:
                if self._bound_partition is partition:
                    return
                raise RuntimeError(
                    "backend is bound to a different partition; create one "
                    "ProcessPoolBackend per partition"
                )
            self._bound_partition = partition
            self._ensure_running()

    def rebind_graph(self, graph) -> None:
        """Swap the bound host graph after an in-place edge update.

        Tears the pool down and re-arms the stored binding: the next
        dispatch respawns workers attached to the *new* graph's shared
        buffers.  Worker-side caches die with the old processes — after a
        topology change that cold start is the price of correctness, and
        the respawn happens under the engine's writer barrier so no batch
        observes a half-swapped pool.
        """
        with self._state_lock:
            if self._bound_graph is None:
                raise RuntimeError(
                    "backend has no bound graph to rebind; call bind_graph() first"
                )
            self.close()
            self._bound_graph = graph
            self._bound_partition = None

    def rebind_partition(self, partition) -> None:
        """Swap the bound partition after an in-place edge update.

        Same lifecycle as :meth:`rebind_graph`: close the pool, store the
        patched partition, let the next dispatch respawn workers against
        the new shard buffers.
        """
        with self._state_lock:
            if self._bound_partition is None:
                raise RuntimeError(
                    "backend has no bound partition to rebind; call "
                    "bind_partition() first"
                )
            self.close()
            self._bound_partition = partition
            self._bound_graph = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_running(self) -> None:
        with self._state_lock:
            if self._broken is not None:
                raise self._broken
            if self._workers:
                return
            if self._bound_graph is None and self._bound_partition is None:
                raise RuntimeError(
                    "ProcessPoolBackend is unbound; call bind_graph() or "
                    "bind_partition() first (QueryEngine does this for you)"
                )
            self._start()

    def _start(self) -> None:
        """Export shared memory, spawn workers, start the collector."""
        from repro.serving.shm import SharedGraphHandle, SharedShardHandle

        context = self._context()
        handles: List[object] = []
        workers: List[multiprocessing.process.BaseProcess] = []
        request_queues = []
        response_queue = context.SimpleQueue()
        try:
            if self._bound_partition is not None:
                partition = self._bound_partition
                shard_handles = [
                    SharedShardHandle.export(
                        shard, partition.host.name, partition.halo_depth
                    )
                    for shard in partition.shards
                ]
                handles.extend(shard_handles)
                bindings = [
                    tuple(
                        handle.descriptor
                        for handle in shard_handles
                        if handle.descriptor.shard_id % self._num_workers == index
                    )
                    for index in range(self._num_workers)
                ]
            else:
                graph_handle = SharedGraphHandle.export(self._bound_graph)
                handles.append(graph_handle)
                bindings = [graph_handle.descriptor] * self._num_workers

            for index in range(self._num_workers):
                requests = context.SimpleQueue()
                worker = context.Process(
                    target=_process_worker_main,
                    args=(
                        index,
                        bindings[index],
                        self._cache_bytes,
                        requests,
                        response_queue,
                    ),
                    name=f"repro-serving-{index}",
                    daemon=True,
                )
                worker.start()
                workers.append(worker)
                request_queues.append(requests)
        except Exception:
            for worker in workers:
                worker.terminate()
            for handle in handles:
                handle.unlink()
            raise

        self._shm_handles = handles
        self._workers = workers
        self._request_queues = request_queues
        self._response_queue = response_queue
        self._broken = None
        # The stop event is per pool generation: a stale collector from a
        # previous generation can never observe it unset and poison the
        # respawned pool's state.
        stop_event = threading.Event()
        self._stop_event = stop_event
        self._collector = threading.Thread(
            target=self._collect,
            args=(response_queue, list(workers), stop_event),
            name="repro-serving-collector",
            daemon=True,
        )
        self._collector.start()

    def close(self) -> None:
        """Stop the workers and release every shared segment (idempotent).

        The shared-memory unlink runs in a ``finally`` so a wedged or crashed
        worker can delay the join but never leak ``/dev/shm`` — the
        engine relies on this from its own error paths.
        """
        with self._state_lock:
            workers = self._workers
            request_queues = self._request_queues
            collector = self._collector
            handles = self._shm_handles
            stop_event = self._stop_event
            self._workers = []
            self._request_queues = []
            self._collector = None
            self._shm_handles = []
            self._stop_event = None
            if stop_event is not None:
                stop_event.set()
            try:
                for queue in request_queues:
                    try:
                        queue.put(None)
                    except (OSError, ValueError):  # pragma: no cover - worker gone
                        pass
                for worker in workers:
                    worker.join(timeout=self._JOIN_TIMEOUT_SECONDS)
                for worker in workers:
                    if worker.is_alive():  # pragma: no cover - wedged worker
                        worker.terminate()
                        worker.join(timeout=self._JOIN_TIMEOUT_SECONDS)
                if collector is not None:
                    collector.join(timeout=self._JOIN_TIMEOUT_SECONDS)
                self._fail_pending(
                    WorkerCrashError("backend closed with stage tasks in flight")
                )
            finally:
                for queue in request_queues:
                    try:
                        queue.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
                if self._response_queue is not None:
                    try:
                        self._response_queue.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
                    self._response_queue = None
                for handle in handles:
                    handle.unlink()
                if self._threads is not None:
                    self._threads.shutdown(wait=True)
                    self._threads = None
                # A crashed pool is fully reset by close(); the stored
                # binding lets the next dispatch respawn a fresh pool.
                self._broken = None

    # ------------------------------------------------------------------
    # Response collection / crash detection
    # ------------------------------------------------------------------
    def _collect(self, response_queue, workers, stop_event) -> None:
        """Collector thread: resolve futures, watch worker sentinels."""
        reader = response_queue._reader  # Connection; poll()/recv() via get()
        sentinels = [worker.sentinel for worker in workers]
        while True:
            try:
                _connection_wait([reader] + sentinels, timeout=0.2)
                # Drain every available response before looking at deaths so
                # results that raced a crash still resolve.
                while reader.poll():
                    self._resolve(response_queue.get())
            except (OSError, EOFError):  # pragma: no cover - queue torn down
                return
            if stop_event.is_set():
                return
            dead = [
                worker for worker in workers if worker.exitcode not in (None, 0)
            ]
            if dead:
                names = ", ".join(
                    f"{worker.name} (exit {worker.exitcode})" for worker in dead
                )
                error = WorkerCrashError(
                    f"process-pool worker died: {names}; the batch cannot "
                    "complete — close() the engine/backend to respawn"
                )
                with self._pending_lock:
                    self._broken = error
                self._fail_pending(error)
                return

    def _resolve(self, message) -> None:
        kind = message[0]
        if kind in ("ready", "spawn-err"):
            # Spawn failures surface through the sentinel path (the worker
            # exits non-zero); the explicit message just carries the cause.
            if kind == "spawn-err":
                with self._pending_lock:
                    self._broken = WorkerCrashError(
                        f"worker {message[1]} failed to attach shared graph "
                        f"buffers: {message[2]!r}"
                    )
            return
        future = self._pop_pending(message[1])
        if future is None:  # pragma: no cover - late response after a crash
            return
        if kind == "ok":
            future.set_result((message[2], message[3], message[4]))
        elif kind == "stats":
            future.set_result(message[2])
        else:
            future.set_exception(message[2])

    def _pop_pending(self, task_id: int) -> Optional[Future]:
        with self._pending_lock:
            return self._pending.pop(task_id, None)

    def _fail_pending(self, error: WorkerCrashError) -> None:
        with self._pending_lock:
            futures = list(self._pending.values())
            self._pending.clear()
        for future in futures:
            if not future.done():
                future.set_exception(error)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _route(self, task, shard_id: Optional[int]) -> int:
        """Which worker queue serves this task."""
        if shard_id is not None:
            return shard_id % self._num_workers
        # Centre-affine routing: the same extraction centre always lands on
        # the same worker, so its extraction cache actually sees the
        # workload's repeats (round-robin would spray hot seeds across
        # workers and miss everywhere).  Multiplicative hashing spreads cold
        # centres evenly; hot centres are cheap cache hits, so the affinity
        # skew costs less than the lost reuse would.
        return ((task.center * _HASH_MULTIPLIER) >> 16) % self._num_workers

    def _dispatch_group(
        self,
        queue_index: int,
        kernel: str,
        entries: List[Tuple[Optional[int], object]],
        traced: bool = False,
    ) -> Future:
        """Send one worker its share of a stage as a single message."""
        with self._pending_lock:
            if self._broken is not None:
                raise self._broken
            request_id = next(self._task_ids)
            future: Future = Future()
            self._pending[request_id] = future
        self._request_queues[queue_index].put(
            ("tasks", request_id, kernel, entries, traced)
        )
        return future

    def run_stage_tasks(
        self,
        tasks: Sequence,
        fallback: Optional[Callable] = None,
        timing=None,
        kernel: Optional[str] = None,
        trace=None,
    ) -> List:
        """Execute one stage's tasks, in order, on the worker pool.

        Tasks are grouped per worker — one IPC message per worker per stage,
        not per task — which keeps the pickle/context-switch overhead
        amortised across a whole fan-out stage.  With a partition binding,
        tasks whose depth exceeds the halo cannot be answered shard-locally
        and are executed in the calling thread via ``fallback`` (the engine
        passes its router's extraction hook, which serves them from the host
        graph through the fallback cache) — the remote groups keep running
        in the workers meanwhile.  ``timing`` (a
        :class:`~repro.utils.timing.TimingBreakdown`) receives the workers'
        ``bfs``/``diffusion`` buckets so plan timing stays populated under
        remote execution.  ``trace`` (an optional
        :class:`~repro.serving.tracing.TraceContext`) asks the workers to
        record per-task spans, shipped back on the response message and
        re-parented here under the caller's open stage span.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self._ensure_running()
        if kernel is None:
            kernel_name = self._kernel
        else:
            from repro.diffusion.kernels import resolve_kernel_name

            kernel_name = resolve_kernel_name(kernel)
        partition = self._bound_partition
        slots: List[object] = [None] * len(tasks)
        groups: Dict[int, Tuple[List[int], List[Tuple[Optional[int], object]]]] = {}
        local: List[Tuple[int, object]] = []
        for position, task in enumerate(tasks):
            shard_id: Optional[int] = None
            if partition is not None:
                if not partition.covers_depth(task.length):
                    local.append((position, task))
                    continue
                shard_id = int(partition.assignments[task.center])
            positions, entries = groups.setdefault(
                self._route(task, shard_id), ([], [])
            )
            positions.append(position)
            entries.append((shard_id, task))
        traced = trace is not None
        remote = [
            (
                positions,
                self._dispatch_group(queue_index, kernel_name, entries, traced),
            )
            for queue_index, (positions, entries) in groups.items()
        ]
        if local:
            from repro.meloppr.planner import execute_stage_task

            for position, task in local:
                slots[position] = execute_stage_task(
                    partition.host,
                    task,
                    extract=fallback,
                    timing=timing,
                    kernel=kernel_name,
                )
        for positions, future in remote:
            outcomes, group_timing, spans = future.result()
            if timing is not None:
                for bucket, seconds in group_timing.items():
                    timing.add(bucket, seconds)
            if trace is not None and spans:
                trace.adopt(spans)
            for position, outcome in zip(positions, outcomes):
                slots[position] = outcome
        return slots

    # ------------------------------------------------------------------
    # ExecutionBackend interface
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run the per-query jobs on a parent thread pool.

        The jobs themselves are light in the parent — planning and score
        folding — and block on worker IPC for the heavy stage tasks, so a
        small thread pool keeps every worker process fed while preserving
        submission order.  (For solvers without a planner the jobs run
        entirely in these threads, i.e. the backend degrades to a thread
        pool — document, don't surprise.)
        """
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_threads().map(fn, items))

    def _ensure_threads(self) -> ThreadPoolExecutor:
        with self._state_lock:
            if self._threads is None:
                self._threads = ThreadPoolExecutor(
                    max_workers=2 * self._num_workers,
                    thread_name_prefix="repro-serving-feeder",
                )
            return self._threads

    # ------------------------------------------------------------------
    _STATS_TIMEOUT_SECONDS = 5.0

    def cache_stats(self) -> Optional[CacheStats]:
        """Aggregate worker-side extraction-cache counters.

        A control round-trip to every worker; returns ``None`` while the
        pool is not running or when worker caching is disabled.  The control
        message queues behind in-flight stage-task groups, so the wait is
        bounded (:data:`_STATS_TIMEOUT_SECONDS`) and a busy or crashed pool
        degrades to ``None`` rather than stalling or raising into a stats
        endpoint.
        """
        with self._state_lock:
            if not self._workers or self._cache_bytes is None:
                return None
            futures = []
            for queue in self._request_queues:
                with self._pending_lock:
                    if self._broken is not None:
                        return None
                    request_id = next(self._task_ids)
                    future: Future = Future()
                    self._pending[request_id] = future
                queue.put(("stats", request_id))
                futures.append(future)
        totals = CacheStats()
        for future in futures:
            try:
                counters = future.result(timeout=self._STATS_TIMEOUT_SECONDS)
            except (WorkerCrashError, FutureTimeoutError):
                return None
            if counters is None:
                continue
            totals = totals + counters
        return totals

    def reset_cache_stats(self) -> None:
        """Zero every worker's extraction-cache counters (entries stay warm).

        The worker caches are the stage-task analogue of the engine-level
        :class:`~repro.serving.cache.SubgraphCache`, so per-interval server
        metrics must be able to reset them with the rest of the engine's
        counters (``QueryEngine.reset_stats(reset_cache_stats=True)`` calls
        this).  Same degradation contract as :meth:`cache_stats`: a stopped,
        cache-less, busy or crashed pool is a bounded-wait no-op, never a
        stall or an exception into a metrics endpoint.
        """
        with self._state_lock:
            if not self._workers or self._cache_bytes is None:
                return
            futures = []
            for queue in self._request_queues:
                with self._pending_lock:
                    if self._broken is not None:
                        return
                    request_id = next(self._task_ids)
                    future: Future = Future()
                    self._pending[request_id] = future
                queue.put(("reset-stats", request_id))
                futures.append(future)
        for future in futures:
            try:
                future.result(timeout=self._STATS_TIMEOUT_SECONDS)
            except (WorkerCrashError, FutureTimeoutError):
                return

    def __repr__(self) -> str:
        bound = "unbound"
        if self._bound_partition is not None:
            bound = f"partition[{self._bound_partition.num_shards}]"
        elif self._bound_graph is not None:
            bound = repr(self._bound_graph.name)
        return (
            f"ProcessPoolBackend(num_workers={self._num_workers}, "
            f"bound={bound}, running={self.is_running})"
        )


def make_backend(spec: Union[str, ExecutionBackend, None]) -> ExecutionBackend:
    """Build an execution backend from a compact spec string.

    Accepted specs (case-insensitive; the ``:N`` suffix is optional):

    ======================  ====================================================
    ``"serial"``            :class:`SerialBackend`
    ``"thread"``/``:N``     :class:`ThreadPoolBackend` (``N`` workers)
    ``"async"``/``:N``      :class:`~repro.serving.frontend.AsyncBackend`
                            (``N``-thread event-loop offload pool)
    ``"process"``/``:N``    :class:`ProcessPoolBackend` (``N`` worker
                            processes over shared-memory graph buffers)
    ======================  ====================================================

    ``None`` means :class:`SerialBackend`, and an :class:`ExecutionBackend`
    instance passes through unchanged, so CLI flags and library call sites can
    share one code path.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    name, separator, argument = spec.strip().lower().partition(":")
    workers: Optional[int] = None
    if separator:
        try:
            workers = int(argument)
        except ValueError:
            raise ValueError(
                f"backend spec {spec!r} has a non-integer worker count "
                f"{argument!r}"
            ) from None
    if name == "serial":
        if workers is not None:
            raise ValueError(f"the serial backend takes no worker count ({spec!r})")
        return SerialBackend()
    if name in ("thread", "threads", "thread-pool"):
        return ThreadPoolBackend(max_workers=workers)
    if name == "async":
        # Imported lazily: the frontend package imports the engine, which
        # imports this module.
        from repro.serving.frontend.async_backend import AsyncBackend

        return AsyncBackend(max_concurrency=workers)
    if name in ("process", "processes", "process-pool"):
        return ProcessPoolBackend(num_workers=workers)
    raise ValueError(
        f"unknown backend spec {spec!r}; expected 'serial', 'thread[:N]', "
        "'async[:N]' or 'process[:N]'"
    )
