"""Pluggable execution backends for the query-serving engine.

A backend answers one question: *how do the independent per-query jobs of a
batch run?*  The engine builds a closure per query (plan → execute → result)
and hands the whole batch to :meth:`ExecutionBackend.map`; the backend owns
ordering and concurrency.  Two backends ship today:

* :class:`SerialBackend` — the reference: runs jobs one by one on the calling
  thread.  Zero overhead, bit-identical to the historical sequential loop.
* :class:`ThreadPoolBackend` — a persistent ``ThreadPoolExecutor``.  The
  diffusion kernel spends its time in NumPy ufuncs that release the GIL, so
  threads overlap real work; results are still returned in submission order
  and are deterministic because every query's computation is independent.

A third backend, :class:`~repro.serving.frontend.AsyncBackend`, runs jobs on
an asyncio event loop (see :mod:`repro.serving.frontend`); benchmarks, the
server CLI and user code construct any of them from a compact spec string via
:func:`make_backend` (``"serial"``, ``"thread:8"``, ``"async:4"``).  Later
PRs can add process-pool and modelled-FPGA backends behind the same
two-method interface (see ROADMAP open items).
"""

from __future__ import annotations

import abc
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar, Union

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "make_backend",
]

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend(abc.ABC):
    """Strategy running a batch of independent query jobs.

    Implementations must preserve input order in the returned list and must
    not reorder effects visible through a shared cache in a way that changes
    results (extractions are deterministic, so any interleaving is safe).
    """

    #: Short name used in stats, reports and benchmarks.
    name: str = "backend"

    #: Whether jobs may run simultaneously.  The engine uses this to disable
    #: per-query ``tracemalloc`` measurement, which is process-global and
    #: cannot attribute peaks to overlapping queries.
    concurrent: bool = False

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``items``, returning results in input order."""

    def close(self) -> None:
        """Release any held resources (idempotent; default no-op)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every job sequentially on the calling thread."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadPoolBackend(ExecutionBackend):
    """Run jobs on a persistent thread pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``ThreadPoolExecutor``'s heuristic.  The pool
        is created lazily on first use and survives across batches so
        steady-state serving does not pay thread start-up per batch.
    """

    name = "thread-pool"
    concurrent = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be > 0, got {max_workers}")
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def max_workers(self) -> Optional[int]:
        """Configured pool size (``None`` = executor default)."""
        return self._max_workers

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-serving",
            )
        return self._executor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        # Executor.map yields results in submission order regardless of
        # completion order, which is exactly the ordering contract.
        return list(self._ensure_executor().map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:
        workers = "default" if self._max_workers is None else self._max_workers
        return f"ThreadPoolBackend(max_workers={workers})"


def make_backend(spec: Union[str, ExecutionBackend, None]) -> ExecutionBackend:
    """Build an execution backend from a compact spec string.

    Accepted specs (case-insensitive; the ``:N`` suffix is optional):

    ======================  ====================================================
    ``"serial"``            :class:`SerialBackend`
    ``"thread"``/``:N``     :class:`ThreadPoolBackend` (``N`` workers)
    ``"async"``/``:N``      :class:`~repro.serving.frontend.AsyncBackend`
                            (``N``-thread event-loop offload pool)
    ======================  ====================================================

    ``None`` means :class:`SerialBackend`, and an :class:`ExecutionBackend`
    instance passes through unchanged, so CLI flags and library call sites can
    share one code path.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    name, separator, argument = spec.strip().lower().partition(":")
    workers: Optional[int] = None
    if separator:
        try:
            workers = int(argument)
        except ValueError:
            raise ValueError(
                f"backend spec {spec!r} has a non-integer worker count "
                f"{argument!r}"
            ) from None
    if name == "serial":
        if workers is not None:
            raise ValueError(f"the serial backend takes no worker count ({spec!r})")
        return SerialBackend()
    if name in ("thread", "threads", "thread-pool"):
        return ThreadPoolBackend(max_workers=workers)
    if name == "async":
        # Imported lazily: the frontend package imports the engine, which
        # imports this module.
        from repro.serving.frontend.async_backend import AsyncBackend

        return AsyncBackend(max_concurrency=workers)
    raise ValueError(
        f"unknown backend spec {spec!r}; expected 'serial', 'thread[:N]' "
        "or 'async[:N]'"
    )
