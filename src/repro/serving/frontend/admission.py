"""Admission control and latency telemetry for the async frontend.

An open-loop traffic source does not slow down when the engine falls behind,
so an online server must choose between an unbounded queue (latency grows
without limit until memory does) and **shedding**: refusing work it cannot
answer in time.  :class:`AdmissionController` implements the shedding side —
a hard bound on in-flight queries, explicit shed/deadline accounting, and an
end-to-end latency histogram — and is consulted by the micro-batching
scheduler on every submission.

The controller is deliberately engine-agnostic (it counts logical queries,
not batches) and thread-safe, because admissions happen on the event loop
while completions are recorded from executor threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.serving.telemetry import LatencyHistogram, LatencySnapshot

__all__ = [
    "QueryRejectedError",
    "QueryShedError",
    "DeadlineExceededError",
    "AdmissionStats",
    "AdmissionController",
]


class QueryRejectedError(RuntimeError):
    """Base class of frontend rejections (shed, deadline)."""

    #: Wire-protocol error code of the rejection.
    code = "rejected"


class QueryShedError(QueryRejectedError):
    """The admission queue was full; the query was refused immediately."""

    code = "shed"

    def __init__(
        self,
        pending: Optional[int] = None,
        capacity: Optional[int] = None,
        message: Optional[str] = None,
    ) -> None:
        if message is None:
            message = (
                f"admission queue full ({pending}/{capacity} in flight); "
                "query shed"
            )
        super().__init__(message)
        self.pending = pending
        self.capacity = capacity


class DeadlineExceededError(QueryRejectedError):
    """The query's deadline expired before a result could be delivered."""

    code = "deadline"


@dataclass(frozen=True)
class AdmissionStats:
    """Counters of an :class:`AdmissionController`.

    Attributes
    ----------
    capacity:
        Maximum admitted-but-unanswered queries.
    pending:
        Currently in-flight queries.
    admitted, shed, completed, expired, failed, cancelled:
        Lifetime outcomes: ``admitted`` splits into ``completed`` (result
        delivered), ``expired`` (deadline), ``failed`` (engine error) and
        ``cancelled`` (caller gave up); ``shed`` queries were never admitted.
    latency:
        End-to-end latency percentiles of *completed* queries.
    """

    capacity: int
    pending: int
    admitted: int
    shed: int
    completed: int
    expired: int
    failed: int
    cancelled: int
    latency: LatencySnapshot

    @property
    def offered(self) -> int:
        """Total queries presented to the controller."""
        return self.admitted + self.shed

    @property
    def shed_rate(self) -> float:
        """Fraction of offered queries shed (0.0 before any traffic)."""
        offered = self.offered
        return self.shed / offered if offered else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        return {
            "capacity": self.capacity,
            "pending": self.pending,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "expired": self.expired,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "offered": self.offered,
            "shed_rate": self.shed_rate,
            "latency": self.latency.as_dict(),
        }


class AdmissionController:
    """Bounded in-flight query count with shed accounting and latency telemetry.

    Parameters
    ----------
    max_pending:
        Hard bound on admitted-but-unanswered queries.  Submissions beyond it
        raise :class:`QueryShedError` instead of growing any queue — the
        explicit backpressure signal callers (and the TCP protocol) surface.
    """

    def __init__(self, max_pending: int = 256) -> None:
        if max_pending <= 0:
            raise ValueError(f"max_pending must be > 0, got {max_pending}")
        self._max_pending = int(max_pending)
        self._lock = threading.Lock()
        self._pending = 0
        self._admitted = 0
        self._shed = 0
        self._completed = 0
        self._expired = 0
        self._failed = 0
        self._cancelled = 0
        self._latency = LatencyHistogram()

    @property
    def max_pending(self) -> int:
        """The configured in-flight bound."""
        return self._max_pending

    @property
    def pending(self) -> int:
        """Currently admitted-but-unanswered queries."""
        with self._lock:
            return self._pending

    def set_max_pending(self, max_pending: int) -> None:
        """Change the in-flight bound in place (the hot-reload path).

        Already-admitted queries are never revoked: shrinking below the
        current ``pending`` just sheds new arrivals until completions bring
        the count back under the new bound.
        """
        if max_pending <= 0:
            raise ValueError(f"max_pending must be > 0, got {max_pending}")
        with self._lock:
            self._max_pending = int(max_pending)

    # ------------------------------------------------------------------
    def try_admit(self) -> bool:
        """Admit one query if capacity allows; count a shed otherwise."""
        with self._lock:
            if self._pending >= self._max_pending:
                self._shed += 1
                return False
            self._pending += 1
            self._admitted += 1
            return True

    def admit(self) -> None:
        """Admit one query or raise :class:`QueryShedError`."""
        if not self.try_admit():
            raise QueryShedError(self._max_pending, self._max_pending)

    def complete(self, latency_seconds: float) -> None:
        """Record a delivered result and its end-to-end latency."""
        with self._lock:
            self._pending -= 1
            self._completed += 1
        self._latency.record(latency_seconds)

    def expire(self) -> None:
        """Record a deadline expiry of an admitted query."""
        with self._lock:
            self._pending -= 1
            self._expired += 1

    def fail(self) -> None:
        """Record an engine failure of an admitted query."""
        with self._lock:
            self._pending -= 1
            self._failed += 1

    def cancel(self) -> None:
        """Record a caller-side cancellation of an admitted query."""
        with self._lock:
            self._pending -= 1
            self._cancelled += 1

    # ------------------------------------------------------------------
    def stats(self) -> AdmissionStats:
        """A consistent snapshot of the counters and latency percentiles."""
        with self._lock:
            return AdmissionStats(
                capacity=self._max_pending,
                pending=self._pending,
                admitted=self._admitted,
                shed=self._shed,
                completed=self._completed,
                expired=self._expired,
                failed=self._failed,
                cancelled=self._cancelled,
                latency=self._latency.snapshot(),
            )

    def reset_stats(self) -> None:
        """Zero the lifetime counters and the histogram (``pending`` is live state)."""
        with self._lock:
            self._admitted = self._pending  # in-flight queries stay accounted
            self._shed = 0
            self._completed = 0
            self._expired = 0
            self._failed = 0
            self._cancelled = 0
            self._latency.reset()

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"AdmissionController(max_pending={self._max_pending}, "
            f"pending={stats.pending}, shed={stats.shed})"
        )
