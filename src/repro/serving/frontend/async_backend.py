"""An asyncio execution backend for the query engine.

:class:`AsyncBackend` implements the two-method
:class:`~repro.serving.backends.ExecutionBackend` interface on top of an
asyncio event loop.  The loop runs on a dedicated daemon thread owned by the
backend; each job is offloaded to a bounded thread pool via
``loop.run_in_executor`` and awaited as a coroutine, so an async front-end
(the micro-batching scheduler, the TCP server) can await engine work without
blocking its own loop, while plain synchronous callers keep using
``backend.map`` unchanged.

Results come back in submission order (``asyncio.gather`` preserves input
order) and are bit-identical to :class:`~repro.serving.backends.SerialBackend`
— per-query computations are independent and deterministic, and this backend
changes only *where* they run, never their operation order.  Exceptions
propagate: the first failing job's exception is raised from :meth:`map`,
matching the thread-pool backend's contract.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Set, TypeVar

from repro.serving.backends import ExecutionBackend

__all__ = ["AsyncBackend"]

T = TypeVar("T")
R = TypeVar("R")


class AsyncBackend(ExecutionBackend):
    """Run jobs as awaitables on a private asyncio event loop.

    Parameters
    ----------
    max_concurrency:
        Size of the thread pool the loop offloads CPU work to (jobs beyond it
        queue inside the pool).  ``None`` uses ``ThreadPoolExecutor``'s
        default sizing.

    Notes
    -----
    The loop thread and the pool are created lazily on first use and survive
    across batches; :meth:`close` tears both down (idempotent — a later call
    lazily recreates them, mirroring :class:`ThreadPoolBackend`).  Calling
    :meth:`map` *from* the backend's own loop would deadlock and raises
    ``RuntimeError`` instead; coroutine callers on that loop (or any other)
    should ``await`` :meth:`run`.
    """

    name = "async"
    concurrent = True

    def __init__(self, max_concurrency: Optional[int] = None) -> None:
        if max_concurrency is not None and max_concurrency <= 0:
            raise ValueError(
                f"max_concurrency must be > 0, got {max_concurrency}"
            )
        self._max_concurrency = max_concurrency
        self._lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._inflight: Set["concurrent.futures.Future"] = set()

    @property
    def max_concurrency(self) -> Optional[int]:
        """Configured offload-pool size (``None`` = executor default)."""
        return self._max_concurrency

    # ------------------------------------------------------------------
    def _ensure_pool_locked(self) -> ThreadPoolExecutor:
        """Create the bounded offload pool lazily (caller holds the lock)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_concurrency,
                thread_name_prefix="repro-async",
            )
        return self._pool

    def _ensure_loop_locked(self) -> asyncio.AbstractEventLoop:
        """Start the loop thread and pool lazily (caller holds the lock)."""
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
            self._ensure_pool_locked()
            started = threading.Event()

            def _run(loop: asyncio.AbstractEventLoop) -> None:
                asyncio.set_event_loop(loop)
                loop.call_soon(started.set)
                loop.run_forever()

            self._thread = threading.Thread(
                target=_run,
                args=(self._loop,),
                name="repro-async-loop",
                daemon=True,
            )
            self._thread.start()
            started.wait()
        return self._loop

    # ------------------------------------------------------------------
    async def run(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Coroutine form of :meth:`map`: await the batch from any loop.

        Must be awaited on the backend's own loop (where :meth:`map`
        schedules it) or driven by a caller that offloads to it; the common
        entry point is still :meth:`map`.
        """
        loop = asyncio.get_running_loop()
        # Never fall back to the loop's default executor: that would bypass
        # the max_concurrency bound (e.g. run() awaited before any map(), or
        # racing a close() that nulled the pool).
        with self._lock:
            pool = self._ensure_pool_locked()
        futures = [loop.run_in_executor(pool, fn, item) for item in items]
        return list(await asyncio.gather(*futures))

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        # Submission happens under the lock so close() sees every in-flight
        # batch and can drain it before tearing the loop down.
        with self._lock:
            loop = self._ensure_loop_locked()
            if running is loop:
                raise RuntimeError(
                    "AsyncBackend.map called from its own event loop would "
                    "deadlock; await AsyncBackend.run(fn, items) instead"
                )
            future = asyncio.run_coroutine_threadsafe(self.run(fn, items), loop)
            self._inflight.add(future)
        try:
            return future.result()
        finally:
            with self._lock:
                self._inflight.discard(future)

    def close(self) -> None:
        with self._lock:
            loop, thread, pool = self._loop, self._thread, self._pool
            self._loop = None
            self._thread = None
            self._pool = None
            inflight = list(self._inflight)
        # Drain like ThreadPoolBackend.shutdown(wait=True): batches already
        # submitted finish and their mapping threads unblock before the loop
        # stops.  (A map() concurrent with close() that lost the lock race
        # lazily recreates a fresh loop, mirroring the thread-pool backend.)
        if inflight:
            concurrent.futures.wait(inflight)
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join()
        if loop is not None:
            loop.close()
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        workers = (
            "default" if self._max_concurrency is None else self._max_concurrency
        )
        return f"AsyncBackend(max_concurrency={workers})"
