"""Front-door replica router: consistent-hash routing with failover.

``ReplicaRouter`` is a :class:`BaseHttpServer` that owns no batcher of
its own — every ``/query`` is forwarded over the unified
:class:`~repro.serving.frontend.client.HttpQueryClient` to one of N
replica servers.  The seed is hashed to its shard with
:func:`~repro.graph.partition.hash_shard_of` (the scalar twin of the
``hash`` partitioner, so routing agrees with shard ownership inside
each replica) and the shard is mapped to a replica by a deterministic
:class:`~repro.serving.replica.ConsistentHashRing`.

Correctness under failover is free by construction: every replica
loads the full graph behind a ``ShardRouter`` (host-graph fallback
beyond the halo), so any replica answers any seed bit-identically.
The ring only concentrates each shard's working set on one replica's
caches; when a replica dies, its keys walk the ring's preference list
and land on the next replica — warm or not, the answer is the same.

Failure taxonomy, mirrored from the client:

* transport failures (connection refused, mid-response disconnect,
  crash) raise ``ClientConnectionError`` → retried with exponential
  backoff on the next replica in the preference list, bounded by
  ``retries``;
* protocol rejections (``shed``/``deadline``/``bad_request``) are
  *answers* — forwarded to the caller verbatim, never retried;
* a ``ProtocolMismatchError`` (mixed-version fleet) quarantines the
  replica as ``incompatible`` — it stops receiving traffic and the
  aggregated ``/metrics`` makes the skew visible.

Replica states: ``healthy`` and ``suspect`` are routable; ``draining``
(operator removed it via ``POST /admin/drain?replica=i``), ``dead``
(health checks cannot connect) and ``incompatible`` are not.  The
health loop resurrects a ``dead`` replica when ``/healthz`` answers
200 again (e.g. after the supervisor restarts it); a ``draining``
replica is only re-admitted through that same death-and-rebirth path,
so an operator's drain cannot be raced away by a health probe.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs

from repro.graph.partition import hash_shard_of
from repro.serving.frontend.client import (
    ClientConnectionError,
    HttpQueryClient,
    ServerError,
)
from repro.serving.frontend.http import (
    DEFAULT_MAX_BODY_BYTES,
    _ERROR_STATUS,
    BaseHttpServer,
)
from repro.serving.frontend.metrics import _Writer, parse_prometheus_text
from repro.serving.frontend.protocol import (
    PROTOCOL_VERSION,
    ProtocolMismatchError,
    check_protocol_version,
)
from repro.serving.replica import DEFAULT_VNODES, ConsistentHashRing
from repro.serving.tracing import Tracer, format_traceparent

__all__ = [
    "HEALTHY",
    "SUSPECT",
    "DRAINING",
    "DEAD",
    "INCOMPATIBLE",
    "ReplicaHandle",
    "ReplicaRouter",
    "main",
]

HEALTHY = "healthy"
SUSPECT = "suspect"
DRAINING = "draining"
DEAD = "dead"
INCOMPATIBLE = "incompatible"

#: States a replica may receive traffic in.  ``suspect`` stays routable:
#: one failed probe should degrade to a retry, not an outage.
ROUTABLE_STATES = frozenset({HEALTHY, SUSPECT})

_JSON_TYPE = "application/json"
_PROM_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _NoReplicaAvailable(Exception):
    """Every routable replica failed (or none were routable)."""


class ReplicaHandle:
    """One replica as the router sees it: endpoint, client, and state."""

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        # Until the first health check or forward succeeds the replica is
        # merely *suspected* healthy — routable, but not yet proven.
        self.state = SUSPECT
        self.client: Optional[HttpQueryClient] = None
        self.consecutive_failures = 0
        self.last_error: Optional[str] = None
        self.proto: Optional[int] = None

    @property
    def routable(self) -> bool:
        return self.state in ROUTABLE_STATES

    async def ensure_client(self) -> HttpQueryClient:
        """The lazily-opened client (raises ``ClientConnectionError``)."""
        if self.client is None:
            # retries=0: the *router* owns retry/failover policy; the
            # client must surface every transport failure immediately.
            self.client = await HttpQueryClient.connect(
                self.host, self.port, retries=0
            )
        return self.client

    async def close(self) -> None:
        if self.client is not None:
            await self.client.close()
            self.client = None

    def describe(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "port": self.port,
            "state": self.state,
            "proto": self.proto,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


class ReplicaRouter(BaseHttpServer):
    """Consistent-hash front door over a fleet of HTTP replicas.

    ``replicas`` is a sequence of ``(host, port)`` endpoints, named
    ``replica-0..N-1`` in order — the same names ``ReplicaSet`` puts on
    its ring, so a router built from a set's specs agrees with the
    set's shard assignment exactly (the ring hash is deterministic).
    """

    def __init__(
        self,
        replicas: Sequence[Tuple[str, int]],
        *,
        num_shards: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        retries: int = 3,
        retry_backoff_ms: float = 25.0,
        health_interval_s: float = 0.5,
        dead_after: int = 2,
        vnodes: int = DEFAULT_VNODES,
        tracer: Optional[Tracer] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica endpoint")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if num_shards < 0:
            raise ValueError(f"num_shards must be >= 0, got {num_shards}")
        super().__init__(host, port, max_body_bytes)
        self._num_shards = num_shards
        self._retries = retries
        self._retry_backoff_ms = retry_backoff_ms
        self._health_interval_s = health_interval_s
        self._dead_after = dead_after
        self._tracer = tracer
        self._handles: Dict[str, ReplicaHandle] = {}
        for index, (replica_host, replica_port) in enumerate(replicas):
            name = f"replica-{index}"
            self._handles[name] = ReplicaHandle(name, replica_host, replica_port)
        self.ring = ConsistentHashRing(list(self._handles), vnodes=vnodes)
        self._health_task: Optional["asyncio.Task[None]"] = None
        # Every counter below is part of the /metrics contract: the sum
        # of answers + failed forwards must equal forwards, and forwards
        # minus queries equals retries — no attempt goes unaccounted.
        self._queries = 0
        self._unavailable = 0
        self._forwards = {name: 0 for name in self._handles}
        self._retries_by_replica = {name: 0 for name in self._handles}
        self._answers = {name: 0 for name in self._handles}
        self._forward_errors = {name: 0 for name in self._handles}
        self._failovers = {name: 0 for name in self._handles}
        self._health_checks: Dict[Tuple[str, str], int] = {}

    @classmethod
    def for_replica_set(cls, replica_set, **kwargs) -> "ReplicaRouter":
        """A router over a :class:`~repro.serving.replica.ReplicaSet`.

        Inherits the set's shard count so seed hashing matches what the
        replicas' own ``ShardRouter`` uses.
        """
        kwargs.setdefault("num_shards", replica_set.replicas[0].config.num_shards)
        return cls(
            [spec.address for spec in replica_set.replicas], **kwargs
        )

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        address = await super().start()
        if self._health_interval_s > 0:
            self._health_task = asyncio.ensure_future(self._health_loop())
        return address

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        await super().stop()
        for handle in self._handles.values():
            await handle.close()

    async def __aenter__(self) -> "ReplicaRouter":
        await self.start()
        return self

    # -- health --------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self._health_interval_s)
            await self.check_health()

    async def check_health(self) -> Dict[str, str]:
        """Probe every replica's ``/healthz`` once; returns name -> state.

        Exposed publicly so tests (and operators via a future endpoint)
        can force a probe instead of waiting out the interval.
        """
        await asyncio.gather(
            *(self._check_one(handle) for handle in self._handles.values())
        )
        return {name: handle.state for name, handle in self._handles.items()}

    async def _check_one(self, handle: ReplicaHandle) -> None:
        source = f"http://{handle.host}:{handle.port}"
        try:
            client = await handle.ensure_client()
            status, payload = await client.healthz()
            # The router *requires* the version field: a replica too old
            # to stamp it must not silently join the fleet.
            handle.proto = check_protocol_version(
                payload.get("proto"), source, required=True
            )
        except ProtocolMismatchError as exc:
            handle.state = INCOMPATIBLE
            handle.last_error = str(exc)
            self._count_health(handle.name, "incompatible")
            return
        except ClientConnectionError as exc:
            handle.consecutive_failures += 1
            handle.last_error = str(exc)
            if handle.state != DRAINING:
                handle.state = (
                    DEAD
                    if handle.consecutive_failures >= self._dead_after
                    else SUSPECT
                )
            self._count_health(handle.name, "unreachable")
            return
        handle.consecutive_failures = 0
        if status == 200:
            if handle.state == DRAINING:
                # Sticky: an operator drain out-races the replica actually
                # flipping to draining; re-admission goes through restart
                # (dead -> healthy), never through a lucky probe.
                self._count_health(handle.name, "draining")
            else:
                handle.state = HEALTHY
                handle.last_error = None
                self._count_health(handle.name, "ok")
        elif payload.get("status") == "draining":
            handle.state = DRAINING
            self._count_health(handle.name, "draining")
        else:
            if handle.state != DRAINING:
                handle.state = SUSPECT
            handle.last_error = f"healthz answered {status}"
            self._count_health(handle.name, "error")

    def _count_health(self, name: str, outcome: str) -> None:
        key = (name, outcome)
        self._health_checks[key] = self._health_checks.get(key, 0) + 1

    # -- routing -------------------------------------------------------

    def shard_of(self, seed: int) -> object:
        """The ring key for ``seed``: its shard id (or the seed itself
        when the fleet runs unsharded)."""
        if self._num_shards:
            return hash_shard_of(seed, self._num_shards)
        return int(seed)

    def owner_of(self, seed: int) -> str:
        """The replica that owns ``seed`` under the current ring."""
        return self.ring.owner(self.shard_of(seed))

    def replica_states(self) -> Dict[str, str]:
        return {name: handle.state for name, handle in self._handles.items()}

    async def _forward_query(
        self, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            seed = payload.get("seed")
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ValueError(f"seed must be a JSON integer, got {seed!r}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"ok": False, "error": "bad_request", "message": str(exc)}

        self._queries += 1
        incoming = headers.get("traceparent")
        ctx = (
            self._tracer.start_trace("router.query", traceparent=incoming, seed=seed)
            if self._tracer is not None
            else None
        )
        traceparent = incoming
        if ctx is not None:
            traceparent = format_traceparent(ctx.trace_id, ctx.current_span_id())
        try:
            response, replica = await self._try_replicas(
                seed, payload, traceparent, ctx
            )
        except _NoReplicaAvailable as exc:
            self._unavailable += 1
            if ctx is not None:
                ctx.finish(status="unavailable")
            return (
                503,
                {"ok": False, "error": "unavailable", "message": str(exc)},
            )
        if ctx is not None:
            ctx.finish(
                status="ok" if response.get("ok") else str(response.get("error")),
                replica=replica,
            )
        status = (
            200
            if response.get("ok")
            else _ERROR_STATUS.get(str(response.get("error")), 500)
        )
        return status, response

    async def _try_replicas(
        self,
        seed: int,
        payload: dict,
        traceparent: Optional[str],
        ctx,
    ) -> Tuple[dict, str]:
        key = self.shard_of(seed)
        owner = self.ring.owner(key)
        preference = [
            name for name in self.ring.preference(key)
            if self._handles[name].routable
        ]
        if not preference:
            raise _NoReplicaAvailable(
                f"no routable replica for seed {seed} "
                f"(states: {self.replica_states()})"
            )
        last_error: Optional[Exception] = None
        for attempt in range(self._retries + 1):
            # Walk the preference list; wrap around so a transient full
            # outage still gets the whole retry budget (a replica may be
            # back by the second pass).
            name = preference[attempt % len(preference)]
            handle = self._handles[name]
            if attempt > 0:
                self._retries_by_replica[name] += 1
                await asyncio.sleep(
                    self._retry_backoff_ms * (2 ** (attempt - 1)) / 1e3
                )
            self._forwards[name] += 1
            span = (
                ctx.begin_span("router.forward", replica=name, attempt=attempt)
                if ctx is not None
                else None
            )
            try:
                client = await handle.ensure_client()
                response = await client.request_query(
                    payload, traceparent=traceparent
                )
            except ClientConnectionError as exc:
                self._forward_errors[name] += 1
                handle.consecutive_failures += 1
                handle.last_error = str(exc)
                if handle.state != DRAINING:
                    handle.state = (
                        DEAD
                        if handle.consecutive_failures >= self._dead_after
                        else SUSPECT
                    )
                last_error = exc
                if span is not None:
                    ctx.end_span(span, outcome="connection_error")
                continue
            except ProtocolMismatchError as exc:
                self._forward_errors[name] += 1
                handle.state = INCOMPATIBLE
                handle.last_error = str(exc)
                last_error = exc
                if span is not None:
                    ctx.end_span(span, outcome="protocol_mismatch")
                continue
            if span is not None:
                ctx.end_span(span, outcome="answered")
            self._answers[name] += 1
            handle.consecutive_failures = 0
            if handle.state in (SUSPECT, DEAD):
                handle.state = HEALTHY
            if name != owner:
                self._failovers[owner] += 1
            return response, name
        raise _NoReplicaAvailable(
            f"all forwards failed for seed {seed} after "
            f"{self._retries + 1} attempts: {last_error}"
        )

    # -- aggregation ---------------------------------------------------

    def _router_stats(self) -> Dict[str, object]:
        return {
            "queries": self._queries,
            "unavailable": self._unavailable,
            "forwards": dict(self._forwards),
            "retries": dict(self._retries_by_replica),
            "answers": dict(self._answers),
            "forward_errors": dict(self._forward_errors),
            "failovers": dict(self._failovers),
            "replicas": {
                name: handle.describe()
                for name, handle in self._handles.items()
            },
            "num_shards": self._num_shards,
            "proto": PROTOCOL_VERSION,
        }

    async def _replica_stats(self) -> Dict[str, object]:
        async def one(handle: ReplicaHandle) -> Tuple[str, object]:
            try:
                client = await handle.ensure_client()
                return handle.name, await client.stats()
            except (ClientConnectionError, ServerError) as exc:
                return handle.name, {"error": str(exc)}

        pairs = await asyncio.gather(
            *(one(handle) for handle in self._handles.values())
        )
        return dict(pairs)

    async def _replica_traces(self) -> Dict[str, object]:
        async def one(handle: ReplicaHandle) -> Tuple[str, object]:
            try:
                client = await handle.ensure_client()
                return handle.name, await client.traces()
            except (ClientConnectionError, ServerError) as exc:
                return handle.name, {"error": str(exc)}

        pairs = await asyncio.gather(
            *(one(handle) for handle in self._handles.values())
        )
        return dict(pairs)

    async def _aggregate_metrics(self) -> str:
        writer = _Writer()
        names = sorted(self._handles)
        writer.family(
            "repro_router_info", "gauge", "Replica router identity."
        )
        writer.sample(
            "repro_router_info",
            1.0,
            {
                "proto": str(PROTOCOL_VERSION),
                "replicas": str(len(names)),
                "num_shards": str(self._num_shards),
            },
        )
        writer.family(
            "repro_router_replica_up",
            "gauge",
            "1 when the replica is routable (healthy/suspect), else 0.",
        )
        for name in names:
            handle = self._handles[name]
            writer.sample(
                "repro_router_replica_up",
                1.0 if handle.routable else 0.0,
                {"replica": name, "state": handle.state},
            )
        writer.counter(
            "repro_router_queries_total",
            float(self._queries),
            "Queries accepted by the router front door.",
        )
        writer.counter(
            "repro_router_unavailable_total",
            float(self._unavailable),
            "Queries that exhausted every replica and were refused.",
        )
        per_replica = [
            (
                "repro_router_forwards_total",
                self._forwards,
                "Forward attempts per replica (including retries).",
            ),
            (
                "repro_router_retries_total",
                self._retries_by_replica,
                "Forward attempts after the first, per target replica.",
            ),
            (
                "repro_router_answers_total",
                self._answers,
                "Responses successfully relayed, per answering replica.",
            ),
            (
                "repro_router_forward_errors_total",
                self._forward_errors,
                "Forward attempts that failed at the transport, per replica.",
            ),
            (
                "repro_router_failovers_total",
                self._failovers,
                "Queries answered away from their owning replica, "
                "labelled by the owner that missed them.",
            ),
        ]
        for family, counts, help_text in per_replica:
            writer.family(family, "counter", help_text)
            for name in names:
                writer.sample(family, float(counts[name]), {"replica": name})
        if self._health_checks:
            writer.family(
                "repro_router_health_checks_total",
                "counter",
                "Health probes by replica and outcome.",
            )
            for (name, outcome), count in sorted(self._health_checks.items()):
                writer.sample(
                    "repro_router_health_checks_total",
                    float(count),
                    {"replica": name, "outcome": outcome},
                )
        await self._append_replica_metrics(writer)
        return writer.render()

    async def _append_replica_metrics(self, writer: _Writer) -> None:
        """Re-export every replica's scrape with a ``replica=`` label.

        Families are merged across replicas first so each HELP/TYPE pair
        is emitted exactly once — the strict parser rejects duplicates.
        Unreachable replicas are simply absent from the re-export (their
        ``repro_router_replica_up`` gauge already tells the story).
        """

        async def one(handle: ReplicaHandle) -> Tuple[str, Optional[str]]:
            try:
                client = await handle.ensure_client()
                return handle.name, await client.metrics_text()
            except (ClientConnectionError, ServerError):
                return handle.name, None

        pairs = await asyncio.gather(
            *(one(handle) for handle in self._handles.values())
        )
        types: Dict[str, str] = {}
        samples: List[Tuple[str, str, Dict[str, str], float]] = []
        for name, text in sorted(pairs):
            if text is None:
                continue
            scrape = parse_prometheus_text(text)
            for family, kind in scrape.types.items():
                types.setdefault(family, kind)
            for (sample_name, label_items), value in scrape.samples.items():
                labels = dict(label_items)
                labels["replica"] = name
                samples.append((sample_name, name, labels, value))
        for family in sorted(types):
            writer.family(family, types[family], "Re-exported from replicas.")
        # Samples belong to a family by name prefix (_sum/_count/quantile
        # ride under the summary family); emission order groups by family
        # name so the exposition stays parseable.
        for sample_name, _, labels, value in sorted(
            samples, key=lambda item: (item[0], item[1])
        ):
            writer.sample(sample_name, value, labels)

    # -- HTTP ----------------------------------------------------------

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        received: float,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, object, str]:
        headers = headers or {}
        path, _, query_string = target.partition("?")
        routes = {
            "/query": "POST",
            "/healthz": "GET",
            "/stats": "GET",
            "/metrics": "GET",
            "/admin/drain": "POST",
            "/debug/traces": "GET",
        }
        if path not in routes:
            return (
                404,
                {"ok": False, "error": "not_found", "message": f"no route {path!r}"},
                _JSON_TYPE,
            )
        if method != routes[path] and not (
            method == "HEAD" and routes[path] == "GET"
        ):
            return (
                405,
                {
                    "ok": False,
                    "error": "method_not_allowed",
                    "message": f"{path} expects {routes[path]}, got {method}",
                },
                _JSON_TYPE,
            )

        if path == "/healthz":
            states = self.replica_states()
            routable = sum(
                1 for handle in self._handles.values() if handle.routable
            )
            if self.draining:
                return (
                    503,
                    {"ok": False, "status": "draining", "replicas": states},
                    _JSON_TYPE,
                )
            status = 200 if routable else 503
            return (
                status,
                {
                    "ok": bool(routable),
                    "status": "serving" if routable else "no_replicas",
                    "replicas": states,
                },
                _JSON_TYPE,
            )
        if path == "/stats":
            return (
                200,
                {
                    "router": self._router_stats(),
                    "replicas": await self._replica_stats(),
                },
                _JSON_TYPE,
            )
        if path == "/metrics":
            return 200, await self._aggregate_metrics(), _PROM_TYPE
        if path == "/debug/traces":
            own = None
            if self._tracer is not None:
                own = {
                    "stats": self._tracer.stats().as_dict(),
                    "traces": self._tracer.traces(),
                }
            return (
                200,
                {
                    "ok": True,
                    "router": own,
                    "replicas": await self._replica_traces(),
                },
                _JSON_TYPE,
            )
        if path == "/admin/drain":
            return await self._admin_drain(query_string)
        # path == "/query"
        status, response = await self._forward_query(body, headers)
        return status, response, _JSON_TYPE

    def _resolve_replica(self, value: str) -> Optional[str]:
        """Accept both ``replica-1`` and the bare index ``1``."""
        if value in self._handles:
            return value
        name = f"replica-{value}"
        if name in self._handles:
            return name
        return None

    async def _admin_drain(self, query_string: str) -> Tuple[int, object, str]:
        params = parse_qs(query_string)
        values = params.get("replica", [])
        if not values:
            # No target: drain the router itself (ack first — awaiting
            # drain() here would wait on this very connection).
            asyncio.ensure_future(self.drain())
            return 202, {"ok": True, "draining": True}, _JSON_TYPE
        name = self._resolve_replica(values[0])
        if name is None:
            return (
                400,
                {
                    "ok": False,
                    "error": "bad_request",
                    "message": f"unknown replica {values[0]!r}",
                },
                _JSON_TYPE,
            )
        handle = self._handles[name]
        # Mark before forwarding: no new queries route there even if the
        # drain request itself fails.
        handle.state = DRAINING
        forwarded = True
        message = None
        try:
            client = await handle.ensure_client()
            await client.drain()
        except (ClientConnectionError, ServerError) as exc:
            forwarded = False
            message = str(exc)
        body = {"ok": True, "draining": name, "forwarded": forwarded}
        if message is not None:
            body["message"] = message
        return 202, body, _JSON_TYPE


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    """Serve a replica router, attaching to or spawning a fleet."""
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7090)
    parser.add_argument(
        "--replica",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="attach to an existing replica (repeatable)",
    )
    parser.add_argument(
        "--spawn",
        type=int,
        default=0,
        metavar="N",
        help="spawn N local replica subprocesses instead of attaching",
    )
    parser.add_argument("--dataset", default="G1")
    parser.add_argument("--backend", default="async:4")
    parser.add_argument("--num-shards", type=int, default=0)
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument("--retry-backoff-ms", type=float, default=25.0)
    parser.add_argument("--health-interval-s", type=float, default=0.5)
    args = parser.parse_args(argv)
    if bool(args.replica) == bool(args.spawn):
        parser.error("exactly one of --replica or --spawn is required")

    from repro.serving.frontend.config import ServingConfig
    from repro.serving.replica import ReplicaSet

    async def serve(endpoints: List[Tuple[str, int]]) -> None:
        router = ReplicaRouter(
            endpoints,
            num_shards=args.num_shards,
            host=args.host,
            port=args.port,
            retries=args.retries,
            retry_backoff_ms=args.retry_backoff_ms,
            health_interval_s=args.health_interval_s,
        )
        host, port = await router.start()
        print(
            f"routing {len(endpoints)} replicas on http://{host}:{port} "
            f"(num_shards {args.num_shards}, retries {args.retries})"
        )
        try:
            await router.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await router.drain()
            await router.stop()

    if args.spawn:
        config = ServingConfig(
            dataset=args.dataset,
            backend=args.backend,
            num_shards=args.num_shards,
        )
        with ReplicaSet(config, args.spawn) as fleet:
            endpoints = [spec.address for spec in fleet.replicas]
            try:
                asyncio.run(serve(endpoints))
            except KeyboardInterrupt:
                print("interrupted; stopping fleet")
    else:
        endpoints = []
        for item in args.replica:
            host, _, port = item.rpartition(":")
            endpoints.append((host or "127.0.0.1", int(port)))
        try:
            asyncio.run(serve(endpoints))
        except KeyboardInterrupt:
            print("interrupted; shutting down")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
