"""Structured per-request logging for the serving front door.

Both server CLIs take ``--log-level``/``--log-json``; at ``info`` and below,
every answered query emits one log line — JSONL with ``--log-json`` (one
JSON object per line, machine-parseable) or a compact ``key=value`` line
otherwise.  The line carries the trace id when the query was sampled, so
logs and traces share ids: grep the slow-query log or ``/debug/traces`` for
a trace id seen in the request log (or vice versa) and land on the same
request.

The logger is ``repro.serving.request``; library code never configures the
root logger, and :func:`log_request` is guarded by ``isEnabledFor`` so the
default (``warning``) level keeps the per-request cost to one integer
comparison.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict, Optional

__all__ = ["REQUEST_LOGGER_NAME", "configure_logging", "log_request"]

REQUEST_LOGGER_NAME = "repro.serving.request"

_LEVELS = ("critical", "error", "warning", "info", "debug")


class _JsonFormatter(logging.Formatter):
    """One JSON object per record; ``request`` fields are inlined."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
        }
        fields = getattr(record, "request", None)
        if isinstance(fields, dict):
            payload.update(fields)
        else:
            payload["message"] = record.getMessage()
        return json.dumps(payload, separators=(",", ":"))


class _PlainFormatter(logging.Formatter):
    """``key=value`` pairs, stable order, human-greppable."""

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, "request", None)
        if isinstance(fields, dict):
            body = " ".join(f"{key}={value}" for key, value in fields.items())
        else:
            body = record.getMessage()
        return f"{self.formatTime(record)} {record.levelname.lower()} {body}"


def configure_logging(level: str = "warning", json_mode: bool = False) -> logging.Logger:
    """Configure the request logger for a server process (idempotent).

    Replaces any handlers a previous call installed, so tests and repeated
    CLI invocations in one process behave the same as a fresh one.
    """
    normalized = str(level).lower()
    if normalized not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {', '.join(_LEVELS)}"
        )
    logger = logging.getLogger(REQUEST_LOGGER_NAME)
    logger.setLevel(getattr(logging, normalized.upper()))
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(_JsonFormatter() if json_mode else _PlainFormatter())
    logger.addHandler(handler)
    return logger


def log_request(
    transport: str,
    status: str,
    latency_ms: Optional[float] = None,
    request_id: Optional[object] = None,
    seed: Optional[int] = None,
    k: Optional[int] = None,
    trace_id: Optional[str] = None,
    result_cache: Optional[str] = None,
    cache_enabled: Optional[bool] = None,
    logger: Optional[logging.Logger] = None,
) -> None:
    """Emit one structured line for an answered (or rejected) query.

    ``status`` is the protocol-level outcome (``ok``, ``shed``, ``deadline``,
    ``bad_request``, ``internal``); ``trace_id`` is present exactly when the
    query was sampled, tying this line to its span tree.
    """
    log = logger if logger is not None else logging.getLogger(REQUEST_LOGGER_NAME)
    if not log.isEnabledFor(logging.INFO):
        return
    fields: Dict[str, Any] = {"transport": transport, "status": status}
    if request_id is not None:
        fields["id"] = request_id
    if seed is not None:
        fields["seed"] = seed
    if k is not None:
        fields["k"] = k
    if latency_ms is not None:
        fields["latency_ms"] = round(float(latency_ms), 3)
    if trace_id is not None:
        fields["trace_id"] = trace_id
    if result_cache is not None:
        fields["result_cache"] = result_cache
    if cache_enabled is not None:
        fields["cache_enabled"] = cache_enabled
    log.info("request", extra={"request": fields})
