"""Asyncio client for the newline-delimited JSON query service.

:class:`AsyncClient` matches :class:`~repro.serving.frontend.server.AsyncQueryServer`'s
protocol: it assigns every request an ``id``, pipelines requests without
waiting for earlier answers, and routes each response line back to its
awaiting caller.  :meth:`query` returns the decoded response dict;
:meth:`solve` additionally raises the protocol's rejections as the same
exceptions the in-process frontend uses
(:class:`~repro.serving.frontend.admission.QueryShedError`,
:class:`~repro.serving.frontend.admission.DeadlineExceededError`), so code
can move between in-process and over-the-wire serving unchanged.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Dict, List, Optional, Tuple

from repro.serving.frontend.admission import (
    DeadlineExceededError,
    QueryShedError,
)

__all__ = ["ServerError", "AsyncClient"]


class ServerError(RuntimeError):
    """The server answered ``ok: false`` with a non-rejection error."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error
        self.message = message


class AsyncClient:
    """A pipelining JSON-lines client; create via :meth:`connect`.

    Example
    -------
    ::

        client = await AsyncClient.connect(host, port)
        try:
            top = await client.solve(seed=42, k=100)
        finally:
            await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._reader_task = asyncio.ensure_future(self._read_responses())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncClient":
        """Open a connection to a running server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # ------------------------------------------------------------------
    async def _read_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, OSError, json.JSONDecodeError):
            pass
        finally:
            self._fail_pending(ConnectionError("server closed the connection"))

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------
    async def request(self, payload: dict) -> dict:
        """Send one request object and await its matching response."""
        if self._writer.is_closing():
            raise ConnectionError("client is closed")
        request_id = next(self._ids)
        payload = dict(payload, id=request_id)
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self._writer.drain()
        return await future

    async def query(
        self,
        seed: int,
        k: int = 200,
        alpha: float = 0.85,
        length: int = 6,
        timeout_ms: Optional[float] = None,
    ) -> dict:
        """Issue a PPR query; returns the raw response dict (check ``ok``)."""
        payload: dict = {
            "op": "query",
            "seed": seed,
            "k": k,
            "alpha": alpha,
            "length": length,
        }
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return await self.request(payload)

    async def solve(
        self,
        seed: int,
        k: int = 200,
        alpha: float = 0.85,
        length: int = 6,
        timeout_ms: Optional[float] = None,
    ) -> List[Tuple[int, float]]:
        """Issue a query and return its top-k pairs, raising on rejection."""
        response = await self.query(seed, k, alpha, length, timeout_ms)
        if response.get("ok"):
            return [(int(node), float(score)) for node, score in response["top"]]
        error = response.get("error", "unknown")
        message = response.get("message", "")
        if error == "shed":
            raise QueryShedError(message=message or "query shed by server")
        if error == "deadline":
            raise DeadlineExceededError(message)
        raise ServerError(error, message)

    async def ping(self) -> bool:
        """Round-trip health check."""
        response = await self.request({"op": "ping"})
        return bool(response.get("ok"))

    async def stats(self) -> dict:
        """Fetch the server's frontend stats document."""
        response = await self.request({"op": "stats"})
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown"), response.get("message", "")
            )
        return response["stats"]

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Close the connection and fail any unanswered requests."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._fail_pending(ConnectionError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.close()
