"""The unified query-client API over both front-door transports.

Two transports' worth of ad-hoc clients grew here since PR 3: the TCP
JSON-lines :class:`AsyncClient` and the HTTP :class:`HttpClient` /
``HttpClientPool`` pair, each with its own method names, error behaviour and
reconnect logic.  Everything that drives a server — tests, benchmarks, the
studies, and now the replica router — should consume **one interface**
instead of a transport, so this module defines it:

* :class:`QueryClient` — the ABC: ``query`` / ``query_batch`` / ``solve`` /
  ``ping`` / ``stats`` / ``drain`` / ``traces`` / ``close``, with shared
  timeout and retry semantics (transport failures raise
  :class:`ClientConnectionError`; ``retries=`` adds bounded
  reconnect-with-backoff around each query).
* :class:`TcpQueryClient` — the pipelining JSON-lines implementation
  (formerly ``AsyncClient``; the old name remains as a thin alias).
* :class:`HttpQueryClient` — the HTTP/1.1 implementation on a fixed-size
  keep-alive connection pool (wrapping the low-level
  :class:`~repro.serving.frontend.http.HttpClientPool`).
* :func:`connect_client` — transport-by-name factory, so callers can hold a
  ``("tcp"|"http", host, port)`` triple and never import a transport module.

Both implementations raise the *same* typed errors the in-process frontend
uses — :class:`~repro.serving.frontend.admission.QueryShedError`,
:class:`~repro.serving.frontend.admission.DeadlineExceededError`,
:class:`ServerError` — and both validate the server's advertised protocol
version (:mod:`repro.serving.frontend.protocol`), so a mixed-version fleet
fails with :class:`~repro.serving.frontend.protocol.ProtocolMismatchError`
instead of mis-parsing.
"""

from __future__ import annotations

import abc
import asyncio
import itertools
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.frontend.admission import (
    DeadlineExceededError,
    QueryShedError,
)
from repro.serving.frontend.protocol import (
    PROTOCOL_VERSION,
    ProtocolMismatchError,
    check_protocol_version,
)

__all__ = [
    "ServerError",
    "ClientConnectionError",
    "QueryClient",
    "TcpQueryClient",
    "HttpQueryClient",
    "AsyncClient",
    "connect_client",
    "raise_for_response",
]


class ServerError(RuntimeError):
    """The server answered ``ok: false`` with a non-rejection error."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error
        self.message = message


class ClientConnectionError(ConnectionError):
    """The transport failed before a complete response arrived.

    Raised uniformly for connection refusal, a peer closing mid-response,
    and writes on a closed client — the three failure shapes a replica
    router must treat identically (the query may safely be retried
    elsewhere: queries are pure reads).  Subclasses :class:`ConnectionError`
    so pre-unification ``except ConnectionError`` call sites keep working.
    """


def raise_for_response(response: dict) -> dict:
    """Map a protocol response onto the frontend's typed errors.

    Returns the response unchanged when ``ok`` is true; otherwise raises the
    same exception the in-process frontend would have raised, so code can
    move between in-process, TCP and HTTP serving without relearning the
    failure taxonomy.
    """
    if response.get("ok"):
        return response
    error = response.get("error", "unknown")
    message = response.get("message", "")
    if error == "shed":
        raise QueryShedError(message=message or "query shed by server")
    if error == "deadline":
        raise DeadlineExceededError(message)
    raise ServerError(error, message)


class QueryClient(abc.ABC):
    """One client interface over any front-door transport.

    Parameters
    ----------
    retries:
        Transport-failure retries per :meth:`query` call (0 = fail fast).
        Each retry reconnects and backs off exponentially from
        ``retry_backoff_ms``.  Protocol rejections (shed, deadline, bad
        request) are *answers*, never retried.
    retry_backoff_ms:
        First-retry backoff; doubles per subsequent retry.
    """

    #: Transport name ("tcp" or "http"); implementations override.
    transport = "?"

    def __init__(self, retries: int = 0, retry_backoff_ms: float = 50.0) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff_ms < 0:
            raise ValueError(
                f"retry_backoff_ms must be >= 0, got {retry_backoff_ms}"
            )
        self._retries = retries
        self._retry_backoff_ms = retry_backoff_ms

    # -- the transport-specific core ----------------------------------
    @abc.abstractmethod
    async def _query_once(
        self, payload: dict, traceparent: Optional[str]
    ) -> dict:
        """Send one query payload; returns the raw response dict."""

    @abc.abstractmethod
    async def _reconnect(self) -> None:
        """Re-establish the transport after a failure (best effort)."""

    @abc.abstractmethod
    async def ping(self) -> bool:
        """Round-trip health check."""

    @abc.abstractmethod
    async def stats(self) -> dict:
        """Fetch the server's frontend stats document."""

    @abc.abstractmethod
    async def drain(self) -> dict:
        """Ask the server to begin a graceful drain; returns its ack."""

    @abc.abstractmethod
    async def traces(self) -> dict:
        """Fetch the server's finished span trees (tracing must be on)."""

    @abc.abstractmethod
    async def close(self) -> None:
        """Close the transport and fail any unanswered requests."""

    # -- the shared surface -------------------------------------------
    @staticmethod
    def build_query_payload(
        seed: int,
        k: int = 200,
        alpha: float = 0.85,
        length: int = 6,
        timeout_ms: Optional[float] = None,
    ) -> dict:
        """The wire-format query object shared by both transports."""
        payload: dict = {"seed": seed, "k": k, "alpha": alpha, "length": length}
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return payload

    async def query(
        self,
        seed: int,
        k: int = 200,
        alpha: float = 0.85,
        length: int = 6,
        timeout_ms: Optional[float] = None,
        traceparent: Optional[str] = None,
    ) -> dict:
        """Issue a PPR query; returns the raw response dict (check ``ok``).

        Transport failures raise :class:`ClientConnectionError` after the
        configured retries; the server's protocol rejections come back as
        response dicts (use :meth:`solve` for typed exceptions).
        """
        payload = self.build_query_payload(seed, k, alpha, length, timeout_ms)
        return await self.request_query(payload, traceparent=traceparent)

    async def request_query(
        self, payload: dict, traceparent: Optional[str] = None
    ) -> dict:
        """Send a pre-built query payload with the shared retry semantics.

        The replica router uses this form: it forwards the *client's* payload
        verbatim (the replica validates it) rather than re-assembling one.
        """
        attempt = 0
        while True:
            try:
                return await self._query_once(payload, traceparent)
            except ClientConnectionError:
                if attempt >= self._retries:
                    raise
            backoff_s = self._retry_backoff_ms * (2.0**attempt) / 1e3
            attempt += 1
            if backoff_s > 0:
                await asyncio.sleep(backoff_s)
            try:
                await self._reconnect()
            except ClientConnectionError:
                # The server may still be down mid-outage; a failed
                # reconnect consumes this attempt (the next _query_once
                # fails fast on the closed transport) instead of
                # aborting the whole retry budget.
                continue

    async def query_batch(
        self, requests: Sequence[dict], traceparent: Optional[str] = None
    ) -> List[dict]:
        """Issue many queries concurrently; responses in request order.

        Each element of ``requests`` is a query payload dict (see
        :meth:`build_query_payload`).  The TCP transport pipelines them on
        one connection; the HTTP transport fans them across its pool — the
        caller sees the same contract either way.
        """
        return list(
            await asyncio.gather(
                *(
                    self.request_query(dict(request), traceparent=traceparent)
                    for request in requests
                )
            )
        )

    async def solve(
        self,
        seed: int,
        k: int = 200,
        alpha: float = 0.85,
        length: int = 6,
        timeout_ms: Optional[float] = None,
    ) -> List[Tuple[int, float]]:
        """Issue a query and return its top-k pairs, raising on rejection."""
        response = raise_for_response(
            await self.query(seed, k, alpha, length, timeout_ms)
        )
        return [(int(node), float(score)) for node, score in response["top"]]

    @staticmethod
    def _check_response_proto(response: dict, source: str) -> dict:
        """Fail loudly when the peer advertises a different protocol."""
        check_protocol_version(response.get("proto"), source)
        return response

    async def __aenter__(self) -> "QueryClient":
        return self

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.close()


class TcpQueryClient(QueryClient):
    """The pipelining JSON-lines client; create via :meth:`connect`.

    Example
    -------
    ::

        client = await TcpQueryClient.connect(host, port)
        try:
            top = await client.solve(seed=42, k=100)
        finally:
            await client.close()
    """

    transport = "tcp"

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        host: Optional[str] = None,
        port: Optional[int] = None,
        retries: int = 0,
        retry_backoff_ms: float = 50.0,
    ) -> None:
        super().__init__(retries=retries, retry_backoff_ms=retry_backoff_ms)
        self._host = host
        self._port = port
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._reader_task = asyncio.ensure_future(self._read_responses())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        retries: int = 0,
        retry_backoff_ms: float = 50.0,
    ) -> "TcpQueryClient":
        """Open a connection to a running server."""
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError) as exc:
            raise ClientConnectionError(
                f"cannot connect to tcp://{host}:{port}: {exc}"
            ) from exc
        return cls(
            reader,
            writer,
            host=host,
            port=port,
            retries=retries,
            retry_backoff_ms=retry_backoff_ms,
        )

    # ------------------------------------------------------------------
    async def _read_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is None or future.done():
                    continue
                try:
                    self._check_response_proto(
                        response, f"tcp://{self._host}:{self._port}"
                    )
                except ProtocolMismatchError as exc:
                    future.set_exception(exc)
                else:
                    future.set_result(response)
        except (ConnectionError, OSError, json.JSONDecodeError):
            pass
        finally:
            self._fail_pending(
                ClientConnectionError("server closed the connection")
            )

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _reconnect(self) -> None:
        if self._host is None or self._port is None:
            raise ClientConnectionError(
                "cannot reconnect: client was built from raw streams "
                "(use TcpQueryClient.connect for retry support)"
            )
        await self.close()
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        except (ConnectionError, OSError) as exc:
            raise ClientConnectionError(
                f"cannot reconnect to tcp://{self._host}:{self._port}: {exc}"
            ) from exc
        self._reader_task = asyncio.ensure_future(self._read_responses())

    # ------------------------------------------------------------------
    async def request(self, payload: dict) -> dict:
        """Send one request object and await its matching response."""
        if self._writer.is_closing():
            raise ClientConnectionError("client is closed")
        request_id = next(self._ids)
        payload = dict(payload, id=request_id)
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise ClientConnectionError(str(exc)) from exc
        return await future

    async def _query_once(
        self, payload: dict, traceparent: Optional[str]
    ) -> dict:
        request = dict(payload, op="query")
        if traceparent is not None:
            request["trace"] = traceparent
        return await self.request(request)

    async def ping(self) -> bool:
        response = await self.request({"op": "ping"})
        return bool(response.get("ok"))

    async def stats(self) -> dict:
        response = await self.request({"op": "stats"})
        raise_for_response(response)
        return response["stats"]

    async def drain(self) -> dict:
        return raise_for_response(await self.request({"op": "drain"}))

    async def traces(self) -> dict:
        response = raise_for_response(await self.request({"op": "traces"}))
        return {"stats": response["stats"], "traces": response["traces"]}

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Close the connection and fail any unanswered requests."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._fail_pending(ClientConnectionError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


#: Pre-unification name of the TCP client, kept as an alias for one release;
#: new code should say :class:`TcpQueryClient` (or use :func:`connect_client`).
AsyncClient = TcpQueryClient


class HttpQueryClient(QueryClient):
    """The HTTP/1.1 implementation on a fixed-size keep-alive pool.

    The HTTP server answers one request at a time per connection, so batch
    concurrency comes from the pool (``pool_size`` connections), exactly as
    production HTTP load arrives.  Create via :meth:`connect`.
    """

    transport = "http"

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 8,
        retries: int = 0,
        retry_backoff_ms: float = 50.0,
    ) -> None:
        super().__init__(retries=retries, retry_backoff_ms=retry_backoff_ms)
        # Imported here: http.py imports nothing from this module, but the
        # local import keeps the layering one-directional if that changes.
        from repro.serving.frontend.http import HttpClientPool

        self._host = host
        self._port = port
        self._pool = HttpClientPool(host, port, size=pool_size)
        self._connected = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        pool_size: int = 8,
        retries: int = 0,
        retry_backoff_ms: float = 50.0,
    ) -> "HttpQueryClient":
        """Open the connection pool to a running server."""
        client = cls(
            host,
            port,
            pool_size=pool_size,
            retries=retries,
            retry_backoff_ms=retry_backoff_ms,
        )
        await client._ensure_connected()
        return client

    async def _ensure_connected(self) -> None:
        if not self._connected:
            try:
                await self._pool.connect()
            except (ConnectionError, OSError) as exc:
                raise ClientConnectionError(
                    f"cannot connect to http://{self._host}:{self._port}: {exc}"
                ) from exc
            self._connected = True

    async def _request_json(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, dict]:
        await self._ensure_connected()
        try:
            status, payload = await self._pool.request_json(
                method, path, body, headers=headers
            )
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            raise ClientConnectionError(
                f"http://{self._host}:{self._port}{path}: {exc}"
            ) from exc
        if isinstance(payload, dict):
            self._check_response_proto(
                payload, f"http://{self._host}:{self._port}"
            )
        return status, payload

    async def _query_once(
        self, payload: dict, traceparent: Optional[str]
    ) -> dict:
        headers = {"traceparent": traceparent} if traceparent else None
        _, response = await self._request_json(
            "POST", "/query", payload, headers=headers
        )
        return response

    async def _reconnect(self) -> None:
        # The pool replaces broken connections per request; nothing to do
        # beyond ensuring it exists (covers retry-after-connect-failure).
        await self._ensure_connected()

    async def ping(self) -> bool:
        try:
            status, _ = await self._request_json("GET", "/healthz")
        except ClientConnectionError:
            return False
        return status == 200

    async def healthz(self) -> Tuple[int, dict]:
        """The raw ``/healthz`` answer: ``(status, payload)``.

        Unlike :meth:`ping` this propagates connection errors and hands
        the caller the payload, so supervisors can inspect the ``proto``
        field with their own strictness (the replica router *requires*
        it and quarantines mixed-version replicas).
        """
        return await self._request_json("GET", "/healthz")

    async def stats(self) -> dict:
        status, payload = await self._request_json("GET", "/stats")
        if status != 200:
            raise_for_response(payload)
        return payload

    async def drain(self) -> dict:
        _, payload = await self._request_json("POST", "/admin/drain")
        return raise_for_response(payload)

    async def traces(self) -> dict:
        status, payload = await self._request_json("GET", "/debug/traces")
        if status != 200:
            raise ServerError(
                str(payload.get("error", "unknown")),
                str(payload.get("message", "")),
            )
        return {"stats": payload["stats"], "traces": payload["traces"]}

    async def metrics_text(self) -> str:
        """The server's raw Prometheus exposition (HTTP transport only)."""
        await self._ensure_connected()
        try:
            status, _, body = await self._pool.request(
                "GET", "/metrics"
            )
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            raise ClientConnectionError(
                f"http://{self._host}:{self._port}/metrics: {exc}"
            ) from exc
        if status != 200:
            raise ServerError("metrics", f"GET /metrics answered {status}")
        return body.decode("utf-8")

    async def close(self) -> None:
        if self._connected:
            await self._pool.close()
            self._connected = False


#: Transport name -> client class, for :func:`connect_client`.
_TRANSPORTS = {"tcp": TcpQueryClient, "http": HttpQueryClient}


async def connect_client(
    transport: str,
    host: str,
    port: int,
    retries: int = 0,
    retry_backoff_ms: float = 50.0,
    **kwargs: object,
) -> QueryClient:
    """Connect a :class:`QueryClient` by transport name (``tcp``/``http``).

    Extra keyword arguments go to the transport's ``connect`` (e.g.
    ``pool_size=`` for HTTP).
    """
    try:
        cls = _TRANSPORTS[transport]
    except KeyError:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of "
            f"{sorted(_TRANSPORTS)}"
        ) from None
    return await cls.connect(
        host,
        port,
        retries=retries,
        retry_backoff_ms=retry_backoff_ms,
        **kwargs,
    )
