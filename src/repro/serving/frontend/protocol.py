"""Protocol versioning shared by every transport and client.

A replicated fleet is upgraded one process at a time, so a router *will* at
some point talk to a replica speaking a different wire protocol.  Without a
version field that shows up as silent mis-parsing (a missing key, a shifted
status code) attributed to anything but its real cause.  With one, it shows
up as a :class:`ProtocolMismatchError` naming both versions and the peer.

Every server stamps its responses:

* TCP responses carry ``"proto": PROTOCOL_VERSION`` on each JSON line;
* HTTP responses carry an ``X-Repro-Proto`` header, ``GET /healthz`` also
  carries ``proto`` in its body, and the ``repro_server_info`` metric a
  ``proto`` label.

Clients (and the replica router's health checks) validate the field with
:func:`check_protocol_version`: a *different* version fails loudly, while an
*absent* field is tolerated by the clients (a pre-versioning peer) but
rejected by the replica router, whose replicas it spawned itself and which
therefore must all carry the field.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "CAPABILITIES",
    "ProtocolMismatchError",
    "check_protocol_version",
]

#: Version of the query wire protocol (TCP JSON-lines and HTTP JSON bodies
#: share one taxonomy, so they share one version).  Bump on any change a
#: deployed client could mis-parse.
PROTOCOL_VERSION = 1

#: Capabilities of this build, advertised through ``/healthz`` and the
#: ready file so supervisors can check features without probing endpoints.
CAPABILITIES: Tuple[str, ...] = ("query", "drain", "reload", "traces")


class ProtocolMismatchError(RuntimeError):
    """A peer answered with an incompatible protocol version."""

    def __init__(
        self, peer_version: object, source: str, expected: int = PROTOCOL_VERSION
    ) -> None:
        super().__init__(
            f"{source} speaks protocol version {peer_version!r}, this client "
            f"speaks {expected}; refusing to mis-parse a mixed-version fleet"
        )
        self.peer_version = peer_version
        self.expected = expected
        self.source = source


def check_protocol_version(
    value: object,
    source: str,
    required: bool = False,
) -> Optional[int]:
    """Validate a peer's advertised protocol version.

    Returns the version when compatible.  ``None`` means the peer did not
    advertise one — tolerated unless ``required`` (the replica router
    requires it: it spawned its replicas, so a missing field is itself a
    version skew).  Raises :class:`ProtocolMismatchError` on any other
    version or a malformed value.
    """
    if value is None:
        if required:
            raise ProtocolMismatchError(None, source)
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolMismatchError(value, source)
    if value != PROTOCOL_VERSION:
        raise ProtocolMismatchError(value, source)
    return value
