"""One serving configuration, one builder, every entry point.

The TCP and HTTP server mains grew the same ~20 CLI flags and the same
engine-assembly logic in parallel; the replica supervisor would have been a
third copy — worse, one that re-assembled ``argv`` strings to spawn its
replicas.  This module is the single source of truth instead:

* :class:`ServingConfig` — a frozen dataclass carrying everything a serving
  process needs (dataset, backend, batching, admission, caches, kernel,
  sharding, tracing, logging, ready-file).  It converts losslessly to and
  from the CLI surface: :meth:`ServingConfig.from_args` reads a parsed
  namespace, :meth:`ServingConfig.to_argv` emits the equivalent flag list —
  which is exactly how :class:`~repro.serving.replica.ReplicaSet` spawns
  replica subprocesses from a config object.
* :func:`add_serving_arguments` — installs the shared flags on a parser;
  both server CLIs call it, so the flag surface cannot drift between
  transports again.
* :func:`build_frontend` — the one builder turning a config into the
  ``(engine, policy, admission)`` triple both servers serve.  Sharded
  configs (``num_shards > 0``) build a
  :class:`~repro.serving.sharding.ShardRouter` over the deterministic
  partition, which is what gives a replica its shard set while keeping it
  host-graph-capable for failover traffic.
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.partition import DEFAULT_HALO_DEPTH, PARTITIONERS

__all__ = [
    "ServingConfig",
    "add_serving_arguments",
    "build_serving_parser",
    "build_frontend",
]


@dataclass(frozen=True)
class ServingConfig:
    """Everything one serving process needs, as data.

    Field defaults mirror the CLI defaults exactly — ``ServingConfig()`` is
    what ``parse_args([])`` produces (modulo the per-CLI ``port`` default),
    and :meth:`to_argv` round-trips through :meth:`from_args` losslessly.
    """

    dataset: str = "G1"
    host: str = "127.0.0.1"
    port: int = 7071
    backend: str = "async:4"
    max_batch: int = 8
    max_wait_ms: float = 2.0
    dedup: bool = True
    max_pending: int = 256
    no_cache: bool = False
    result_cache_bytes: Optional[int] = None
    result_cache_ttl: Optional[float] = None
    kernel: Optional[str] = None
    # Sharding: 0 = unsharded.  A sharded config serves the full dataset
    # through a ShardRouter over `num_shards` shards — shard-local for
    # depths within the halo, host-graph fallback beyond it — which is what
    # lets a replica own a shard subset yet answer any seed correctly.
    num_shards: int = 0
    partition: str = "hash"
    halo_depth: int = DEFAULT_HALO_DEPTH
    record: Optional[str] = None
    trace_sample: float = 0.0
    trace_ring: int = 512
    slow_ms: float = 250.0
    slow_log: Optional[str] = None
    log_level: str = "warning"
    log_json: bool = False
    ready_file: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_shards < 0:
            raise ValueError(f"num_shards must be >= 0, got {self.num_shards}")
        if self.num_shards and self.partition not in PARTITIONERS:
            raise ValueError(
                f"unknown partition strategy {self.partition!r}; expected one "
                f"of {sorted(PARTITIONERS)}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "ServingConfig":
        """Build a config from a parsed namespace (missing attrs = defaults).

        Tolerating missing attributes keeps hand-built ``Namespace`` objects
        (tests, studies) valid, same as the old ``build_frontend`` did.
        """
        fields = {}
        for field in dataclasses.fields(cls):
            if field.name == "dedup":
                # The CLI expresses dedup negatively (--no-dedup).
                fields["dedup"] = not getattr(args, "no_dedup", False)
            else:
                value = getattr(args, field.name, field.default)
                fields[field.name] = value
        return cls(**fields)

    def replace(self, **overrides: object) -> "ServingConfig":
        """A copy with ``overrides`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    def to_argv(self) -> List[str]:
        """The CLI flag list reproducing this config through the parser.

        This is how the replica supervisor spawns server subprocesses: build
        the replica's config, call ``to_argv()``, exec the server module.
        Round-trip is exact: ``from_args(parser.parse_args(cfg.to_argv()))
        == cfg``.
        """
        argv: List[str] = [
            "--dataset", self.dataset,
            "--host", self.host,
            "--port", str(self.port),
            "--backend", self.backend,
            "--max-batch", str(self.max_batch),
            "--max-wait-ms", repr(self.max_wait_ms),
            "--max-pending", str(self.max_pending),
            "--trace-sample", repr(self.trace_sample),
            "--trace-ring", str(self.trace_ring),
            "--slow-ms", repr(self.slow_ms),
            "--log-level", self.log_level,
        ]
        if not self.dedup:
            argv.append("--no-dedup")
        if self.no_cache:
            argv.append("--no-cache")
        if self.result_cache_bytes is not None:
            argv += ["--result-cache-bytes", str(self.result_cache_bytes)]
        if self.result_cache_ttl is not None:
            argv += ["--result-cache-ttl", repr(self.result_cache_ttl)]
        if self.kernel is not None:
            argv += ["--kernel", self.kernel]
        if self.num_shards:
            argv += [
                "--num-shards", str(self.num_shards),
                "--partition", self.partition,
                "--halo-depth", str(self.halo_depth),
            ]
        if self.record is not None:
            argv += ["--record", self.record]
        if self.slow_log is not None:
            argv += ["--slow-log", self.slow_log]
        if self.log_json:
            argv.append("--log-json")
        if self.ready_file is not None:
            argv += ["--ready-file", self.ready_file]
        return argv


def add_serving_arguments(
    parser: argparse.ArgumentParser, default_port: int = 7071
) -> argparse.ArgumentParser:
    """Install the shared serving flags on ``parser`` (both server CLIs)."""
    parser.add_argument("--dataset", default="G1", help="dataset key to serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=default_port)
    parser.add_argument(
        "--backend",
        default="async:4",
        help="engine backend spec: serial, thread[:N], async[:N] or process[:N]",
    )
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--no-dedup", action="store_true", help="disable in-flight dedup"
    )
    parser.add_argument(
        "--max-pending", type=int, default=256, help="admission bound"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable caching: the sub-graph cache and (unless "
            "--result-cache-bytes explicitly enables it) the cross-query "
            "result cache"
        ),
    )
    parser.add_argument(
        "--result-cache-bytes",
        type=int,
        default=None,
        help=(
            "byte budget of the cross-query stage-one result cache "
            "(hot seeds skip straight to stage two; 0 disables, the "
            "default enables it at the library default budget)"
        ),
    )
    parser.add_argument(
        "--result-cache-ttl",
        type=float,
        default=None,
        help="optional TTL (seconds) on cached stage-one tables (<= 0: none)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        help=(
            "diffusion kernel: reference, csr, frontier, numba or auto "
            "(default: the REPRO_DIFFUSION_KERNEL environment variable, "
            "else auto); every kernel returns bit-identical scores"
        ),
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=0,
        help=(
            "serve through a ShardRouter over this many shards (0 = "
            "unsharded); replicas of a fleet share one shard count so the "
            "front router's seed hashing matches shard ownership"
        ),
    )
    parser.add_argument(
        "--partition",
        default="hash",
        choices=sorted(PARTITIONERS),
        help="partition strategy when --num-shards > 0",
    )
    parser.add_argument(
        "--halo-depth",
        type=int,
        default=DEFAULT_HALO_DEPTH,
        help="halo hop radius of each shard sub-graph (--num-shards > 0)",
    )
    parser.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help=(
            "record every accepted query (with arrival offsets) to this "
            "JSONL trace on shutdown, for replay as a repeatable benchmark "
            "(repro.serving.frontend.recorder)"
        ),
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        help=(
            "fraction of queries recording a full span tree (0 disables "
            "tracing entirely; an inbound sampled-flagged traceparent always "
            "traces); hot-reloadable via the 'trace_sample' reload key"
        ),
    )
    parser.add_argument(
        "--trace-ring",
        type=int,
        default=512,
        help="finished traces kept in memory for /debug/traces (ring buffer)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=250.0,
        help=(
            "slow-query threshold: sampled traces at least this slow are "
            "counted (and logged when --slow-log is set)"
        ),
    )
    parser.add_argument(
        "--slow-log",
        default=None,
        metavar="PATH",
        help=(
            "append each over-threshold trace as one JSONL span tree to "
            "this file (requires --trace-sample > 0 to sample anything)"
        ),
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("critical", "error", "warning", "info", "debug"),
        help=(
            "request-log verbosity: info and below emit one line per "
            "answered query (trace id, status, latency, cache outcome)"
        ),
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit request-log lines as JSONL instead of key=value text",
    )
    parser.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help=(
            "after binding, write a JSON readiness record (host, port, pid, "
            "protocol version) to this path — how the replica supervisor "
            "learns a spawned server is up without parsing stdout"
        ),
    )
    return parser


def build_serving_parser(
    description: Optional[str] = None, default_port: int = 7071
) -> argparse.ArgumentParser:
    """A fresh parser carrying exactly the shared serving flags."""
    return add_serving_arguments(
        argparse.ArgumentParser(description=description), default_port
    )


def build_frontend(config: ServingConfig) -> Tuple[object, object, object]:
    """Construct the ``(engine, policy, admission)`` triple a server serves.

    The one assembly path shared by the TCP CLI, the HTTP CLI and the
    replica supervisor.  Accepts a :class:`ServingConfig`; the transport
    mains adapt their parsed namespaces via :meth:`ServingConfig.from_args`.
    """
    # Imported here, not at module top: the frontend package must stay
    # importable without pulling the dataset/solver layers in.
    from repro.graph.datasets import load_dataset
    from repro.graph.partition import partition_graph
    from repro.meloppr.solver import MeLoPPRSolver
    from repro.serving.backends import ProcessPoolBackend, make_backend
    from repro.serving.cache import DEFAULT_CACHE_BYTES, SubgraphCache
    from repro.serving.engine import QueryEngine
    from repro.serving.frontend.admission import AdmissionController
    from repro.serving.frontend.batcher import BatchPolicy
    from repro.serving.result_cache import (
        DEFAULT_RESULT_CACHE_BYTES,
        ScoreTableCache,
    )
    from repro.serving.sharding import ShardRouter
    from repro.serving.tracing import Tracer

    graph = load_dataset(config.dataset)
    backend = make_backend(config.backend)
    stage_task_backend = getattr(backend, "executes_stage_tasks", False)
    if stage_task_backend:
        # Stage-task workers cache extractions themselves; an engine-level
        # cache would never be consulted (the engine rejects it).  --no-cache
        # therefore maps to the worker-side cache switch here.
        cache = None
        if config.no_cache and isinstance(backend, ProcessPoolBackend):
            # Rebuild with *every* constructor argument preserved: dropping
            # mp_context or kernel here would silently serve with a different
            # start method / diffusion kernel than the operator asked for.
            backend = ProcessPoolBackend(
                num_workers=backend.num_workers,
                mp_context=backend.mp_context,
                cache_bytes=None,
                kernel=backend.kernel,
            )
    else:
        cache = None if config.no_cache else SubgraphCache()

    # The stage-one result cache is parent-side for every backend (workers
    # only ever see the stage-two tasks of a cached query), so the flag maps
    # uniformly; 0 switches it off, and --no-cache means *all* caching off
    # (it is how operators measure the uncached path — a silently surviving
    # result cache would invalidate that baseline by 2x+) unless an explicit
    # --result-cache-bytes overrides it.
    result_cache_bytes = config.result_cache_bytes
    result_cache_ttl = config.result_cache_ttl
    if result_cache_ttl is not None and result_cache_ttl <= 0:
        # Same 0-disables convention as --result-cache-bytes: a non-positive
        # TTL means "no TTL", not a startup crash.
        result_cache_ttl = None
    if result_cache_bytes is None and config.no_cache:
        effective_result_bytes: Optional[int] = None
    elif result_cache_bytes is not None and result_cache_bytes <= 0:
        effective_result_bytes = None
    elif result_cache_bytes is not None:
        effective_result_bytes = result_cache_bytes
    else:
        effective_result_bytes = DEFAULT_RESULT_CACHE_BYTES

    router = None
    result_cache = None
    if config.num_shards:
        # Sharded serving: the router owns one sub-graph cache and one
        # stage-one result cache per shard; the engine-level equivalents
        # must stay None (the engine enforces the exclusivity).
        router = ShardRouter(
            partition_graph(
                graph,
                config.num_shards,
                strategy=config.partition,
                halo_depth=config.halo_depth,
            ),
            cache_bytes=None if config.no_cache else DEFAULT_CACHE_BYTES,
            result_cache_bytes=effective_result_bytes,
            result_cache_ttl_seconds=result_cache_ttl,
        )
        cache = None
    elif effective_result_bytes is not None:
        result_cache = ScoreTableCache(
            effective_result_bytes, ttl_seconds=result_cache_ttl
        )

    # A tracer exists iff sampling can ever fire: a zero rate builds none,
    # so the hot path stays a bare `tracer is None` check per request.
    trace_sample = config.trace_sample or 0.0
    tracer = None
    if trace_sample > 0.0:
        tracer = Tracer(
            sample_rate=trace_sample,
            ring_size=config.trace_ring,
            slow_threshold_ms=config.slow_ms,
            slow_log_path=config.slow_log,
        )
    engine = QueryEngine(
        MeLoPPRSolver(graph),
        backend=backend,
        cache=cache,
        router=router,
        result_cache=result_cache,
        kernel=config.kernel,
        tracer=tracer,
    )
    policy = BatchPolicy(
        max_batch_size=config.max_batch,
        max_wait_ms=config.max_wait_ms,
        dedup=config.dedup,
    )
    admission = AdmissionController(max_pending=config.max_pending)
    return engine, policy, admission
