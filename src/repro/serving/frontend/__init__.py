"""The async serving frontend: the request path on top of the compute path.

PR 1/2 built the compute path — a batched :class:`~repro.serving.engine.QueryEngine`
with pluggable backends, sub-graph caches and shard routing.  This package is
the request-facing layer that turns a stream of individual online queries
into the well-formed batches that engine is optimised for:

* :class:`AsyncBackend` — an :class:`~repro.serving.backends.ExecutionBackend`
  running jobs on an asyncio event loop (bounded thread-pool offload,
  submission-order results, bit-identical scores).
* :class:`MicroBatcher` — coalesces ``await submit(query)`` calls into engine
  batches under a :class:`BatchPolicy`, deduplicates identical in-flight
  queries, and enforces per-query deadlines.
* :class:`AdmissionController` — a bounded in-flight queue with explicit
  shedding (:class:`QueryShedError`) and p50/p95/p99 latency telemetry.
* :class:`QueryClient` — the unified client API: one abstract surface
  (``query``/``query_batch``/``ping``/``stats``/``drain``/``traces``,
  typed errors, retry-with-backoff) with :class:`TcpQueryClient` and
  :class:`HttpQueryClient` implementations behind :func:`connect_client`.
  ``AsyncClient`` remains as an alias of the TCP client for one release.
* :class:`AsyncQueryServer` — a minimal TCP service speaking
  newline-delimited JSON, with protocol-level shed/deadline answers.
* :class:`HttpQueryServer` / :class:`HttpClient` / :class:`HttpClientPool` —
  the production front door: the same batcher served over HTTP/1.1 + JSON,
  with a Prometheus ``/metrics`` endpoint
  (:func:`render_prometheus` / :func:`parse_prometheus_text`).
* :class:`ReplicaRouter` — the multi-replica front door: consistent-hash
  seed routing over a fleet (see :mod:`repro.serving.replica`), bounded
  retry-with-failover, rolling drain, and aggregated
  ``/stats``/``/metrics``/``/debug/traces``.
* :class:`ServingConfig` / :func:`build_frontend` — the one CLI/config
  surface both server transports (and the replica supervisor) build from.
* ``PROTOCOL_VERSION`` — every response (TCP line or HTTP envelope)
  carries a ``proto`` field so mixed-version fleets fail loudly
  (:class:`ProtocolMismatchError`).
* :func:`apply_reload` — hot config reload (admission bound, batch policy,
  cache budgets) shared by both transports; both servers also implement
  graceful drain (``drain()``: stop accepting, finish every in-flight
  query).
* :class:`WorkloadRecorder` / :func:`replay_trace` — capture accepted
  queries with arrival offsets as JSONL traces and replay them as
  repeatable benchmarks.
* :func:`configure_logging` / :func:`log_request` — structured per-request
  logging (``--log-level``/``--log-json`` on both server CLIs), one line
  per answered query carrying the trace id when the query was sampled.
"""

from repro.serving.frontend.admission import (
    AdmissionController,
    AdmissionStats,
    DeadlineExceededError,
    QueryRejectedError,
    QueryShedError,
)
from repro.serving.frontend.async_backend import AsyncBackend
from repro.serving.frontend.batcher import BatcherStats, BatchPolicy, MicroBatcher
from repro.serving.frontend.client import (
    AsyncClient,
    ClientConnectionError,
    HttpQueryClient,
    QueryClient,
    ServerError,
    TcpQueryClient,
    connect_client,
    raise_for_response,
)
from repro.serving.frontend.config import (
    ServingConfig,
    add_serving_arguments,
    build_frontend,
    build_serving_parser,
)
from repro.serving.frontend.http import (
    BaseHttpServer,
    HttpClient,
    HttpClientPool,
    HttpQueryServer,
)
from repro.serving.frontend.metrics import (
    PrometheusScrape,
    parse_prometheus_text,
    render_prometheus,
)
from repro.serving.frontend.ops import (
    RELOADABLE_KEYS,
    apply_graph_update,
    apply_reload,
    frontend_config,
)
from repro.serving.frontend.request_log import (
    REQUEST_LOGGER_NAME,
    configure_logging,
    log_request,
)
from repro.serving.frontend.recorder import (
    TraceRecord,
    WorkloadRecorder,
    load_trace,
    replay_trace,
    replay_trace_sync,
    save_trace,
)
from repro.serving.frontend.protocol import (
    CAPABILITIES,
    PROTOCOL_VERSION,
    ProtocolMismatchError,
    check_protocol_version,
)
from repro.serving.frontend.router import ReplicaRouter
from repro.serving.frontend.server import AsyncQueryServer, write_ready_file

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AsyncBackend",
    "AsyncClient",
    "AsyncQueryServer",
    "BaseHttpServer",
    "BatchPolicy",
    "BatcherStats",
    "CAPABILITIES",
    "ClientConnectionError",
    "DeadlineExceededError",
    "HttpClient",
    "HttpClientPool",
    "HttpQueryClient",
    "HttpQueryServer",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "PrometheusScrape",
    "ProtocolMismatchError",
    "QueryClient",
    "QueryRejectedError",
    "QueryShedError",
    "RELOADABLE_KEYS",
    "REQUEST_LOGGER_NAME",
    "ReplicaRouter",
    "ServerError",
    "ServingConfig",
    "TcpQueryClient",
    "TraceRecord",
    "WorkloadRecorder",
    "add_serving_arguments",
    "apply_graph_update",
    "apply_reload",
    "build_frontend",
    "build_serving_parser",
    "check_protocol_version",
    "configure_logging",
    "connect_client",
    "frontend_config",
    "load_trace",
    "log_request",
    "parse_prometheus_text",
    "raise_for_response",
    "render_prometheus",
    "replay_trace",
    "replay_trace_sync",
    "save_trace",
    "write_ready_file",
]
