"""The async serving frontend: the request path on top of the compute path.

PR 1/2 built the compute path — a batched :class:`~repro.serving.engine.QueryEngine`
with pluggable backends, sub-graph caches and shard routing.  This package is
the request-facing layer that turns a stream of individual online queries
into the well-formed batches that engine is optimised for:

* :class:`AsyncBackend` — an :class:`~repro.serving.backends.ExecutionBackend`
  running jobs on an asyncio event loop (bounded thread-pool offload,
  submission-order results, bit-identical scores).
* :class:`MicroBatcher` — coalesces ``await submit(query)`` calls into engine
  batches under a :class:`BatchPolicy`, deduplicates identical in-flight
  queries, and enforces per-query deadlines.
* :class:`AdmissionController` — a bounded in-flight queue with explicit
  shedding (:class:`QueryShedError`) and p50/p95/p99 latency telemetry.
* :class:`AsyncQueryServer` / :class:`AsyncClient` — a minimal TCP service
  speaking newline-delimited JSON, with protocol-level shed/deadline answers.
"""

from repro.serving.frontend.admission import (
    AdmissionController,
    AdmissionStats,
    DeadlineExceededError,
    QueryRejectedError,
    QueryShedError,
)
from repro.serving.frontend.async_backend import AsyncBackend
from repro.serving.frontend.batcher import BatcherStats, BatchPolicy, MicroBatcher
from repro.serving.frontend.client import AsyncClient, ServerError
from repro.serving.frontend.server import AsyncQueryServer

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AsyncBackend",
    "AsyncClient",
    "AsyncQueryServer",
    "BatchPolicy",
    "BatcherStats",
    "DeadlineExceededError",
    "MicroBatcher",
    "QueryRejectedError",
    "QueryShedError",
    "ServerError",
]
