"""The async serving frontend: the request path on top of the compute path.

PR 1/2 built the compute path — a batched :class:`~repro.serving.engine.QueryEngine`
with pluggable backends, sub-graph caches and shard routing.  This package is
the request-facing layer that turns a stream of individual online queries
into the well-formed batches that engine is optimised for:

* :class:`AsyncBackend` — an :class:`~repro.serving.backends.ExecutionBackend`
  running jobs on an asyncio event loop (bounded thread-pool offload,
  submission-order results, bit-identical scores).
* :class:`MicroBatcher` — coalesces ``await submit(query)`` calls into engine
  batches under a :class:`BatchPolicy`, deduplicates identical in-flight
  queries, and enforces per-query deadlines.
* :class:`AdmissionController` — a bounded in-flight queue with explicit
  shedding (:class:`QueryShedError`) and p50/p95/p99 latency telemetry.
* :class:`AsyncQueryServer` / :class:`AsyncClient` — a minimal TCP service
  speaking newline-delimited JSON, with protocol-level shed/deadline answers.
* :class:`HttpQueryServer` / :class:`HttpClient` / :class:`HttpClientPool` —
  the production front door: the same batcher served over HTTP/1.1 + JSON,
  with a Prometheus ``/metrics`` endpoint
  (:func:`render_prometheus` / :func:`parse_prometheus_text`).
* :func:`apply_reload` — hot config reload (admission bound, batch policy,
  cache budgets) shared by both transports; both servers also implement
  graceful drain (``drain()``: stop accepting, finish every in-flight
  query).
* :class:`WorkloadRecorder` / :func:`replay_trace` — capture accepted
  queries with arrival offsets as JSONL traces and replay them as
  repeatable benchmarks.
* :func:`configure_logging` / :func:`log_request` — structured per-request
  logging (``--log-level``/``--log-json`` on both server CLIs), one line
  per answered query carrying the trace id when the query was sampled.
"""

from repro.serving.frontend.admission import (
    AdmissionController,
    AdmissionStats,
    DeadlineExceededError,
    QueryRejectedError,
    QueryShedError,
)
from repro.serving.frontend.async_backend import AsyncBackend
from repro.serving.frontend.batcher import BatcherStats, BatchPolicy, MicroBatcher
from repro.serving.frontend.client import AsyncClient, ServerError
from repro.serving.frontend.http import HttpClient, HttpClientPool, HttpQueryServer
from repro.serving.frontend.metrics import (
    PrometheusScrape,
    parse_prometheus_text,
    render_prometheus,
)
from repro.serving.frontend.ops import RELOADABLE_KEYS, apply_reload, frontend_config
from repro.serving.frontend.request_log import (
    REQUEST_LOGGER_NAME,
    configure_logging,
    log_request,
)
from repro.serving.frontend.recorder import (
    TraceRecord,
    WorkloadRecorder,
    load_trace,
    replay_trace,
    replay_trace_sync,
    save_trace,
)
from repro.serving.frontend.server import AsyncQueryServer

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AsyncBackend",
    "AsyncClient",
    "AsyncQueryServer",
    "BatchPolicy",
    "BatcherStats",
    "DeadlineExceededError",
    "HttpClient",
    "HttpClientPool",
    "HttpQueryServer",
    "MicroBatcher",
    "PrometheusScrape",
    "QueryRejectedError",
    "QueryShedError",
    "RELOADABLE_KEYS",
    "REQUEST_LOGGER_NAME",
    "ServerError",
    "TraceRecord",
    "WorkloadRecorder",
    "apply_reload",
    "configure_logging",
    "frontend_config",
    "load_trace",
    "log_request",
    "parse_prometheus_text",
    "render_prometheus",
    "replay_trace",
    "replay_trace_sync",
    "save_trace",
]
