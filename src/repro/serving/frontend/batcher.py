"""Micro-batching scheduler: individual async submissions → engine batches.

The engine layer (:class:`~repro.serving.engine.QueryEngine`) is optimised
for batches — backend fan-out, warm sub-graph caches, shard routing — but an
online front door receives queries one at a time.  :class:`MicroBatcher`
bridges the two: callers ``await submit(query)`` individually, and a
scheduler coroutine coalesces submissions into engine batches under a
:class:`BatchPolicy` (close a batch at ``max_batch_size`` queries, or
``max_wait_ms`` after its first query arrived, whichever comes first).

Three serving behaviours live here and not in the engine:

* **Deduplication** — identical in-flight queries (same frozen
  :class:`~repro.ppr.base.PPRQuery`, i.e. the same ``(seed, k, alpha,
  length)`` against the engine's fixed solver config) are computed once per
  batch and the single result fans out to every waiter.
* **Deadlines** — ``submit(query, timeout_ms=...)`` bounds the end-to-end
  wait; queries whose deadline passes while queued (or while their batch
  computed) fail with :class:`DeadlineExceededError` instead of returning a
  stale answer.
* **Admission control** — every submission passes the
  :class:`~repro.serving.frontend.admission.AdmissionController` first, so
  overload sheds loudly (:class:`QueryShedError`) instead of queueing
  unboundedly.

Scores are bit-identical to ``engine.solve_batch`` on a serial backend:
batching composition never changes per-query computations (they are
independent), and deduplicated waiters share the one result object their
query produced.  Batches execute one at a time, in arrival order, on an
executor thread so the event loop stays responsive.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.ppr.base import PPRQuery, PPRResult
from repro.serving.engine import EngineStats, QueryEngine
from repro.serving.frontend.admission import (
    AdmissionController,
    AdmissionStats,
    DeadlineExceededError,
)
from repro.serving.tracing import Span, TraceContext

__all__ = ["BatchPolicy", "BatcherStats", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """How submissions coalesce into engine batches.

    Attributes
    ----------
    max_batch_size:
        Close the batch once this many queries are waiting (1 disables
        coalescing: every query runs alone).
    max_wait_ms:
        Close the batch this long after its *first* query arrived even if it
        is not full (0 batches only what is already queued, adding no
        latency).
    dedup:
        Whether identical in-flight queries share one computation.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    dedup: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be > 0, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")

    @property
    def label(self) -> str:
        """Compact form for tables and run labels (e.g. ``b8w2.0``)."""
        dedup = "" if self.dedup else "-nodedup"
        return f"b{self.max_batch_size}w{self.max_wait_ms:g}{dedup}"

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "dedup": self.dedup,
        }


@dataclass(frozen=True)
class BatcherStats:
    """Scheduler counters plus the nested admission and engine stats.

    Attributes
    ----------
    policy:
        The active batching policy.
    batches:
        Engine batches executed.
    batched_queries:
        Logical queries delivered through those batches (before dedup).
    unique_executed:
        Queries actually handed to the engine (after dedup).
    dedup_hits:
        Waiters served by another waiter's computation.
    admission:
        The admission controller's counters (shed rate, e2e latency
        percentiles).
    engine:
        The wrapped engine's counters (compute latency percentiles, cache).
    """

    policy: BatchPolicy
    batches: int
    batched_queries: int
    unique_executed: int
    dedup_hits: int
    admission: AdmissionStats
    engine: EngineStats

    @property
    def mean_batch_size(self) -> float:
        """Mean logical queries per executed batch (0.0 before any batch)."""
        return self.batched_queries / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        return {
            "policy": self.policy.as_dict(),
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "unique_executed": self.unique_executed,
            "dedup_hits": self.dedup_hits,
            "mean_batch_size": self.mean_batch_size,
            "admission": self.admission.as_dict(),
            "engine": self.engine.as_dict(),
        }


class _Waiter:
    """One awaited submission: its query, future, deadline and arrival time."""

    __slots__ = ("query", "future", "deadline", "enqueued_at", "trace", "queue_span")

    def __init__(
        self,
        query: PPRQuery,
        future: "asyncio.Future[PPRResult]",
        deadline: Optional[float],
        enqueued_at: float,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.query = query
        self.future = future
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        self.trace = trace
        self.queue_span: Optional[Span] = None


_STOP = object()


class MicroBatcher:
    """Coalesce individually submitted queries into engine batches.

    Parameters
    ----------
    engine:
        The batch-serving engine answering the coalesced batches.  The
        batcher owns scheduling only; close the engine separately (it may be
        shared with offline callers).
    policy:
        Batching policy; defaults to :class:`BatchPolicy`'s defaults.
    admission:
        Admission controller bounding in-flight queries; a private
        default-capacity controller is created when not given.

    Notes
    -----
    The batcher lives on one asyncio event loop: :meth:`start` captures the
    running loop, and :meth:`submit` must be awaited on it.  Use it as an
    async context manager::

        async with MicroBatcher(engine, BatchPolicy(8, 2.0)) as batcher:
            result = await batcher.submit(PPRQuery(seed=3, k=50))
    """

    def __init__(
        self,
        engine: QueryEngine,
        policy: Optional[BatchPolicy] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self._engine = engine
        self._policy = policy if policy is not None else BatchPolicy()
        self._admission = (
            admission if admission is not None else AdmissionController()
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._items: Deque[object] = deque()
        self._arrival: Optional[asyncio.Event] = None
        self._scheduler: Optional["asyncio.Task[None]"] = None
        self._closing = False
        self._batches = 0
        self._batched_queries = 0
        self._unique_executed = 0
        self._dedup_hits = 0

    # ------------------------------------------------------------------
    @property
    def engine(self) -> QueryEngine:
        """The wrapped engine."""
        return self._engine

    @property
    def policy(self) -> BatchPolicy:
        """The active batching policy."""
        return self._policy

    def set_policy(self, policy: BatchPolicy) -> None:
        """Swap the batching policy in place (the hot-reload path).

        The batch currently being collected finishes under the policy it
        started with; every later batch uses the new one.  No queued or
        in-flight query is dropped — this only changes how future
        submissions coalesce.
        """
        if not isinstance(policy, BatchPolicy):
            raise TypeError(f"policy must be a BatchPolicy, got {policy!r}")
        self._policy = policy

    @property
    def admission(self) -> AdmissionController:
        """The admission controller consulted on every submission."""
        return self._admission

    @property
    def running(self) -> bool:
        """Whether the scheduler is accepting submissions."""
        return self._scheduler is not None and not self._closing

    @property
    def queue_depth(self) -> int:
        """Waiters queued but not yet batched (bounded by admission)."""
        return len(self._items)

    # ------------------------------------------------------------------
    async def start(self) -> "MicroBatcher":
        """Start the scheduler on the running event loop."""
        if self._scheduler is not None:
            raise RuntimeError("batcher is already started")
        self._loop = asyncio.get_running_loop()
        self._arrival = asyncio.Event()
        self._closing = False
        self._scheduler = self._loop.create_task(self._run_scheduler())
        return self

    async def stop(self) -> None:
        """Drain queued submissions, then stop the scheduler (idempotent)."""
        if self._scheduler is None:
            return
        self._closing = True
        self._push(_STOP)
        try:
            await self._scheduler
        finally:
            self._scheduler = None
            self._loop = None
            self._arrival = None

    async def __aenter__(self) -> "MicroBatcher":
        return await self.start()

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def submit(
        self,
        query: PPRQuery,
        timeout_ms: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> PPRResult:
        """Submit one query; resolves when its batch completes.

        ``trace`` (an optional sampled
        :class:`~repro.serving.tracing.TraceContext`) records the queue wait
        (``admission.queue``), batch membership and dedup fan-out
        (``batcher.batch``), and is threaded into the engine so the query's
        full span tree hangs together.  The caller finishes the context.

        Raises
        ------
        QueryShedError
            The admission queue is full (explicit backpressure).
        DeadlineExceededError
            ``timeout_ms`` elapsed before the result could be delivered.
        RuntimeError
            The batcher is not running.
        """
        if self._scheduler is None or self._closing:
            raise RuntimeError("batcher is not running; use 'async with' or start()")
        loop = asyncio.get_running_loop()
        if loop is not self._loop:
            raise RuntimeError("submit() must run on the batcher's event loop")
        self._admission.admit()
        now = loop.time()
        deadline = now + timeout_ms / 1000.0 if timeout_ms is not None else None
        waiter = _Waiter(query, loop.create_future(), deadline, now, trace)
        if trace is not None:
            # Spans the admission-to-execution wait: queued behind the
            # scheduler plus any coalescing window.
            waiter.queue_span = trace.begin_span(
                "admission.queue",
                queue_depth=len(self._items),
                pending=self._admission.pending,
            )
        self._push(waiter)
        return await waiter.future

    def _push(self, item: object) -> None:
        self._items.append(item)
        assert self._arrival is not None
        self._arrival.set()

    # ------------------------------------------------------------------
    async def _run_scheduler(self) -> None:
        assert self._loop is not None and self._arrival is not None
        loop, arrival, items = self._loop, self._arrival, self._items
        while True:
            # Wait for the batch's first waiter.
            while not items:
                arrival.clear()
                await arrival.wait()
            first = items.popleft()
            if first is _STOP:
                break
            # Re-read per batch so set_policy() (hot reload) takes effect on
            # the next batch without restarting the scheduler.
            policy = self._policy
            batch: List[_Waiter] = [first]
            stop_after = False
            # Collect until the batch is full or max_wait_ms has passed since
            # the first waiter *arrived* (not since it was popped): a query
            # that already waited out its window behind a busy engine closes
            # its batch with whatever else is queued, paying no second wait.
            close_at = first.enqueued_at + policy.max_wait_ms / 1000.0
            while len(batch) < policy.max_batch_size:
                if items:
                    item = items.popleft()
                    if item is _STOP:
                        stop_after = True
                        break
                    batch.append(item)
                    continue
                remaining = close_at - loop.time()
                if remaining <= 0:
                    break
                arrival.clear()
                try:
                    await asyncio.wait_for(arrival.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            await self._execute_batch(batch)
            if stop_after:
                break

    async def _execute_batch(self, batch: List[_Waiter]) -> None:
        assert self._loop is not None
        loop = self._loop
        now = loop.time()
        # Weed out cancelled and already-expired waiters, then group the rest
        # (dedup: one group per distinct query, in first-arrival order).
        groups: List[Tuple[PPRQuery, List[_Waiter]]] = []
        index: Dict[PPRQuery, int] = {}
        for waiter in batch:
            if waiter.future.done():  # caller gave up while queued
                if waiter.trace is not None and waiter.queue_span is not None:
                    waiter.trace.end_span(waiter.queue_span, status="cancelled")
                self._admission.cancel()
                continue
            if waiter.deadline is not None and now > waiter.deadline:
                if waiter.trace is not None and waiter.queue_span is not None:
                    waiter.trace.end_span(waiter.queue_span, status="deadline")
                waiter.future.set_exception(
                    DeadlineExceededError(
                        f"deadline passed {now - waiter.deadline:.3f}s before "
                        "the query was scheduled"
                    )
                )
                self._admission.expire()
                continue
            if self._policy.dedup and waiter.query in index:
                groups[index[waiter.query]][1].append(waiter)
            else:
                if self._policy.dedup:
                    index[waiter.query] = len(groups)
                groups.append((waiter.query, [waiter]))
        if not groups:
            return

        unique = [query for query, _ in groups]
        # Tracing: per dedup group, the first traced waiter's context rides
        # into the engine (one computation → one engine span tree); every
        # traced waiter gets a batcher.batch span, dedup passengers annotated
        # as such.  The common all-untraced case skips all of this.
        contexts: Optional[List[Optional[TraceContext]]] = None
        batch_spans: List[Tuple[_Waiter, Span]] = []
        if any(w.trace is not None for _, waiters in groups for w in waiters):
            contexts = []
            for _, waiters in groups:
                representative = next(
                    (w.trace for w in waiters if w.trace is not None), None
                )
                contexts.append(representative)
                for waiter in waiters:
                    if waiter.trace is None:
                        continue
                    if waiter.queue_span is not None:
                        waiter.trace.end_span(waiter.queue_span)
                    batch_spans.append(
                        (
                            waiter,
                            waiter.trace.begin_span(
                                "batcher.batch",
                                push=waiter.trace is representative,
                                batch_size=len(batch),
                                unique=len(groups),
                                group_size=len(waiters),
                                dedup_hit=waiter.trace is not representative,
                            ),
                        )
                    )
        try:
            # Off the loop: solve_batch is CPU-bound (its own backend decides
            # the intra-batch concurrency).
            if contexts is None:
                results = await loop.run_in_executor(
                    None, self._engine.solve_batch, unique
                )
            else:
                results = await loop.run_in_executor(
                    None, self._engine.solve_batch, unique, contexts
                )
        except Exception as exc:
            for waiter, span in batch_spans:
                waiter.trace.end_span(span, status="error")
            for _, waiters in groups:
                for waiter in waiters:
                    if waiter.future.done():
                        self._admission.cancel()
                        continue
                    waiter.future.set_exception(exc)
                    self._admission.fail()
            return

        end = loop.time()
        for waiter, span in batch_spans:
            waiter.trace.end_span(span)
        self._batches += 1
        self._unique_executed += len(unique)
        for (_, waiters), result in zip(groups, results):
            self._batched_queries += len(waiters)
            self._dedup_hits += len(waiters) - 1
            for waiter in waiters:
                if waiter.future.done():  # cancelled while computing
                    self._admission.cancel()
                    continue
                if waiter.deadline is not None and end > waiter.deadline:
                    waiter.future.set_exception(
                        DeadlineExceededError(
                            f"deadline passed {end - waiter.deadline:.3f}s "
                            "before the batch completed"
                        )
                    )
                    self._admission.expire()
                    continue
                waiter.future.set_result(result)
                self._admission.complete(end - waiter.enqueued_at)

    # ------------------------------------------------------------------
    def stats(self) -> BatcherStats:
        """Scheduler, admission and engine counters in one snapshot."""
        return BatcherStats(
            policy=self._policy,
            batches=self._batches,
            batched_queries=self._batched_queries,
            unique_executed=self._unique_executed,
            dedup_hits=self._dedup_hits,
            admission=self._admission.stats(),
            engine=self._engine.stats(),
        )

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(policy={self._policy!r}, "
            f"running={self.running}, queue_depth={self.queue_depth})"
        )
