"""A minimal asyncio TCP query service speaking newline-delimited JSON.

One request per line, one JSON object per response line.  Requests either
carry an ``op`` (``"ping"``, ``"stats"``, ``"traces"``) or describe a PPR
query::

    {"id": 7, "seed": 42, "k": 100, "alpha": 0.85, "length": 6,
     "timeout_ms": 250, "trace": "00-<32 hex>-<16 hex>-01"}

``trace`` (optional) carries a W3C-style ``traceparent``: with a tracer
configured (``--trace-sample``), a sampled-flagged value forces the query to
record a span tree under the supplied trace id (see
:mod:`repro.serving.tracing`), echoed back as ``trace_id`` on the response.

``id`` is echoed verbatim so clients can pipeline.  Query responses carry the
top-k scores; rejections are explicit protocol answers, not dropped
connections::

    {"id": 7, "ok": true,  "top": [[12, 0.31], ...], "latency_ms": 3.1}
    {"id": 8, "ok": false, "error": "shed", "message": "..."}        # overload
    {"id": 9, "ok": false, "error": "deadline", "message": "..."}    # too slow
    {"id": 0, "ok": false, "error": "bad_request", "message": "..."}

Each connection's requests are handled concurrently (a task per line), so
queries from one pipelining client — and from many clients — coalesce in the
shared :class:`~repro.serving.frontend.batcher.MicroBatcher`.

Run a server from the command line (spec strings via
:func:`~repro.serving.backends.make_backend`)::

    PYTHONPATH=src python -m repro.serving.frontend.server \
        --dataset G1 --port 7071 --backend thread:4 --max-batch 8
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.ppr.base import PPRQuery
from repro.serving.frontend.admission import (
    AdmissionController,
    QueryRejectedError,
)
from repro.serving.frontend.batcher import BatchPolicy, MicroBatcher
from repro.serving.frontend.config import ServingConfig, build_serving_parser
from repro.serving.frontend.config import build_frontend as _build_frontend
from repro.serving.frontend.ops import apply_graph_update, apply_reload
from repro.serving.frontend.protocol import (
    CAPABILITIES,
    PROTOCOL_VERSION,
)
from repro.serving.frontend.request_log import log_request
from repro.utils.validation import check_node_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.serving.frontend.recorder import WorkloadRecorder

__all__ = [
    "AsyncQueryServer",
    "parse_query_request",
    "write_ready_file",
    "main",
]


def _require_int(value: object, name: str) -> int:
    """A strict JSON-integer check (booleans and floats are bad requests)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be a JSON integer, got {value!r}")
    return value


def _require_number(value: object, name: str) -> float:
    """A strict JSON-number check (booleans are bad requests)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a JSON number, got {value!r}")
    return value


def parse_query_request(
    request: dict, num_nodes: int
) -> Tuple[PPRQuery, Optional[float]]:
    """Validate a query-request dict; returns ``(query, timeout_ms)``.

    Shared by the TCP and HTTP front doors so both transports enforce the
    *same* protocol: integer fields are validated strictly — ``42.9`` is a
    bad request, not a silent truncation to seed 42, and JSON booleans are
    rejected (``check_node_id`` would refuse them anyway; ``_require_int``
    keeps ``k``/``length`` to the same standard).  Bad fields raise
    ``ValueError`` and must never poison a batch.
    """
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object")
    if "seed" not in request:
        raise ValueError("query request must carry a 'seed'")
    seed = check_node_id(
        _require_int(request["seed"], "seed"), num_nodes, "seed"
    )
    query = PPRQuery(
        seed=seed,
        k=_require_int(request.get("k", 200), "k"),
        alpha=float(_require_number(request.get("alpha", 0.85), "alpha")),
        length=_require_int(request.get("length", 6), "length"),
    )
    timeout_ms = request.get("timeout_ms")
    if timeout_ms is not None:
        timeout_ms = float(_require_number(timeout_ms, "timeout_ms"))
        if timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {timeout_ms}")
    return query, timeout_ms


class AsyncQueryServer:
    """Serve a :class:`MicroBatcher` over TCP with a JSON-lines protocol.

    Parameters
    ----------
    batcher:
        The started (or about-to-be-started) micro-batcher answering queries.
    host, port:
        Bind address; port 0 picks a free port (read it from :meth:`start`'s
        return value).
    max_pipelined:
        Bound on in-flight requests *per connection*.  Past it, the read
        loop stops consuming lines until responses flush — so a client that
        pipelines without reading its socket exerts TCP backpressure instead
        of growing the server's task set and response buffers without limit
        (admission control bounds engine work, this bounds connection
        memory).
    """

    def __init__(
        self,
        batcher: MicroBatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pipelined: int = 128,
        recorder: Optional["WorkloadRecorder"] = None,
    ) -> None:
        if max_pipelined <= 0:
            raise ValueError(f"max_pipelined must be > 0, got {max_pipelined}")
        self._batcher = batcher
        self._host = host
        self._port = port
        self._max_pipelined = max_pipelined
        self._recorder = recorder
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_event: Optional[asyncio.Event] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()

    @property
    def batcher(self) -> MicroBatcher:
        """The micro-batcher answering this server's queries."""
        return self._batcher

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has begun (no new work is accepted)."""
        return self._drain_event is not None and self._drain_event.is_set()

    @property
    def recorder(self) -> Optional["WorkloadRecorder"]:
        """The workload recorder capturing query requests (``None`` = off)."""
        return self._recorder

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._drain_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting connections and close the listener (idempotent)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def drain(self) -> None:
        """Gracefully wind the server down: stop accepting, finish in-flight.

        The drain contract — the reason this is safe to wire to ``SIGTERM``
        — is that **no admitted query is ever dropped**:

        1. the listener closes (new connections are refused),
        2. every open connection stops consuming request lines,
        3. every request already received is answered and flushed,
        4. the connections close and :meth:`drain` returns.

        Idempotent and re-entrant: concurrent callers all wait for the same
        completion.  The batcher is *not* stopped here (the caller owns it,
        and may serve the same batcher over several transports); stop it
        after every transport has drained.
        """
        if self._drain_event is None:
            return  # never started: nothing in flight by construction
        self._drain_event.set()
        await self.stop()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "AsyncQueryServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        slots = asyncio.Semaphore(self._max_pipelined)
        tasks: Set["asyncio.Task[None]"] = set()
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
        assert self._drain_event is not None
        drain_wait = asyncio.ensure_future(self._drain_event.wait())

        def release_slot(task: "asyncio.Task[None]") -> None:
            tasks.discard(task)
            slots.release()

        try:
            while True:
                # Backpressure: with max_pipelined responses in flight (e.g.
                # a client writing but never reading its socket), stop
                # consuming lines until a slot frees.
                await slots.acquire()
                if drain_wait.done():
                    # Draining: stop consuming request lines.  Requests
                    # already dispatched finish (and flush) in ``finally``.
                    slots.release()
                    break
                read = asyncio.ensure_future(reader.readline())
                await asyncio.wait(
                    {read, drain_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():
                    # Drain began while blocked on the socket: abandon the
                    # read (the connection is closing anyway) and wind down.
                    read.cancel()
                    try:
                        await read
                    except (asyncio.CancelledError, ValueError, OSError):
                        pass
                    slots.release()
                    break
                try:
                    line = read.result()
                except ValueError:
                    # The line overran the stream's buffer limit; the stream
                    # cannot be resynchronised, so answer explicitly and end
                    # the connection (after the drain in ``finally`` flushes
                    # any earlier pipelined responses).
                    slots.release()
                    await self._write_response(
                        writer,
                        write_lock,
                        {
                            "id": None,
                            "ok": False,
                            "error": "bad_request",
                            "message": "request line exceeds the stream limit",
                        },
                    )
                    break
                if not line:
                    slots.release()
                    break
                # The latency clock starts *here*, at line receipt: parse and
                # validation time is part of what the client observes, so it
                # must be part of what the server reports.
                received = asyncio.get_running_loop().time()
                # A task per request: queries across lines (and clients)
                # overlap, which is what feeds the micro-batcher.
                task = asyncio.ensure_future(
                    self._handle_line(line, received, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(release_slot)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            if not drain_wait.done():
                drain_wait.cancel()
                try:
                    await drain_wait
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if conn_task is not None:
                self._conn_tasks.discard(conn_task)

    async def _handle_line(
        self,
        line: bytes,
        received: float,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        await self._write_response(
            writer, write_lock, await self._answer(line, received)
        )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: dict,
    ) -> None:
        # Every wire response advertises the protocol version, so a client
        # from a different release fails loudly instead of mis-parsing.
        response.setdefault("proto", PROTOCOL_VERSION)
        payload = json.dumps(response).encode("utf-8") + b"\n"
        async with write_lock:
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to deliver the answer to

    async def _answer(
        self, line: bytes, received: Optional[float] = None
    ) -> dict:
        loop = asyncio.get_running_loop()
        if received is None:
            received = loop.time()
        request_id = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op", "query")
            if op == "ping":
                return {"id": request_id, "ok": True, "op": "ping"}
            if op == "stats":
                return {
                    "id": request_id,
                    "ok": True,
                    "op": "stats",
                    "stats": self._batcher.stats().as_dict(),
                }
            if op == "drain":
                # Acknowledge first, drain as a background task: drain()
                # waits for every connection handler — including the one
                # carrying this very request — so awaiting it here would
                # deadlock.
                asyncio.ensure_future(self.drain())
                return {
                    "id": request_id,
                    "ok": True,
                    "op": "drain",
                    "draining": True,
                }
            if op == "reload":
                outcome = apply_reload(
                    self._batcher, request.get("config", {})
                )
                return {"id": request_id, "ok": True, "op": "reload", **outcome}
            if op == "update":
                # The writer barrier blocks until in-flight batches finish —
                # run it off the event loop, or it would deadlock against
                # the very batch the loop is completing.
                outcome = await loop.run_in_executor(
                    None,
                    apply_graph_update,
                    self._batcher,
                    request.get("ops", []),
                )
                return {"id": request_id, "ok": True, "op": "update", **outcome}
            if op == "traces":
                tracer = self._batcher.engine.tracer
                if tracer is None:
                    raise ValueError(
                        "tracing is disabled; start the server with "
                        "--trace-sample > 0"
                    )
                return {
                    "id": request_id,
                    "ok": True,
                    "op": "traces",
                    "stats": tracer.stats().as_dict(),
                    "traces": tracer.traces(),
                }
            if op != "query":
                raise ValueError(f"unknown op {op!r}")
            query, timeout_ms = parse_query_request(
                request, self._batcher.engine.solver.graph.num_nodes
            )
            traceparent = request.get("trace")
        except (ValueError, TypeError, KeyError) as exc:
            return {
                "id": request_id,
                "ok": False,
                "error": "bad_request",
                "message": str(exc),
            }

        tracer = self._batcher.engine.tracer
        ctx = None
        if tracer is not None:
            ctx = tracer.start_trace(
                "request",
                traceparent=traceparent if isinstance(traceparent, str) else None,
                transport="tcp",
                seed=query.seed,
            )
        if self._recorder is not None:
            self._recorder.record_query(query, timeout_ms=timeout_ms)
        try:
            result = await self._batcher.submit(
                query, timeout_ms=timeout_ms, trace=ctx
            )
        except QueryRejectedError as exc:
            latency_ms = (loop.time() - received) * 1e3
            if ctx is not None:
                ctx.finish(status=exc.code, latency_ms=latency_ms)
            log_request(
                "tcp",
                exc.code,
                latency_ms=latency_ms,
                request_id=request_id,
                seed=query.seed,
                k=query.k,
                trace_id=None if ctx is None else ctx.trace_id,
            )
            return {
                "id": request_id,
                "ok": False,
                "error": exc.code,
                "message": str(exc),
            }
        except Exception as exc:  # engine failure: report, keep serving
            latency_ms = (loop.time() - received) * 1e3
            if ctx is not None:
                ctx.finish(status="internal", latency_ms=latency_ms)
            log_request(
                "tcp",
                "internal",
                latency_ms=latency_ms,
                request_id=request_id,
                seed=query.seed,
                k=query.k,
                trace_id=None if ctx is None else ctx.trace_id,
            )
            return {
                "id": request_id,
                "ok": False,
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }
        latency_ms = (loop.time() - received) * 1e3
        serving_meta = result.metadata.get("serving", {})
        if ctx is not None:
            ctx.finish(status="ok", latency_ms=latency_ms)
        log_request(
            "tcp",
            "ok",
            latency_ms=latency_ms,
            request_id=request_id,
            seed=query.seed,
            k=query.k,
            trace_id=None if ctx is None else ctx.trace_id,
            result_cache=serving_meta.get("result_cache"),
            cache_enabled=serving_meta.get("cache_enabled"),
        )
        response = {
            "id": request_id,
            "ok": True,
            "seed": query.seed,
            "k": query.k,
            "top": [[int(node), float(score)] for node, score in result.top_k()],
            "latency_ms": latency_ms,
        }
        if ctx is not None:
            response["trace_id"] = ctx.trace_id
        return response

def build_parser() -> argparse.ArgumentParser:
    """The server CLI's argument parser (the shared serving flag surface).

    Both transports' CLIs — and :class:`~repro.serving.replica.ReplicaSet`,
    which spawns them — share one flag set, installed by
    :func:`repro.serving.frontend.config.add_serving_arguments`.
    """
    return build_serving_parser(__doc__, default_port=7071)


def build_frontend(args):
    """Construct the (engine, policy, admission) triple the CLI serves.

    Thin adapter kept for callers holding a parsed ``argparse.Namespace``
    (tests, studies); the assembly itself lives in
    :func:`repro.serving.frontend.config.build_frontend`, shared with the
    HTTP CLI and the replica supervisor.  Accepts a :class:`ServingConfig`
    directly too.
    """
    if not isinstance(args, ServingConfig):
        args = ServingConfig.from_args(args)
    return _build_frontend(args)


def write_ready_file(path: str, host: str, port: int, **extra: object) -> None:
    """Atomically publish a server's readiness record.

    The record carries the bound address, pid, protocol version and
    capabilities; the replica supervisor polls for it instead of parsing
    the child's stdout.  Written to a temp name then ``os.replace``d so a
    reader can never observe a half-written JSON document.
    """
    import os

    record = {
        "host": host,
        "port": port,
        "pid": os.getpid(),
        "proto": PROTOCOL_VERSION,
        "capabilities": list(CAPABILITIES),
        **extra,
    }
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle)
    os.replace(tmp_path, path)


def install_drain_signal_handler(server) -> None:
    """Wire ``SIGTERM`` to a graceful drain of ``server`` (best effort).

    On platforms without ``add_signal_handler`` (Windows event loops) this
    is a no-op — operators there use the protocol-level drain instead
    (``{"op": "drain"}`` over TCP, ``POST /admin/drain`` over HTTP).
    """
    import signal

    loop = asyncio.get_running_loop()

    def trigger() -> None:
        print("SIGTERM: draining (in-flight queries will complete)")
        asyncio.ensure_future(server.drain())

    try:
        loop.add_signal_handler(signal.SIGTERM, trigger)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
        pass


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - blocks serving
    """Command-line entry point: serve a dataset until drained/interrupted."""
    from repro.serving.frontend.recorder import WorkloadRecorder
    from repro.serving.frontend.request_log import configure_logging

    args = build_parser().parse_args(argv)
    configure_logging(args.log_level, json_mode=args.log_json)
    engine, policy, admission = build_frontend(args)
    recorder = WorkloadRecorder() if args.record else None

    async def serve() -> None:
        async with MicroBatcher(engine, policy, admission) as batcher:
            server = AsyncQueryServer(
                batcher, args.host, args.port, recorder=recorder
            )
            host, port = await server.start()
            if getattr(args, "ready_file", None):
                write_ready_file(
                    args.ready_file,
                    host,
                    port,
                    transport="tcp",
                    dataset=args.dataset,
                    num_shards=args.num_shards,
                )
            install_drain_signal_handler(server)
            print(
                f"serving {engine.solver.graph.name} on {host}:{port} "
                f"(backend {engine.backend.name}, policy {policy.label}, "
                f"max_pending {admission.max_pending})"
            )
            try:
                # Ends via CancelledError when a drain (SIGTERM or the
                # protocol op) closes the listener.
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                # Idempotent: completes any in-flight queries on every exit
                # path before the batcher shuts down.
                await server.drain()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        engine.close()
        if recorder is not None and args.record:
            count = recorder.save(args.record)
            print(f"recorded {count} queries to {args.record}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
