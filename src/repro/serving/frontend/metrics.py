"""Prometheus text-exposition rendering of the serving stats tree.

A server nobody can observe is a server nobody can operate.  The serving
stack already measures everything that matters — admission shed/deadline
counters and end-to-end latency percentiles
(:class:`~repro.serving.frontend.admission.AdmissionStats`), batcher
coalescing/dedup counters
(:class:`~repro.serving.frontend.batcher.BatcherStats`), engine compute
latency (:class:`~repro.serving.engine.EngineStats`), and cache/shard
counters (:class:`~repro.serving.cache.CacheStats`,
:class:`~repro.serving.sharding.RouterStats`) — this module just renders
one consistent snapshot of that tree in the Prometheus text exposition
format (version 0.0.4), so ``GET /metrics`` works with any standard
scraper.

Conventions follow the Prometheus guidelines: lifetime totals are
``_total`` counters, live state (in-flight queries, cache bytes) is gauges,
latency distributions are summaries with ``quantile`` labels plus ``_sum``
and ``_count``.  Cache families carry a ``cache`` label with three values —
``combined`` (everything the serving stack scored: extraction caches plus
the stage-one result cache, exactly ``EngineStats.cache``), ``result`` (the
stage-one result cache alone) and ``subgraph`` (combined minus result: the
extraction caches) — so dashboards can plot sub-graph and result-cache hit
rates independently.

:func:`parse_prometheus_text` is the matching validating parser.  It exists
so tests and the CI scrape smoke *prove* the output is well-formed instead
of eyeballing it; it is strict about the bits scrapers are strict about
(TYPE'd families, sample syntax, label escaping).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.serving.cache import CacheStats
from repro.serving.frontend.batcher import BatcherStats
from repro.serving.telemetry import LatencySnapshot

__all__ = [
    "render_prometheus",
    "parse_prometheus_text",
    "PrometheusScrape",
]

#: Prefix of every metric family this module emits.
METRIC_PREFIX = "repro"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Format a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, bool):  # defensive: bools are ints in Python
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if math.isinf(as_float):
        return "+Inf" if as_float > 0 else "-Inf"
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class _Writer:
    """Accumulates HELP/TYPE headers and samples for one exposition."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def sample(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label_value(str(val))}"'
                for key, val in labels.items()
            )
            self._lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
        else:
            self._lines.append(f"{name} {_format_value(value)}")

    def counter(
        self,
        name: str,
        value: float,
        help_text: str,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.family(name, "counter", help_text)
        self.sample(name, value, labels)

    def gauge(
        self,
        name: str,
        value: float,
        help_text: str,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.family(name, "gauge", help_text)
        self.sample(name, value, labels)

    def summary(
        self, name: str, snapshot: LatencySnapshot, help_text: str
    ) -> None:
        """A latency summary: p50/p95/p99 quantiles plus ``_sum``/``_count``."""
        self.family(name, "summary", help_text)
        for quantile, value in (
            ("0.5", snapshot.p50_seconds),
            ("0.95", snapshot.p95_seconds),
            ("0.99", snapshot.p99_seconds),
        ):
            self.sample(name, value, {"quantile": quantile})
        self.sample(f"{name}_sum", snapshot.mean_seconds * snapshot.count)
        self.sample(f"{name}_count", snapshot.count)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _cache_difference(combined: CacheStats, result: CacheStats) -> CacheStats:
    """``combined - result`` counter-wise (clamped at zero, defensively)."""
    return CacheStats(
        hits=max(0, combined.hits - result.hits),
        misses=max(0, combined.misses - result.misses),
        evictions=max(0, combined.evictions - result.evictions),
        rejected=max(0, combined.rejected - result.rejected),
        expired=max(0, combined.expired - result.expired),
        current_bytes=max(0, combined.current_bytes - result.current_bytes),
        num_entries=max(0, combined.num_entries - result.num_entries),
    )


def _cache_families(writer: _Writer, caches: Dict[str, CacheStats]) -> None:
    """Emit the labelled cache families for every present cache tier."""
    p = METRIC_PREFIX
    families = [
        (f"{p}_cache_hits_total", "counter", "Cache lookups served from the cache.", lambda s: s.hits),
        (f"{p}_cache_misses_total", "counter", "Cache lookups that had to compute.", lambda s: s.misses),
        (f"{p}_cache_evictions_total", "counter", "Entries evicted under byte-budget pressure.", lambda s: s.evictions),
        (f"{p}_cache_rejected_total", "counter", "Entries larger than the whole budget, never cached.", lambda s: s.rejected),
        (f"{p}_cache_expired_total", "counter", "Entries dropped by TTL expiry.", lambda s: s.expired),
        (f"{p}_cache_bytes", "gauge", "Bytes currently retained.", lambda s: s.current_bytes),
        (f"{p}_cache_entries", "gauge", "Entries currently retained.", lambda s: s.num_entries),
        (f"{p}_cache_hit_ratio", "gauge", "Lifetime hit ratio (hits / lookups; 0 before traffic).", lambda s: s.hit_rate),
    ]
    for name, kind, help_text, getter in families:
        writer.family(name, kind, help_text)
        for tier, stats in caches.items():
            writer.sample(name, getter(stats), {"cache": tier})


def render_prometheus(
    stats: BatcherStats,
    draining: bool = False,
    info: Optional[Mapping[str, str]] = None,
) -> str:
    """Render one stats snapshot as Prometheus text exposition (0.0.4).

    Parameters
    ----------
    stats:
        A :meth:`MicroBatcher.stats` snapshot (nests admission and engine).
    draining:
        The server's drain flag (``repro_server_draining`` gauge) so
        dashboards and load balancers can see a drain in progress.
    info:
        Static labels (backend, kernel, policy, dataset...) emitted once on
        the ``repro_server_info`` gauge, the conventional info-metric
        pattern.
    """
    p = METRIC_PREFIX
    admission = stats.admission
    engine = stats.engine
    writer = _Writer()

    writer.gauge(
        f"{p}_server_info",
        1,
        "Static server configuration as labels; value is always 1.",
        dict(info) if info else {"policy": stats.policy.label},
    )
    writer.gauge(
        f"{p}_server_draining",
        1 if draining else 0,
        "1 while a graceful drain is in progress, else 0.",
    )

    # ------------------------------------------------------------------
    # Admission: the query-outcome ledger and the end-to-end latency.
    # ------------------------------------------------------------------
    writer.counter(f"{p}_queries_offered_total", admission.offered, "Queries presented to admission control.")
    writer.counter(f"{p}_queries_admitted_total", admission.admitted, "Queries admitted into the serving queue.")
    writer.counter(f"{p}_queries_shed_total", admission.shed, "Queries refused because the admission queue was full.")
    writer.counter(f"{p}_queries_completed_total", admission.completed, "Queries answered with a result.")
    writer.counter(f"{p}_queries_deadline_expired_total", admission.expired, "Admitted queries whose deadline passed before delivery.")
    writer.counter(f"{p}_queries_failed_total", admission.failed, "Admitted queries failed by an engine error.")
    writer.counter(f"{p}_queries_cancelled_total", admission.cancelled, "Admitted queries whose caller gave up.")
    writer.gauge(f"{p}_inflight_queries", admission.pending, "Admitted-but-unanswered queries right now.")
    writer.gauge(f"{p}_admission_capacity", admission.capacity, "Configured bound on in-flight queries (max_pending).")
    writer.summary(
        f"{p}_request_latency_seconds",
        admission.latency,
        "End-to-end latency of completed queries (admission to delivery).",
    )

    # ------------------------------------------------------------------
    # Batcher: coalescing and dedup effectiveness.
    # ------------------------------------------------------------------
    writer.counter(f"{p}_batches_total", stats.batches, "Engine batches the scheduler executed.")
    writer.counter(f"{p}_batched_queries_total", stats.batched_queries, "Logical queries delivered through batches (before dedup).")
    writer.counter(f"{p}_unique_queries_executed_total", stats.unique_executed, "Queries actually handed to the engine (after dedup).")
    writer.counter(f"{p}_dedup_hits_total", stats.dedup_hits, "Waiters served by another in-flight waiter's computation.")
    writer.gauge(f"{p}_mean_batch_size", stats.mean_batch_size, "Mean logical queries per executed batch.")

    # ------------------------------------------------------------------
    # Engine: compute-side counters and latency.
    # ------------------------------------------------------------------
    writer.counter(f"{p}_engine_queries_served_total", engine.queries_served, "Queries the engine computed.")
    writer.counter(f"{p}_engine_batches_total", engine.batches, "Batches the engine computed.")
    writer.counter(f"{p}_engine_busy_seconds_total", engine.wall_seconds, "Wall-clock seconds spent inside solve_batch.")
    if engine.latency is not None:
        writer.summary(
            f"{p}_engine_latency_seconds",
            engine.latency,
            "Per-query compute latency inside the engine.",
        )

    # ------------------------------------------------------------------
    # Caches: combined / subgraph / result tiers, labelled.
    # ------------------------------------------------------------------
    caches: Dict[str, CacheStats] = {}
    if engine.cache is not None:
        caches["combined"] = engine.cache
        if engine.result_cache is not None:
            caches["subgraph"] = _cache_difference(
                engine.cache, engine.result_cache
            )
            caches["result"] = engine.result_cache
        else:
            caches["subgraph"] = engine.cache
    elif engine.result_cache is not None:
        caches["combined"] = engine.result_cache
        caches["result"] = engine.result_cache
    if caches:
        _cache_families(writer, caches)

    # ------------------------------------------------------------------
    # Tracing: sampling/span counters, when a tracer is attached.
    # ------------------------------------------------------------------
    tracing = engine.tracing
    if tracing is not None:
        writer.counter(
            f"{p}_traces_started_total",
            tracing.started,
            "Queries that reached the tracer's sampling decision.",
        )
        writer.counter(
            f"{p}_traces_sampled_total",
            tracing.sampled,
            "Queries selected for tracing (locally sampled or forced by traceparent).",
        )
        writer.counter(
            f"{p}_traces_finished_total",
            tracing.finished,
            "Sampled traces finished and recorded in the ring.",
        )
        writer.counter(
            f"{p}_trace_spans_total",
            tracing.spans,
            "Spans recorded across all finished traces.",
        )
        writer.counter(
            f"{p}_slow_traces_total",
            tracing.slow_traces,
            "Finished traces over the slow-query threshold.",
        )
        writer.counter(
            f"{p}_traces_dropped_total",
            tracing.dropped,
            "Finished traces evicted from the in-memory ring.",
        )
        writer.gauge(
            f"{p}_trace_sample_rate",
            tracing.sample_rate,
            "Configured probability of tracing a query (hot-reloadable).",
        )

    # ------------------------------------------------------------------
    # Sharding: router counters, when serving a partitioned graph.
    # ------------------------------------------------------------------
    router = engine.router
    if router is not None:
        writer.gauge(f"{p}_shards", router.num_shards, "Shards the router serves.")
        writer.counter(
            f"{p}_shard_local_extractions_total",
            router.local_extractions,
            "Extractions served within a shard's halo.",
        )
        writer.counter(
            f"{p}_shard_fallback_extractions_total",
            router.fallback_extractions,
            "Extractions past the halo, served by the host graph.",
        )
        writer.gauge(
            f"{p}_shard_fallback_ratio",
            router.fallback_rate,
            "Fraction of extractions that fell back to the host graph.",
        )

    return writer.render()


# ----------------------------------------------------------------------
# Parsing (for tests and scrape smokes)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
_VALID_TYPES = frozenset(
    {"counter", "gauge", "summary", "histogram", "untyped"}
)

#: A parsed sample key: the metric name and its sorted label pairs.
SampleKey = Tuple[str, Tuple[Tuple[str, str], ...]]


@dataclass
class PrometheusScrape:
    """A parsed exposition: family types plus every sample's value.

    ``samples`` maps ``(name, sorted label items)`` to the value;
    :meth:`value` is the ergonomic accessor tests use.
    """

    types: Dict[str, str]
    samples: Dict[SampleKey, float]

    def value(self, name: str, **labels: str) -> float:
        """The sample's value; raises ``KeyError`` when absent."""
        key = (name, tuple(sorted(labels.items())))
        return self.samples[key]

    def family_samples(self, name: str) -> Dict[SampleKey, float]:
        """Every sample of one family (including ``_sum``/``_count``)."""
        return {
            key: value
            for key, value in self.samples.items()
            if key[0] == name or key[0].startswith(f"{name}_")
        }

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self.samples)


def _unescape_label_value(value: str) -> str:
    # Decoded with a left-to-right scan: chained str.replace mis-handles
    # adjacent escapes (an escaped backslash followed by a literal ``n``,
    # ``\\n``, must decode to ``\`` + ``n`` — not swallow the pair as a
    # newline escape).
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_prometheus_text(text: str) -> PrometheusScrape:
    """Parse (and validate) a text exposition produced by a ``/metrics``.

    Raises ``ValueError`` on malformed lines, samples without a ``# TYPE``
    header, duplicate samples, or non-numeric values — the failure modes a
    real scraper would reject.
    """
    types: Dict[str, str] = {}
    samples: Dict[SampleKey, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                raise ValueError(f"line {lineno}: malformed TYPE line: {raw!r}")
            if parts[2] in types:
                raise ValueError(
                    f"line {lineno}: duplicate TYPE for family {parts[2]!r}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line: {raw!r}")
        name = match.group("name")
        labels: List[Tuple[str, str]] = []
        raw_labels = match.group("labels")
        if raw_labels:
            # Consume the label block left to right; anything the label
            # grammar does not account for is a malformed line.
            remainder = raw_labels.strip()
            while remainder:
                label_match = _LABEL_RE.match(remainder)
                if label_match is None:
                    raise ValueError(
                        f"line {lineno}: malformed labels: {raw_labels!r}"
                    )
                labels.append(
                    (
                        label_match.group("key"),
                        _unescape_label_value(label_match.group("value")),
                    )
                )
                remainder = remainder[label_match.end() :].lstrip()
                if remainder.startswith(","):
                    remainder = remainder[1:].lstrip()
        try:
            if match.group("value") in ("+Inf", "-Inf", "NaN"):
                value = float(match.group("value").replace("Inf", "inf"))
            else:
                value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            ) from exc
        family = re.sub(r"_(sum|count|bucket)$", "", name)
        if name not in types and family not in types:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE header"
            )
        key: SampleKey = (name, tuple(sorted(labels)))
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value
    return PrometheusScrape(types=types, samples=samples)
