"""An HTTP/1.1 + JSON front door over the same micro-batcher as TCP.

The JSON-lines TCP protocol (:mod:`repro.serving.frontend.server`) is the
low-overhead path for purpose-built clients; this module is the *operable*
one — anything that speaks HTTP (curl, load balancers, Prometheus) can talk
to it, and both transports can serve the **same**
:class:`~repro.serving.frontend.batcher.MicroBatcher` simultaneously, so
queries arriving over HTTP coalesce into the same batches as TCP traffic.

Endpoints::

    POST /query         {"seed": 42, "k": 100, "alpha": 0.85, "length": 6,
                         "timeout_ms": 250}
                        -> 200 {"ok": true, "top": [[node, score], ...],
                                "latency_ms": 3.1}
                        -> 400 bad request, 429 shed (overload),
                           504 deadline exceeded, 500 engine failure —
                           every rejection is a JSON body with
                           {"ok": false, "error": <code>, "message": ...}
    GET  /healthz       200 while serving, 503 while draining (load
                        balancers stop routing before the listener closes)
    GET  /stats         the full nested stats snapshot as JSON
    GET  /metrics       Prometheus text exposition (0.0.4) of the same
                        counters (repro.serving.frontend.metrics)
    POST /admin/drain   begin a graceful drain; 202, in-flight queries
                        complete, the process's serve loop exits
    POST /admin/reload  hot-apply config overrides (max_pending, batch
                        policy, cache budgets, trace sampling) without
                        dropping queries; body = the override object,
                        response echoes the effective config
                        (repro.serving.frontend.ops)
    GET  /debug/traces  the tracer's ring of finished span trees as JSON
                        (404 unless the server runs with --trace-sample)
    GET  /debug/traces/perfetto
                        the same ring in Chrome trace-event format — save
                        the body and load it in Perfetto or chrome://tracing

``POST /query`` honours a W3C ``traceparent`` request header: with a tracer
configured, a sampled-flagged header forces the query to record a span tree
under the supplied trace id, echoed back as ``trace_id`` in the response
body (see :mod:`repro.serving.tracing`).

The implementation is deliberately stdlib-asyncio-only (no aiohttp):
HTTP/1.1 with ``Content-Length`` bodies and keep-alive, one request at a
time per connection.  Concurrency comes from many connections — use
:class:`HttpClientPool` — which is also how real HTTP load arrives.

Run it from the command line::

    PYTHONPATH=src python -m repro.serving.frontend.http \
        --dataset G1 --port 7080 --backend thread:4 --max-batch 8
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.serving.frontend.admission import QueryRejectedError
from repro.serving.frontend.batcher import MicroBatcher
from repro.serving.frontend.metrics import render_prometheus
from repro.serving.frontend.ops import apply_graph_update, apply_reload
from repro.serving.frontend.protocol import PROTOCOL_VERSION
from repro.serving.frontend.request_log import log_request
from repro.serving.frontend.server import parse_query_request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.serving.frontend.recorder import WorkloadRecorder

__all__ = [
    "BaseHttpServer",
    "HttpQueryServer",
    "HttpClient",
    "HttpClientPool",
    "main",
]

#: Largest request body the server will read (1 MiB is generous: a query
#: is ~100 bytes, a reload config ~200).
DEFAULT_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Protocol error codes -> HTTP status.  The JSON bodies carry the same
#: ``error`` codes as the TCP protocol, so clients can switch transports
#: without relearning the failure taxonomy.
_ERROR_STATUS = {
    "bad_request": 400,
    "shed": 429,
    "deadline": 504,
    "internal": 500,
}


class _BadRequestLine(Exception):
    """The request line or headers were not parseable HTTP."""


class BaseHttpServer:
    """The transport shell shared by every HTTP front door.

    Owns everything about *being an HTTP/1.1 server* — the listener
    lifecycle, per-connection request loop, request-line/header parsing,
    ``Content-Length`` framing with the body-size cap, keep-alive handling,
    response serialisation (every response carries an ``X-Repro-Proto``
    header) and the graceful-drain contract — and nothing about what the
    endpoints *mean*.  Subclasses implement :meth:`_route`:
    :class:`HttpQueryServer` answers from a micro-batcher, the replica
    router (:mod:`repro.serving.frontend.router`) forwards to a fleet.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        if max_body_bytes <= 0:
            raise ValueError(
                f"max_body_bytes must be > 0, got {max_body_bytes}"
            )
        self._host = host
        self._port = port
        self._max_body_bytes = max_body_bytes
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_event: Optional[asyncio.Event] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        received: float,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, object, str]:
        """Dispatch one request; returns ``(status, payload, content_type)``.

        ``payload`` is a dict/list (JSON-encoded on the way out) or a
        pre-rendered string.
        """
        raise NotImplementedError

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has begun (no new work is accepted)."""
        return self._drain_event is not None and self._drain_event.is_set()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._drain_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting connections and close the listener (idempotent)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def drain(self) -> None:
        """Gracefully wind the server down: stop accepting, finish in-flight.

        Same contract as the TCP server's drain — **no admitted request is
        ever dropped**: the listener closes, every connection finishes the
        request it is handling (and flushes the response), idle keep-alive
        connections close, and :meth:`drain` returns.  Whatever answers the
        requests (a batcher, a replica fleet) is *not* stopped here — the
        caller owns it and may be draining several transports.
        """
        if self._drain_event is None:
            return  # never started: nothing in flight by construction
        self._drain_event.set()
        await self.stop()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "BaseHttpServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
        assert self._drain_event is not None
        drain_wait = asyncio.ensure_future(self._drain_event.wait())
        try:
            # Requests on one connection are handled sequentially (HTTP/1.1
            # without pipelining — what every real client sends).  The drain
            # check sits *between* requests: a request already received
            # always gets its response before the connection closes.
            while not drain_wait.done():
                read = asyncio.ensure_future(reader.readline())
                await asyncio.wait(
                    {read, drain_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():
                    # Drain began while idle on a keep-alive connection:
                    # abandon the read and close.
                    read.cancel()
                    try:
                        await read
                    except (asyncio.CancelledError, ValueError, OSError):
                        pass
                    break
                try:
                    request_line = read.result()
                except ValueError:
                    # Request line overran the stream buffer: not HTTP we
                    # are willing to parse.
                    await self._respond_error(
                        writer, 400, "request line too long", close=True
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not request_line.strip():
                    if not request_line:
                        break  # EOF: client closed the connection
                    continue  # stray blank line between requests: tolerate
                keep_alive = await self._handle_request(
                    reader, writer, request_line
                )
                if not keep_alive:
                    break
        finally:
            if not drain_wait.done():
                drain_wait.cancel()
                try:
                    await drain_wait
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if conn_task is not None:
                self._conn_tasks.discard(conn_task)

    async def _handle_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_line: bytes,
    ) -> bool:
        """Parse and answer one request; returns whether to keep the
        connection open."""
        # The latency clock starts at request receipt: header/body/JSON
        # parse time is part of what the client observes, so it is part of
        # what the server reports.
        received = asyncio.get_running_loop().time()
        try:
            method, target, version = self._parse_request_line(request_line)
            headers = await self._read_headers(reader)
        except _BadRequestLine as exc:
            await self._respond_error(writer, 400, str(exc), close=True)
            return False
        except (ConnectionError, OSError):
            return False

        keep_alive = version == "HTTP/1.1"
        connection = headers.get("connection", "").lower()
        if connection == "close":
            keep_alive = False
        elif connection == "keep-alive":
            keep_alive = True

        if "transfer-encoding" in headers:
            await self._respond_error(
                writer,
                501,
                "chunked bodies are not supported; send Content-Length",
                close=True,
            )
            return False
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await self._respond_error(
                writer, 400, "malformed Content-Length", close=True
            )
            return False
        if length < 0:
            await self._respond_error(
                writer, 400, "malformed Content-Length", close=True
            )
            return False
        if length > self._max_body_bytes:
            # Refuse before reading: the connection closes because the
            # unread body would desynchronise the stream.
            await self._respond_error(
                writer,
                413,
                f"body of {length} bytes exceeds the "
                f"{self._max_body_bytes}-byte limit",
                close=True,
            )
            return False
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return False  # client disconnected mid-body

        status, payload, content_type = await self._route(
            method, target, body, received, headers
        )
        sent = await self._respond(
            writer,
            status,
            payload,
            content_type=content_type,
            close=not keep_alive,
        )
        return keep_alive and sent

    def _parse_request_line(
        self, request_line: bytes
    ) -> Tuple[str, str, str]:
        try:
            decoded = request_line.decode("ascii").strip()
        except UnicodeDecodeError as exc:
            raise _BadRequestLine("request line is not ASCII") from exc
        parts = decoded.split()
        if len(parts) != 3:
            raise _BadRequestLine(f"malformed request line: {decoded!r}")
        method, target, version = parts
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise _BadRequestLine(f"unsupported HTTP version {version!r}")
        return method.upper(), target, version

    async def _read_headers(
        self, reader: asyncio.StreamReader, max_headers: int = 100
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        for _ in range(max_headers):
            try:
                line = await reader.readline()
            except ValueError as exc:
                raise _BadRequestLine("header line too long") from exc
            if line in (b"\r\n", b"\n", b""):
                return headers
            try:
                name, _, value = line.decode("latin-1").partition(":")
            except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
                raise _BadRequestLine("undecodable header line") from exc
            if not _:
                raise _BadRequestLine(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        raise _BadRequestLine(f"more than {max_headers} header lines")

    # ------------------------------------------------------------------
    def _parse_json_body(self, body: bytes) -> dict:
        if not body:
            raise ValueError("request body must be a JSON object, got nothing")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ValueError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError(
                f"request body must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        return payload

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        content_type: str = "application/json",
        close: bool = False,
    ) -> bool:
        """Serialise and send one response; returns False if the client
        went away (nothing to deliver the answer to)."""
        if isinstance(payload, dict) and "ok" in payload:
            # Every ok-envelope answer carries the protocol version so
            # clients can detect mixed-version fleets (document payloads
            # like /stats or perfetto keep their exact shapes).
            payload.setdefault("proto", PROTOCOL_VERSION)
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload).encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:  # pragma: no cover - handlers only return dict/str
            body = bytes(payload)
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"X-Repro-Proto: {PROTOCOL_VERSION}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _respond_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str,
        close: bool = False,
    ) -> bool:
        return await self._respond(
            writer,
            status,
            {"ok": False, "error": "bad_request" if status == 400 else "error",
             "message": message},
            close=close,
        )


class HttpQueryServer(BaseHttpServer):
    """Serve a :class:`MicroBatcher` over HTTP/1.1 with JSON bodies.

    Parameters
    ----------
    batcher:
        The started (or about-to-be-started) micro-batcher answering
        queries — share one instance with an
        :class:`~repro.serving.frontend.server.AsyncQueryServer` to serve
        both transports from the same batches.
    host, port:
        Bind address; port 0 picks a free port (read it from
        :meth:`start`'s return value).
    max_body_bytes:
        Bound on request bodies; larger ones are refused with 413 before
        being read.
    recorder:
        Optional workload recorder; every accepted ``/query`` is captured
        with its arrival offset.
    info:
        Static labels for the ``repro_server_info`` metric (backend,
        kernel, dataset...).  Defaults to the live backend name and batch
        policy; a ``proto`` label always rides along.
    """

    def __init__(
        self,
        batcher: MicroBatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        recorder: Optional["WorkloadRecorder"] = None,
        info: Optional[Mapping[str, str]] = None,
    ) -> None:
        super().__init__(host=host, port=port, max_body_bytes=max_body_bytes)
        self._batcher = batcher
        self._recorder = recorder
        self._info = dict(info) if info is not None else None

    @property
    def batcher(self) -> MicroBatcher:
        """The micro-batcher answering this server's queries."""
        return self._batcher

    @property
    def recorder(self) -> Optional["WorkloadRecorder"]:
        """The workload recorder capturing query requests (``None`` = off)."""
        return self._recorder

    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        received: float,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, object, str]:
        """Dispatch to a handler; returns ``(status, payload, content_type)``.

        ``payload`` is a dict (JSON-encoded on the way out) except for
        ``/metrics``, which returns the exposition text directly.
        """
        headers = headers or {}
        path = target.split("?", 1)[0]
        json_type = "application/json"
        routes = {
            "/query": "POST",
            "/healthz": "GET",
            "/stats": "GET",
            "/metrics": "GET",
            "/admin/drain": "POST",
            "/admin/reload": "POST",
            "/admin/update": "POST",
            "/debug/traces": "GET",
            "/debug/traces/perfetto": "GET",
        }
        if path not in routes:
            return (
                404,
                {"ok": False, "error": "not_found", "message": f"no route {path!r}"},
                json_type,
            )
        if method != routes[path] and not (
            method == "HEAD" and routes[path] == "GET"
        ):
            return (
                405,
                {
                    "ok": False,
                    "error": "method_not_allowed",
                    "message": f"{path} expects {routes[path]}, got {method}",
                },
                json_type,
            )

        if path == "/healthz":
            if self.draining:
                return 503, {"ok": False, "status": "draining"}, json_type
            return 200, {"ok": True, "status": "serving"}, json_type
        if path == "/stats":
            return 200, self._batcher.stats().as_dict(), json_type
        if path == "/metrics":
            text = render_prometheus(
                self._batcher.stats(),
                draining=self.draining,
                info=self._metrics_info(),
            )
            return 200, text, "text/plain; version=0.0.4; charset=utf-8"
        if path == "/admin/drain":
            # Acknowledge first, drain as a background task: drain() waits
            # for every connection handler — including the one carrying
            # this request — so awaiting it here would deadlock.
            asyncio.ensure_future(self.drain())
            return 202, {"ok": True, "draining": True}, json_type
        if path == "/admin/reload":
            try:
                overrides = self._parse_json_body(body)
                outcome = apply_reload(self._batcher, overrides)
            except ValueError as exc:
                return (
                    400,
                    {"ok": False, "error": "bad_request", "message": str(exc)},
                    json_type,
                )
            return 200, {"ok": True, **outcome}, json_type
        if path == "/admin/update":
            loop = asyncio.get_running_loop()
            try:
                request = self._parse_json_body(body)
                # The writer barrier blocks until in-flight batches finish —
                # run it off the event loop, or it would deadlock against
                # the very batch the loop is completing.
                outcome = await loop.run_in_executor(
                    None,
                    apply_graph_update,
                    self._batcher,
                    request.get("ops", []),
                )
            except ValueError as exc:
                return (
                    400,
                    {"ok": False, "error": "bad_request", "message": str(exc)},
                    json_type,
                )
            return 200, {"ok": True, **outcome}, json_type
        if path in ("/debug/traces", "/debug/traces/perfetto"):
            tracer = self._batcher.engine.tracer
            if tracer is None:
                return (
                    404,
                    {
                        "ok": False,
                        "error": "not_found",
                        "message": (
                            "tracing is disabled; start the server with "
                            "--trace-sample > 0 (or reload trace_sample)"
                        ),
                    },
                    json_type,
                )
            if path.endswith("/perfetto"):
                return 200, tracer.perfetto(), json_type
            return (
                200,
                {
                    "ok": True,
                    "stats": tracer.stats().as_dict(),
                    "traces": tracer.traces(),
                },
                json_type,
            )
        # path == "/query"
        response = await self._answer_query(body, received, headers)
        status = 200 if response.get("ok") else _ERROR_STATUS.get(
            str(response.get("error")), 500
        )
        return status, response, json_type

    def _metrics_info(self) -> Dict[str, str]:
        info = (
            dict(self._info)
            if self._info is not None
            else {
                "backend": self._batcher.engine.backend.name,
                "policy": self._batcher.policy.label,
            }
        )
        # The proto label always rides along so a scrape of a mixed-version
        # fleet shows the skew (the replica router aggregates these).
        info.setdefault("proto", str(PROTOCOL_VERSION))
        return info

    async def _answer_query(
        self, body: bytes, received: float, headers: Dict[str, str]
    ) -> dict:
        """The ``POST /query`` handler: same semantics as the TCP query op."""
        loop = asyncio.get_running_loop()
        request_id = None
        try:
            request = self._parse_json_body(body)
            request_id = request.get("id")
            query, timeout_ms = parse_query_request(
                request, self._batcher.engine.solver.graph.num_nodes
            )
        except (ValueError, TypeError, KeyError) as exc:
            return {
                "id": request_id,
                "ok": False,
                "error": "bad_request",
                "message": str(exc),
            }

        tracer = self._batcher.engine.tracer
        ctx = None
        if tracer is not None:
            ctx = tracer.start_trace(
                "request",
                traceparent=headers.get("traceparent"),
                transport="http",
                seed=query.seed,
            )
        if self._recorder is not None:
            self._recorder.record_query(query, timeout_ms=timeout_ms)
        try:
            result = await self._batcher.submit(
                query, timeout_ms=timeout_ms, trace=ctx
            )
        except QueryRejectedError as exc:
            latency_ms = (loop.time() - received) * 1e3
            if ctx is not None:
                ctx.finish(status=exc.code, latency_ms=latency_ms)
            log_request(
                "http",
                exc.code,
                latency_ms=latency_ms,
                request_id=request_id,
                seed=query.seed,
                k=query.k,
                trace_id=None if ctx is None else ctx.trace_id,
            )
            return {
                "id": request_id,
                "ok": False,
                "error": exc.code,
                "message": str(exc),
            }
        except Exception as exc:  # engine failure: report, keep serving
            latency_ms = (loop.time() - received) * 1e3
            if ctx is not None:
                ctx.finish(status="internal", latency_ms=latency_ms)
            log_request(
                "http",
                "internal",
                latency_ms=latency_ms,
                request_id=request_id,
                seed=query.seed,
                k=query.k,
                trace_id=None if ctx is None else ctx.trace_id,
            )
            return {
                "id": request_id,
                "ok": False,
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }
        latency_ms = (loop.time() - received) * 1e3
        if ctx is not None:
            ctx.finish(status="ok", latency_ms=latency_ms)
        serving_meta = result.metadata.get("serving", {})
        log_request(
            "http",
            "ok",
            latency_ms=latency_ms,
            request_id=request_id,
            seed=query.seed,
            k=query.k,
            trace_id=None if ctx is None else ctx.trace_id,
            result_cache=serving_meta.get("result_cache"),
            cache_enabled=serving_meta.get("cache_enabled"),
        )
        response = {
            "id": request_id,
            "ok": True,
            "seed": query.seed,
            "k": query.k,
            "top": [[int(node), float(score)] for node, score in result.top_k()],
            "latency_ms": latency_ms,
        }
        if ctx is not None:
            response["trace_id"] = ctx.trace_id
        return response


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class HttpClient:
    """A minimal asyncio HTTP/1.1 client for one keep-alive connection.

    Just enough HTTP for tests, benchmarks and the soak study: JSON bodies,
    ``Content-Length`` framing, sequential requests.  Not a general client.
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "HttpClient":
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "HttpClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response cycle; returns ``(status, headers, body)``.

        ``body`` may be a dict (sent as JSON), ``bytes`` (sent raw) or
        ``None``.
        """
        if self._reader is None or self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        if isinstance(body, (dict, list)):
            raw = json.dumps(body).encode("utf-8")
        elif body is None:
            raw = b""
        else:
            raw = bytes(body)
        head_lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self._host}:{self._port}",
            f"Content-Length: {len(raw)}",
        ]
        for name, value in (headers or {}).items():
            head_lines.append(f"{name}: {value}")
        request = ("\r\n".join(head_lines) + "\r\n\r\n").encode("ascii") + raw
        self._writer.write(request)
        await self._writer.drain()
        return await self._read_response()

    async def request_json(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, dict]:
        """:meth:`request`, with the response body parsed as JSON."""
        status, _, raw = await self.request(method, path, body, headers=headers)
        return status, json.loads(raw)

    async def query(self, request: dict) -> Tuple[int, dict]:
        """``POST /query`` with ``request`` as the JSON body."""
        return await self.request_json("POST", "/query", request)

    async def _read_response(self) -> Tuple[int, Dict[str, str], bytes]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("ascii").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line == b"":
                # EOF inside the header block is a torn response, not an
                # answer with no headers — surface it as the connection
                # failure it is (json.loads on b"" would mask it).
                raise ConnectionError(
                    "server closed the connection mid-headers"
                )
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, body


class HttpClientPool:
    """A fixed-size pool of keep-alive :class:`HttpClient` connections.

    The server handles one request at a time per connection, so driving it
    hard needs many connections — exactly like production HTTP traffic.
    The pool checks a connection out per request and replaces broken ones
    transparently.
    """

    def __init__(self, host: str, port: int, size: int = 8) -> None:
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        self._host = host
        self._port = port
        self._size = size
        self._free: "asyncio.Queue[HttpClient]" = asyncio.Queue()
        self._clients: List[HttpClient] = []

    async def connect(self) -> "HttpClientPool":
        for _ in range(self._size):
            client = await HttpClient(self._host, self._port).connect()
            self._clients.append(client)
            self._free.put_nowait(client)
        return self

    async def close(self) -> None:
        for client in self._clients:
            await client.close()
        self._clients.clear()
        while not self._free.empty():
            self._free.get_nowait()

    async def __aenter__(self) -> "HttpClientPool":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.close()

    async def request_json(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, dict]:
        """One JSON request on the next free connection (reconnecting a
        broken one once)."""
        client = await self._free.get()
        try:
            try:
                return await client.request_json(method, path, body, headers)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                # The connection died (e.g. an earlier Connection: close);
                # replace it and retry once.
                await client.close()
                await client.connect()
                return await client.request_json(method, path, body, headers)
        finally:
            self._free.put_nowait(client)

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One raw request on the next free connection (same reconnect
        semantics as :meth:`request_json`); for non-JSON endpoints like
        ``/metrics``."""
        client = await self._free.get()
        try:
            try:
                return await client.request(method, path, body, headers)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await client.close()
                await client.connect()
                return await client.request(method, path, body, headers)
        finally:
            self._free.put_nowait(client)

    async def query(self, request: dict) -> Tuple[int, dict]:
        """``POST /query`` on the next free connection."""
        return await self.request_json("POST", "/query", request)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - blocks serving
    """Command-line entry point: serve a dataset over HTTP until drained."""
    from repro.serving.frontend.recorder import WorkloadRecorder
    from repro.serving.frontend.request_log import configure_logging
    from repro.serving.frontend.server import (
        build_frontend,
        install_drain_signal_handler,
        write_ready_file,
    )
    from repro.serving.frontend.config import build_serving_parser

    # Keep clear of the TCP default (7071).
    parser = build_serving_parser(__doc__, default_port=7080)
    args = parser.parse_args(argv)
    configure_logging(args.log_level, json_mode=args.log_json)
    engine, policy, admission = build_frontend(args)
    recorder = WorkloadRecorder() if args.record else None

    async def serve() -> None:
        async with MicroBatcher(engine, policy, admission) as batcher:
            server = HttpQueryServer(
                batcher,
                args.host,
                args.port,
                recorder=recorder,
                info={
                    "backend": engine.backend.name,
                    "dataset": engine.solver.graph.name,
                    "policy": policy.label,
                },
            )
            host, port = await server.start()
            if getattr(args, "ready_file", None):
                write_ready_file(
                    args.ready_file,
                    host,
                    port,
                    transport="http",
                    dataset=args.dataset,
                    num_shards=args.num_shards,
                )
            install_drain_signal_handler(server)
            print(
                f"serving {engine.solver.graph.name} on http://{host}:{port} "
                f"(backend {engine.backend.name}, policy {policy.label}, "
                f"max_pending {admission.max_pending})"
            )
            try:
                # Ends via CancelledError when a drain (SIGTERM or
                # POST /admin/drain) closes the listener.
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                # Idempotent: completes any in-flight queries on every
                # exit path before the batcher shuts down.
                await server.drain()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        engine.close()
        if recorder is not None and args.record:
            count = recorder.save(args.record)
            print(f"recorded {count} queries to {args.record}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
