"""Live operations shared by the TCP and HTTP front doors.

A production server cannot restart to change a cache budget, and it cannot
drop in-flight queries to shut down.  This module implements the first half
of that contract — **hot config reload** — as one transport-agnostic
function: :func:`apply_reload` validates a dict of overrides (the JSON body
of ``POST /admin/reload``, or the ``config`` field of the TCP ``reload``
op), then applies them to the running frontend:

* ``max_pending`` — the admission bound
  (:meth:`~repro.serving.frontend.admission.AdmissionController.set_max_pending`);
* ``max_batch_size`` / ``max_wait_ms`` / ``dedup`` — the batching policy
  (:meth:`~repro.serving.frontend.batcher.MicroBatcher.set_policy`; the
  batch being collected finishes under the old policy);
* ``cache_bytes`` / ``result_cache_bytes`` — the engine-level cache budgets
  (``resize``: shrinking evicts LRU entries, growing keeps everything warm);
* ``trace_sample`` — the tracer's sampling probability
  (:meth:`~repro.serving.tracing.Tracer.set_sample_rate`), so an operator
  can turn tracing up on a misbehaving server and back down afterwards
  without a restart.

Validation is all-or-nothing: every override is checked before anything is
applied, so a reload with one bad field changes nothing.  No query is ever
dropped by a reload — budgets evict cache entries, never answers.

Graceful drain, the other half, lives on the servers themselves
(:meth:`~repro.serving.frontend.server.AsyncQueryServer.drain`,
:meth:`~repro.serving.frontend.http.HttpQueryServer.drain`) because it is
about connection lifecycles, which only the transport knows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.serving.frontend.batcher import MicroBatcher

__all__ = [
    "RELOADABLE_KEYS",
    "apply_graph_update",
    "apply_reload",
    "frontend_config",
]

#: The override keys :func:`apply_reload` understands.
RELOADABLE_KEYS = (
    "max_pending",
    "max_batch_size",
    "max_wait_ms",
    "dedup",
    "cache_bytes",
    "result_cache_bytes",
    "trace_sample",
)


def _strict_int(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be a JSON integer, got {value!r}")
    return value


def _strict_number(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a JSON number, got {value!r}")
    return float(value)


def _strict_bool(value: object, name: str) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"{name} must be a JSON boolean, got {value!r}")
    return value


def frontend_config(batcher: MicroBatcher) -> Dict[str, object]:
    """The currently effective reloadable configuration, as one dict.

    The shape mirrors what :func:`apply_reload` accepts, so an operator can
    ``GET`` it (it is embedded in reload responses), tweak a field and
    ``POST`` it back.
    """
    engine = batcher.engine
    return {
        "max_pending": batcher.admission.max_pending,
        "max_batch_size": batcher.policy.max_batch_size,
        "max_wait_ms": batcher.policy.max_wait_ms,
        "dedup": batcher.policy.dedup,
        "cache_bytes": None if engine.cache is None else engine.cache.max_bytes,
        "result_cache_bytes": (
            None if engine.result_cache is None else engine.result_cache.max_bytes
        ),
        "trace_sample": (
            None if engine.tracer is None else engine.tracer.sample_rate
        ),
    }


def apply_reload(
    batcher: MicroBatcher, overrides: Dict[str, object]
) -> Dict[str, object]:
    """Validate and apply a hot-reload override dict; returns the outcome.

    Parameters
    ----------
    batcher:
        The running frontend (its admission controller, policy and engine
        caches are the reload targets).
    overrides:
        A dict of :data:`RELOADABLE_KEYS`.  Unknown keys, wrongly typed
        values and out-of-range values all raise ``ValueError`` **before**
        anything is applied.

    Returns
    -------
    dict
        ``{"applied": [keys...], "evicted": {cache: n, ...},
        "config": {effective config after the reload}}``.

    Raises
    ------
    ValueError
        On any invalid override — including resizing a cache the engine
        does not have (``cache_bytes`` with caching off is a config error
        the operator should hear about, not a silent no-op).
    """
    if not isinstance(overrides, dict):
        raise ValueError(
            f"reload config must be a JSON object, got {type(overrides).__name__}"
        )
    unknown = sorted(set(overrides) - set(RELOADABLE_KEYS))
    if unknown:
        raise ValueError(
            f"unknown reload key(s) {unknown}; reloadable keys are "
            f"{sorted(RELOADABLE_KEYS)}"
        )

    engine = batcher.engine

    # ------------------------------------------------------------------
    # Validate everything first: a reload either applies whole or not at all.
    # ------------------------------------------------------------------
    actions: List = []
    applied: List[str] = []
    evicted: Dict[str, int] = {}

    if "max_pending" in overrides:
        max_pending = _strict_int(overrides["max_pending"], "max_pending")
        if max_pending <= 0:
            raise ValueError(f"max_pending must be > 0, got {max_pending}")
        actions.append(
            lambda: batcher.admission.set_max_pending(max_pending)
        )
        applied.append("max_pending")

    policy_fields: Dict[str, object] = {}
    if "max_batch_size" in overrides:
        size = _strict_int(overrides["max_batch_size"], "max_batch_size")
        if size <= 0:
            raise ValueError(f"max_batch_size must be > 0, got {size}")
        policy_fields["max_batch_size"] = size
        applied.append("max_batch_size")
    if "max_wait_ms" in overrides:
        wait = _strict_number(overrides["max_wait_ms"], "max_wait_ms")
        if wait < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {wait}")
        policy_fields["max_wait_ms"] = wait
        applied.append("max_wait_ms")
    if "dedup" in overrides:
        policy_fields["dedup"] = _strict_bool(overrides["dedup"], "dedup")
        applied.append("dedup")
    if policy_fields:
        new_policy = replace(batcher.policy, **policy_fields)
        actions.append(lambda: batcher.set_policy(new_policy))

    if "cache_bytes" in overrides:
        cache_bytes = _strict_int(overrides["cache_bytes"], "cache_bytes")
        if cache_bytes <= 0:
            raise ValueError(f"cache_bytes must be > 0, got {cache_bytes}")
        if engine.cache is None:
            raise ValueError(
                "cache_bytes: this engine has no sub-graph cache to resize "
                "(started with --no-cache, or a stage-task backend owns the "
                "caches worker-side)"
            )
        cache = engine.cache
        actions.append(
            lambda: evicted.__setitem__("cache", cache.resize(cache_bytes))
        )
        applied.append("cache_bytes")

    if "result_cache_bytes" in overrides:
        result_bytes = _strict_int(
            overrides["result_cache_bytes"], "result_cache_bytes"
        )
        if result_bytes <= 0:
            raise ValueError(
                f"result_cache_bytes must be > 0, got {result_bytes}"
            )
        if engine.result_cache is None:
            raise ValueError(
                "result_cache_bytes: this engine has no stage-one result "
                "cache to resize (disabled at startup)"
            )
        result_cache = engine.result_cache
        actions.append(
            lambda: evicted.__setitem__(
                "result_cache", result_cache.resize(result_bytes)
            )
        )
        applied.append("result_cache_bytes")

    if "trace_sample" in overrides:
        rate = _strict_number(overrides["trace_sample"], "trace_sample")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"trace_sample must be within [0, 1], got {rate}"
            )
        if engine.tracer is None:
            raise ValueError(
                "trace_sample: this engine has no tracer to adjust (start "
                "the server with --trace-sample to attach one)"
            )
        tracer = engine.tracer
        actions.append(lambda: tracer.set_sample_rate(rate))
        applied.append("trace_sample")

    # ------------------------------------------------------------------
    # Apply.  Every action is in-place and non-throwing after validation.
    # ------------------------------------------------------------------
    for action in actions:
        action()

    return {
        "applied": applied,
        "evicted": evicted,
        "config": frontend_config(batcher),
    }


def apply_graph_update(batcher: MicroBatcher, ops: object) -> Dict[str, object]:
    """Apply a streaming edge-update batch through the running frontend.

    The transport-agnostic body of ``POST /admin/update`` and the TCP
    ``update`` op: ``ops`` is the request's edge-op list (dicts like
    ``{"op": "insert", "u": 3, "v": 17}`` straight from JSON), validated and
    applied by :meth:`~repro.serving.engine.QueryEngine.apply_update` under
    the engine's writer barrier.  Invalid batches raise ``ValueError``
    without touching the engine.

    **Blocking**: the writer barrier waits for in-flight batches, so the
    async servers must call this through ``run_in_executor`` — on the event
    loop it would deadlock against the batch the loop is waiting on.
    """
    if not isinstance(ops, list):
        raise ValueError(
            f"update ops must be a JSON array of edge ops, "
            f"got {type(ops).__name__}"
        )
    return batcher.engine.apply_update(ops)
