"""Workload recording and replay: production traces as repeatable benchmarks.

Synthetic workloads (Poisson arrivals over Zipf seeds) are a model; the
traffic that actually melts a server is whatever production sent last
Tuesday.  This module closes that loop:

* :class:`WorkloadRecorder` — attached to a front door (``--record PATH`` on
  the TCP and HTTP server CLIs, or ``recorder=`` on the server classes), it
  captures every *accepted* query with its arrival offset.  Rejected
  requests (bad JSON, out-of-range seeds) are not recorded — a trace must
  replay cleanly.
* :func:`save_trace` / :func:`load_trace` — one JSON object per line, so
  traces diff, concatenate and stream like any other JSONL artifact.
* :func:`replay_trace` — fires the recorded queries at their recorded
  offsets (optionally time-scaled) into a :class:`~repro.serving.frontend.
  batcher.MicroBatcher`, returning per-query outcomes exactly like the
  open-loop studies do, so a recorded trace drops into the E11/E15 analysis
  unchanged.

Offsets are relative to the first recorded query (the idle time before
traffic started is not part of the workload), recorded on a monotonic
clock.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.ppr.base import PPRQuery, PPRResult
from repro.serving.frontend.admission import QueryRejectedError
from repro.serving.frontend.batcher import MicroBatcher

__all__ = [
    "TraceRecord",
    "WorkloadRecorder",
    "save_trace",
    "load_trace",
    "replay_trace",
    "replay_trace_sync",
]


@dataclass(frozen=True)
class TraceRecord:
    """One recorded query: what arrived, and when (relative to the first).

    Attributes
    ----------
    offset_seconds:
        Arrival time relative to the trace's first query (>= 0.0).
    seed, k, alpha, length:
        The query fields, post-validation.
    timeout_ms:
        The client's deadline, when it sent one (replay re-applies it).
    """

    offset_seconds: float
    seed: int
    k: int
    alpha: float
    length: int
    timeout_ms: Optional[float] = None

    def to_query(self) -> PPRQuery:
        """The replayable :class:`~repro.ppr.base.PPRQuery`."""
        return PPRQuery(
            seed=self.seed, k=self.k, alpha=self.alpha, length=self.length
        )

    def as_dict(self) -> dict:
        """Plain-dict form (one JSONL line)."""
        record = {
            "offset_seconds": self.offset_seconds,
            "seed": self.seed,
            "k": self.k,
            "alpha": self.alpha,
            "length": self.length,
        }
        if self.timeout_ms is not None:
            record["timeout_ms"] = self.timeout_ms
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "TraceRecord":
        """Parse one JSONL line's object, validating types strictly."""
        if not isinstance(record, dict):
            raise ValueError(f"trace record must be an object, got {record!r}")
        try:
            offset = float(record["offset_seconds"])
            seed = int(record["seed"])
            k = int(record["k"])
            alpha = float(record["alpha"])
            length = int(record["length"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed trace record {record!r}: {exc}") from exc
        if offset < 0:
            raise ValueError(f"offset_seconds must be >= 0, got {offset}")
        timeout_ms = record.get("timeout_ms")
        if timeout_ms is not None:
            timeout_ms = float(timeout_ms)
            if timeout_ms <= 0:
                raise ValueError(f"timeout_ms must be > 0, got {timeout_ms}")
        return cls(
            offset_seconds=offset,
            seed=seed,
            k=k,
            alpha=alpha,
            length=length,
            timeout_ms=timeout_ms,
        )


class WorkloadRecorder:
    """Thread-safe accumulator of accepted queries with arrival offsets.

    The recorder never blocks the serving path beyond one lock acquisition
    and never raises into it; it is attached to a server
    (``AsyncQueryServer(..., recorder=...)`` /
    ``HttpQueryServer(..., recorder=...)``) and saved at shutdown.

    Parameters
    ----------
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._records: List[TraceRecord] = []
        self._started_at: Optional[float] = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def records(self) -> Tuple[TraceRecord, ...]:
        """A snapshot of the recorded trace so far."""
        with self._lock:
            return tuple(self._records)

    def record_query(
        self, query: PPRQuery, timeout_ms: Optional[float] = None
    ) -> TraceRecord:
        """Record one accepted query at the current clock reading."""
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now
            record = TraceRecord(
                offset_seconds=now - self._started_at,
                seed=int(query.seed),
                k=int(query.k),
                alpha=float(query.alpha),
                length=int(query.length),
                timeout_ms=None if timeout_ms is None else float(timeout_ms),
            )
            self._records.append(record)
            return record

    def save(self, path) -> int:
        """Write the trace as JSONL; returns the number of records written."""
        return save_trace(self.records, path)

    def clear(self) -> None:
        """Drop every record and reset the offset origin."""
        with self._lock:
            self._records.clear()
            self._started_at = None


def save_trace(records: Sequence[TraceRecord], path) -> int:
    """Write ``records`` to ``path`` as one JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
    return len(records)


def load_trace(path) -> List[TraceRecord]:
    """Read a JSONL trace back; blank lines are ignored, bad lines raise."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            records.append(TraceRecord.from_dict(payload))
    return records


async def replay_trace(
    batcher: MicroBatcher,
    records: Sequence[TraceRecord],
    speed: float = 1.0,
    timeout_ms: Union[None, float, str] = "recorded",
) -> List[object]:
    """Replay a trace into a running batcher at its recorded timing.

    Parameters
    ----------
    batcher:
        A started :class:`MicroBatcher` (the replay is in-process: it
        exercises batching/admission/engine exactly like live traffic, minus
        the socket).
    speed:
        Time-scale factor: ``2.0`` replays twice as fast, ``0.5`` half
        speed.  Offsets divide by it.
    timeout_ms:
        ``"recorded"`` (default) re-applies each record's own deadline;
        a float applies one deadline to every query; ``None`` disables
        deadlines.

    Returns
    -------
    list
        Per-record outcomes in trace order: a
        :class:`~repro.ppr.base.PPRResult` for completed queries, or the
        :class:`~repro.serving.frontend.admission.QueryRejectedError`
        subclass the frontend raised (shed/deadline).  Any other exception
        propagates — a replay must not paper over engine failures.
    """
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def fire(record: TraceRecord) -> PPRResult:
        delay = start + record.offset_seconds / speed - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if timeout_ms == "recorded":
            deadline = record.timeout_ms
        else:
            deadline = timeout_ms
        return await batcher.submit(record.to_query(), timeout_ms=deadline)

    tasks = [asyncio.ensure_future(fire(record)) for record in records]
    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    for outcome in outcomes:
        if isinstance(outcome, Exception) and not isinstance(
            outcome, QueryRejectedError
        ):
            raise outcome
    return list(outcomes)


def replay_trace_sync(
    engine,
    records: Sequence[TraceRecord],
    policy=None,
    admission=None,
    speed: float = 1.0,
    timeout_ms: Union[None, float, str] = "recorded",
) -> List[object]:
    """Convenience wrapper: build a batcher, replay, tear it down.

    For benchmarks and tests that hold an engine but no event loop.  The
    engine is left open (the caller owns it).
    """

    async def run() -> List[object]:
        async with MicroBatcher(engine, policy, admission) as batcher:
            return await replay_trace(
                batcher, records, speed=speed, timeout_ms=timeout_ms
            )

    return asyncio.run(run())
