"""Shard-routed extraction for the serving engine.

:class:`ShardRouter` is the serving-side counterpart of
:class:`~repro.graph.partition.GraphPartition`: it owns one
:class:`~repro.serving.cache.SubgraphCache` per shard and implements the
planner's extraction hook (``(graph, center, depth) -> (subgraph, bfs, hit)``),
so a :class:`~repro.serving.engine.QueryEngine` constructed with ``router=``
answers every stage task from the shard that owns the task's centre node.

Routing is a pure function of the task: the owning shard is
``partition.assignments[center]``, and the extraction runs on that shard's
halo-extended sub-graph whenever ``depth <= halo_depth`` — in which case the
result is **bit-identical** to a full-graph extraction (the halo guarantees
the whole ego ball, and sorted global ids guarantee the same BFS visit order
and relabelled CSR).  Deeper extractions fall back to the host graph (served
through a dedicated fallback cache) and are counted in
:attr:`RouterStats.fallback_extractions` so the cost of an undersized halo is
visible in every report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.bfs import BFSResult, extract_ego_subgraph
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition, patch_partition
from repro.graph.subgraph import Subgraph
from repro.serving.cache import DEFAULT_CACHE_BYTES, CacheStats, SubgraphCache
from repro.serving.result_cache import ScoreTableCache
from repro.utils.validation import check_node_id

__all__ = [
    "ShardServingStats",
    "RouterStats",
    "ShardRouter",
    "globalize_shard_extraction",
]


@dataclass(frozen=True)
class ShardServingStats:
    """Serving counters of one shard.

    Attributes
    ----------
    shard_id:
        The shard.
    num_owned, num_halo:
        Static partition shape (owned nodes, halo replicas).
    local_extractions:
        Extractions answered from this shard's sub-graph.
    fallback_extractions:
        Extractions owned by this shard whose depth exceeded the halo and
        were answered from the host graph instead.
    cache:
        Snapshot of the shard's cache counters (``None`` with caching off).
    result_cache:
        Snapshot of the shard's stage-one result-cache counters (``None``
        with result caching off).
    """

    shard_id: int
    num_owned: int
    num_halo: int
    local_extractions: int
    fallback_extractions: int
    cache: Optional[CacheStats]
    result_cache: Optional[CacheStats] = None

    @property
    def hit_rate(self) -> float:
        """Shard-cache hit rate (0.0 with caching off or before any lookup)."""
        return 0.0 if self.cache is None else self.cache.hit_rate

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        return {
            "shard_id": self.shard_id,
            "num_owned": self.num_owned,
            "num_halo": self.num_halo,
            "local_extractions": self.local_extractions,
            "fallback_extractions": self.fallback_extractions,
            "cache": None if self.cache is None else self.cache.as_dict(),
            "result_cache": (
                None if self.result_cache is None else self.result_cache.as_dict()
            ),
        }


@dataclass(frozen=True)
class RouterStats:
    """Aggregate routing statistics of a :class:`ShardRouter`.

    Attributes
    ----------
    strategy, num_shards, halo_depth:
        Shape of the underlying partition.
    shards:
        Per-shard counters.
    fallback_cache:
        Counters of the host-graph fallback cache (``None`` with caching off).
    halo_overhead_bytes:
        Bytes the partition spends on halo replication.
    """

    strategy: str
    num_shards: int
    halo_depth: int
    shards: Tuple[ShardServingStats, ...]
    fallback_cache: Optional[CacheStats]
    halo_overhead_bytes: int

    @property
    def local_extractions(self) -> int:
        """Extractions answered shard-locally."""
        return sum(shard.local_extractions for shard in self.shards)

    @property
    def fallback_extractions(self) -> int:
        """Extractions that fell back to the host graph."""
        return sum(shard.fallback_extractions for shard in self.shards)

    @property
    def total_extractions(self) -> int:
        """All routed extractions."""
        return self.local_extractions + self.fallback_extractions

    @property
    def fallback_rate(self) -> float:
        """Fraction of extractions that crossed shards (0.0 before any)."""
        total = self.total_extractions
        return self.fallback_extractions / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Aggregate cache hit rate over the shard and fallback caches."""
        hits = misses = 0
        for shard in self.shards:
            if shard.cache is not None:
                hits += shard.cache.hits
                misses += shard.cache.misses
        if self.fallback_cache is not None:
            hits += self.fallback_cache.hits
            misses += self.fallback_cache.misses
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def per_shard_hit_rates(self) -> List[float]:
        """Shard-cache hit rates, indexed by shard id."""
        return [shard.hit_rate for shard in self.shards]

    @staticmethod
    def _sum_counters(counters) -> Optional[CacheStats]:
        """Counter-wise sum over optional snapshots (``None`` when all off)."""
        present = [stats for stats in counters if stats is not None]
        if not present:
            return None
        total = CacheStats()
        for stats in present:
            total = total + stats
        return total

    def aggregate_cache(self) -> Optional[CacheStats]:
        """Sum of the per-shard and fallback cache counters.

        This is what makes :meth:`repro.serving.engine.EngineStats.as_dict`
        uniform: a shard-routed engine reports the same ``cache`` shape as an
        engine with a single shared cache.  ``None`` with caching off.
        """
        return self._sum_counters(
            [shard.cache for shard in self.shards] + [self.fallback_cache]
        )

    def aggregate_result_cache(self) -> Optional[CacheStats]:
        """Sum of the per-shard stage-one result-cache counters.

        The sharded counterpart of a single engine-level
        :class:`~repro.serving.result_cache.ScoreTableCache`'s ``stats`` —
        the engine reports it under ``EngineStats.result_cache`` so
        dashboards read one shape whether sharded or not.  ``None`` with
        result caching off.
        """
        return self._sum_counters(shard.result_cache for shard in self.shards)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        result_cache = self.aggregate_result_cache()
        return {
            "strategy": self.strategy,
            "num_shards": self.num_shards,
            "halo_depth": self.halo_depth,
            "local_extractions": self.local_extractions,
            "fallback_extractions": self.fallback_extractions,
            "fallback_rate": self.fallback_rate,
            "hit_rate": self.hit_rate,
            "per_shard_hit_rates": self.per_shard_hit_rates(),
            "halo_overhead_bytes": self.halo_overhead_bytes,
            "shards": [shard.as_dict() for shard in self.shards],
            "fallback_cache": (
                None if self.fallback_cache is None else self.fallback_cache.as_dict()
            ),
            "result_cache": (
                None if result_cache is None else result_cache.as_dict()
            ),
        }


class ShardRouter:
    """Routes ego-sub-graph extractions to the shard owning their centre.

    Parameters
    ----------
    partition:
        The sharded host graph.
    cache_bytes:
        Byte budget of **each** per-shard cache (and of the fallback cache).
        Pass ``None`` to disable caching entirely.
    result_cache_bytes:
        Byte budget of **each** per-shard stage-one result cache
        (:class:`~repro.serving.result_cache.ScoreTableCache`), keyed to the
        shard owning the query's *seed* so hot-seed state lives next to the
        shard's sub-graphs.  ``None`` (default) disables cross-query result
        caching — opt in the same way the engine-level ``result_cache=`` is
        opted into.
    result_cache_ttl_seconds:
        Optional TTL applied to every per-shard result cache.

    Notes
    -----
    The router is thread-safe: the partition is immutable, the caches are
    internally locked, and the routing counters are guarded by a router lock,
    so one router can serve a concurrent backend.  ``router.extract`` has
    exactly the planner's :data:`~repro.meloppr.planner.ExtractFn` signature;
    ``QueryEngine(..., router=router)`` wires it in, and consults
    :meth:`result_cache_for` per query for stage-one reuse.
    """

    def __init__(
        self,
        partition: GraphPartition,
        cache_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
        result_cache_bytes: Optional[int] = None,
        result_cache_ttl_seconds: Optional[float] = None,
    ) -> None:
        self._partition = partition
        self._caches: Tuple[Optional[SubgraphCache], ...] = tuple(
            SubgraphCache(cache_bytes) if cache_bytes is not None else None
            for _ in partition.shards
        )
        self._fallback_cache: Optional[SubgraphCache] = (
            SubgraphCache(cache_bytes) if cache_bytes is not None else None
        )
        self._result_caches: Tuple[Optional[ScoreTableCache], ...] = tuple(
            ScoreTableCache(result_cache_bytes, ttl_seconds=result_cache_ttl_seconds)
            if result_cache_bytes is not None
            else None
            for _ in partition.shards
        )
        # Routing counters are guarded per shard so the hot path never
        # serialises unrelated shards on one router-global lock.
        self._counter_locks = tuple(
            threading.Lock() for _ in range(partition.num_shards)
        )
        self._local_counts = [0] * partition.num_shards
        self._fallback_counts = [0] * partition.num_shards
        # The partition is frozen, so its halo cost is a constant — computed
        # once here rather than on every stats() snapshot.
        self._halo_overhead_bytes = partition.halo_overhead_bytes()

    # ------------------------------------------------------------------
    @property
    def partition(self) -> GraphPartition:
        """The underlying partition."""
        return self._partition

    @property
    def caching_enabled(self) -> bool:
        """Whether per-shard (and fallback) caches are active."""
        return self._fallback_cache is not None

    @property
    def result_caching_enabled(self) -> bool:
        """Whether per-shard stage-one result caches are active."""
        return any(cache is not None for cache in self._result_caches)

    def cache_for(self, shard_id: int) -> Optional[SubgraphCache]:
        """The cache of one shard (``None`` with caching off)."""
        return self._caches[shard_id]

    def result_cache_for(self, seed: int) -> Optional[ScoreTableCache]:
        """The result cache owning a query's seed (``None`` when disabled).

        Stage one always diffuses around the seed, so its folded table is
        kept by the seed's owning shard — the same placement rule the
        extraction path uses, which keeps each shard's hot state (sub-graphs
        *and* score tables) self-contained for future NUMA pinning.
        """
        seed = check_node_id(seed, self._partition.host.num_nodes, "seed")
        return self._result_caches[int(self._partition.assignments[seed])]

    # ------------------------------------------------------------------
    def route_info(self, center: int, depth: int) -> Tuple[int, bool]:
        """Routing decision for one extraction: ``(shard_id, halo_fallback)``.

        A pure lookup with no counter side effects — the tracing layer calls
        this to annotate extraction spans with the owning shard and whether
        the depth exceeds the halo (forcing the host-graph fallback path),
        without double-counting the router's serving stats.
        """
        center = check_node_id(center, self._partition.host.num_nodes, "center")
        return (
            int(self._partition.assignments[center]),
            not self._partition.covers_depth(depth),
        )

    def extract(
        self, graph: CSRGraph, center: int, depth: int
    ) -> Tuple[Subgraph, BFSResult, bool]:
        """The engine's extraction hook, routed to the owning shard.

        ``graph`` must be the partitioned host graph — the router refuses to
        serve any other graph, because the shard sub-graphs would silently
        describe the wrong topology.
        """
        if graph is not self._partition.host:
            raise ValueError(
                f"router is bound to graph {self._partition.host.name!r}; "
                f"got {graph.name!r}"
            )
        center = check_node_id(center, graph.num_nodes, "center")
        shard_id = int(self._partition.assignments[center])
        if self._partition.covers_depth(depth):
            with self._counter_locks[shard_id]:
                self._local_counts[shard_id] += 1
            return self._extract_local(shard_id, center, depth)
        with self._counter_locks[shard_id]:
            self._fallback_counts[shard_id] += 1
        if self._fallback_cache is not None:
            return self._fallback_cache.get_or_extract(graph, center, depth)
        subgraph, bfs = extract_ego_subgraph(graph, center, depth)
        return subgraph, bfs, False

    __call__ = extract

    def _extract_local(
        self, shard_id: int, center: int, depth: int
    ) -> Tuple[Subgraph, BFSResult, bool]:
        """Extract on the shard sub-graph and translate back to global ids."""
        cache = self._caches[shard_id]
        if cache is not None:
            cached = cache.get(center, depth)
            if cached is not None:
                return cached[0], cached[1], True
        shard = self._partition.shards[shard_id]
        subgraph, bfs = globalize_shard_extraction(
            self._partition.host.name, shard.subgraph, center, depth
        )
        if cache is not None:
            cache.put(center, depth, subgraph, bfs)
        return subgraph, bfs, False

    # ------------------------------------------------------------------
    def stats(self) -> RouterStats:
        """A snapshot of the routing and cache counters.

        Each counter source (a shard's routing counts, a cache's stats) is
        internally consistent, but with traffic in flight the sources may be
        mutually out of step — e.g. an extraction whose routing counter is
        already visible but whose cache lookup is not.  Quiesce the engine
        (or join the backend's workers) before asserting exact cross-source
        invariants, as the stress tests do.
        """
        local_counts = []
        fallback_counts = []
        for shard_id, lock in enumerate(self._counter_locks):
            with lock:
                local_counts.append(self._local_counts[shard_id])
                fallback_counts.append(self._fallback_counts[shard_id])
        partition = self._partition
        shards = tuple(
            ShardServingStats(
                shard_id=shard.shard_id,
                num_owned=shard.num_owned,
                num_halo=shard.num_halo,
                local_extractions=local_counts[shard.shard_id],
                fallback_extractions=fallback_counts[shard.shard_id],
                cache=(
                    None
                    if self._caches[shard.shard_id] is None
                    else self._caches[shard.shard_id].stats
                ),
                result_cache=(
                    None
                    if self._result_caches[shard.shard_id] is None
                    else self._result_caches[shard.shard_id].stats
                ),
            )
            for shard in partition.shards
        )
        return RouterStats(
            strategy=partition.strategy,
            num_shards=partition.num_shards,
            halo_depth=partition.halo_depth,
            shards=shards,
            fallback_cache=(
                None if self._fallback_cache is None else self._fallback_cache.stats
            ),
            halo_overhead_bytes=self._halo_overhead_bytes,
        )

    def reset_stats(self) -> None:
        """Zero the routing counters and every cache's counters.

        Cache *contents* (and the partition) are untouched; used for
        per-interval reporting on long-running servers.
        """
        for shard_id, lock in enumerate(self._counter_locks):
            with lock:
                self._local_counts[shard_id] = 0
                self._fallback_counts[shard_id] = 0
        for cache in self._caches:
            if cache is not None:
                cache.reset_stats()
        if self._fallback_cache is not None:
            self._fallback_cache.reset_stats()
        for result_cache in self._result_caches:
            if result_cache is not None:
                result_cache.reset_stats()

    def clear_result_caches(self) -> None:
        """Drop every shard's cached stage-one state (counters are kept).

        Explicit invalidation for operational use (e.g. after a config
        change that `stage_one_cache_key` does not cover); a *rebuilt* graph
        needs no call — its fingerprint changes the keys.
        """
        for result_cache in self._result_caches:
            if result_cache is not None:
                result_cache.clear()

    # ------------------------------------------------------------------
    def update_radius(self) -> int:
        """Largest hop radius a surgical update must resolve distances to.

        The maximum over the halo depth (the affected-shard test), every
        cached extraction depth, and every cached stage-one length — any
        distance beyond this radius can be capped without changing an
        invalidation or shard-rebuild decision.
        """
        radius = self._partition.halo_depth
        for cache in self._caches:
            if cache is not None:
                radius = max(radius, cache.max_depth())
        if self._fallback_cache is not None:
            radius = max(radius, self._fallback_cache.max_depth())
        for result_cache in self._result_caches:
            if result_cache is not None:
                radius = max(radius, result_cache.max_stage_one_length())
        return radius

    def apply_update(
        self,
        new_graph: CSRGraph,
        old_fingerprint: str,
        new_fingerprint: str,
        distances: np.ndarray,
    ) -> Dict[str, int]:
        """Surgically patch the router after an edge update on the host.

        ``distances`` is the dual-topology bound from
        :func:`repro.graph.delta.update_distance_bound`, resolved out to at
        least :meth:`update_radius`.  Only shards with an owned node within
        ``halo_depth`` of a touched endpoint are re-extracted
        (:func:`repro.graph.partition.patch_partition`); cache entries
        survive unless the update can reach them — an ego ball whose centre
        is farther than its depth from every touched endpoint, or a stage-one
        table whose seed is farther than its stage-one length, is bit-for-bit
        what the new graph would produce, so survivors stay (result-cache
        keys are rewritten to the new fingerprint).

        Not internally synchronised against in-flight extractions: the
        caller (:meth:`repro.serving.engine.QueryEngine.apply_update`) holds
        the engine's writer barrier, which guarantees no batch is running.
        Returns invalidation counters for the update outcome report.
        """
        patched, rebuilt = patch_partition(self._partition, new_graph, distances)
        subgraph_dropped = 0
        for cache in self._caches:
            if cache is not None:
                subgraph_dropped += cache.invalidate_covering(distances)
        if self._fallback_cache is not None:
            subgraph_dropped += self._fallback_cache.invalidate_covering(distances)
            self._fallback_cache.rebind(new_graph)
        result_dropped = result_rekeyed = 0
        for result_cache in self._result_caches:
            if result_cache is not None:
                dropped, rekeyed = result_cache.apply_update(
                    old_fingerprint, new_fingerprint, distances
                )
                result_dropped += dropped
                result_rekeyed += rekeyed
        self._partition = patched
        self._halo_overhead_bytes = patched.halo_overhead_bytes()
        return {
            "shards_rebuilt": len(rebuilt),
            "subgraph_entries_dropped": subgraph_dropped,
            "result_entries_dropped": result_dropped,
            "result_entries_rekeyed": result_rekeyed,
        }

    def validate(self) -> None:
        """Check every cache's internal invariants (testing aid)."""
        for cache in self._caches:
            if cache is not None:
                cache.validate()
        if self._fallback_cache is not None:
            self._fallback_cache.validate()
        for result_cache in self._result_caches:
            if result_cache is not None:
                result_cache.validate()

    def __repr__(self) -> str:
        return (
            f"ShardRouter(partition={self._partition!r}, "
            f"caching={'on' if self.caching_enabled else 'off'}, "
            f"result_caching={'on' if self.result_caching_enabled else 'off'})"
        )


def globalize_shard_extraction(
    host_name: str, shard_subgraph: Subgraph, center: int, depth: int
) -> Tuple[Subgraph, BFSResult]:
    """Run the extraction on a shard sub-graph, translated to global ids.

    The returned objects are indistinguishable from
    ``extract_ego_subgraph(host, center, depth)``: same relabelled CSR arrays,
    same global-id mapping, same BFS visit order and ``edges_scanned`` —
    guaranteed by the halo covering the full ego ball and by the shard's
    global ids being sorted ascending (see :mod:`repro.graph.partition`).

    Takes the shard's :class:`~repro.graph.subgraph.Subgraph` (not the whole
    :class:`~repro.graph.partition.GraphShard`) so process-pool workers, which
    attach only the shard's shared CSR buffers, run the exact same code path
    as the in-process :class:`ShardRouter`.
    """
    shard_ids = shard_subgraph.global_ids
    local_center = shard_subgraph.to_local(center)
    local_subgraph, local_bfs = extract_ego_subgraph(
        shard_subgraph.graph, local_center, depth
    )
    ego_graph = local_subgraph.graph
    renamed = CSRGraph(
        ego_graph.indptr,
        ego_graph.indices,
        name=f"{host_name}:G{depth}({int(center)})",
    )
    subgraph = Subgraph(renamed, shard_ids[local_subgraph.global_ids])
    bfs = BFSResult(
        source=int(center),
        depth=depth,
        nodes=shard_ids[local_bfs.nodes],
        levels=local_bfs.levels,
        edges_scanned=local_bfs.edges_scanned,
    )
    return subgraph, bfs
