"""Query serving: batching, caching, sharding, pluggable execution.

This package is the engine layer between the PPR solvers and callers with
traffic: it batches queries (:class:`QueryEngine`), reuses BFS extractions
across them (:class:`SubgraphCache`), reuses folded stage-one score tables
across repeated hot-seed queries (:class:`ScoreTableCache` — a cache hit
skips straight to the stage-two tasks, bit-identically), routes extractions
to the shard owning them (:class:`ShardRouter` over a
:class:`~repro.graph.partition.GraphPartition`, one cache per shard) and runs
the per-query work on a pluggable :class:`ExecutionBackend` (serial,
thread-pool, asyncio or a shared-memory process pool; build one from a spec
string with :func:`make_backend`).  The algorithmic stage loop it drives lives in
:mod:`repro.meloppr.planner`; the online request path — micro-batching,
admission control, the TCP/JSON service — lives in
:mod:`repro.serving.frontend`.

Observability cuts across all of it: attach a :class:`Tracer` to the engine
and sampled queries record a span tree — admission wait, batch membership,
per-stage compute, cache hit/miss, shard routing, worker-side spans shipped
back across the process pool — exportable as Chrome trace-event JSON
(:mod:`repro.serving.tracing`).
"""

from repro.serving.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    WorkerCrashError,
    make_backend,
)
from repro.serving.cache import DEFAULT_CACHE_BYTES, CacheStats, SubgraphCache
from repro.serving.engine import EngineStats, QueryEngine
from repro.serving.result_cache import (
    DEFAULT_RESULT_CACHE_BYTES,
    ScoreTableCache,
    stage_one_cache_key,
)
from repro.serving.sharding import RouterStats, ShardRouter, ShardServingStats
from repro.serving.shm import (
    SharedGraphHandle,
    SharedShardHandle,
    leaked_segment_names,
)
from repro.serving.telemetry import LatencyHistogram, LatencySnapshot
from repro.serving.tracing import (
    Span,
    TraceContext,
    Tracer,
    TracingStats,
    format_traceparent,
    parse_traceparent,
    validate_trace_events,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "WorkerCrashError",
    "make_backend",
    "DEFAULT_CACHE_BYTES",
    "CacheStats",
    "SubgraphCache",
    "DEFAULT_RESULT_CACHE_BYTES",
    "ScoreTableCache",
    "stage_one_cache_key",
    "EngineStats",
    "QueryEngine",
    "RouterStats",
    "ShardRouter",
    "ShardServingStats",
    "SharedGraphHandle",
    "SharedShardHandle",
    "leaked_segment_names",
    "LatencyHistogram",
    "LatencySnapshot",
    "Span",
    "TraceContext",
    "Tracer",
    "TracingStats",
    "format_traceparent",
    "parse_traceparent",
    "validate_trace_events",
]
