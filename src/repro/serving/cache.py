"""Byte-budgeted LRU cache of extracted ego sub-graphs.

Every MeLoPPR stage task starts with a depth-``l`` BFS extraction, and across
a batch of queries the same ego sub-graphs recur constantly: hot seeds are
queried repeatedly, and popular high-degree nodes are selected as next-stage
centres by many different queries.  The extraction is deterministic — the
sub-graph only depends on ``(center, depth)`` and the host graph — and the
extracted :class:`~repro.graph.subgraph.Subgraph` is immutable once built, so
a cache can hand the same object to every task that needs it.

:class:`SubgraphCache` keys entries by ``(center, depth)``, bounds the total
retained bytes (graph CSR arrays + id mappings + BFS bookkeeping) and evicts
in least-recently-used order.  Hit / miss / eviction counts are exposed via
:attr:`SubgraphCache.stats` and surfaced by the serving engine in
``PPRResult.metadata`` and its throughput reports.

The cache is thread-safe: bookkeeping is guarded by a lock, while the BFS
extraction itself runs outside it so concurrent misses do not serialise each
other.  Two threads missing on the same key may both extract; the second
insert simply replaces the first with an identical entry, which is harmless
because extraction is deterministic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.bfs import BFSResult, extract_ego_subgraph
from repro.graph.csr import CSRGraph
from repro.graph.subgraph import Subgraph

__all__ = ["CacheStats", "SubgraphCache", "DEFAULT_CACHE_BYTES"]

#: Default byte budget — roomy for the paper-scale stand-ins (tens of MB).
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


@dataclass
class CacheStats:
    """Counters of a :class:`SubgraphCache`.

    Attributes
    ----------
    hits, misses:
        Lookup outcomes since construction (or the last :meth:`reset`).
    evictions:
        Entries dropped to stay within the byte budget.
    rejected:
        Extractions too large to ever fit the budget (served uncached).
    expired:
        Entries dropped because their TTL passed (always 0 for caches
        without a TTL, e.g. :class:`SubgraphCache`; an expired lookup also
        counts as a miss).
    current_bytes, num_entries:
        Present size of the cache.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rejected: int = 0
    expired: int = 0
    current_bytes: int = 0
    num_entries: int = 0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum — the single aggregation used by every roll-up
        (router shard caches, process-pool worker caches, engine snapshots),
        so a new counter field is added in exactly one place."""
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            rejected=self.rejected + other.rejected,
            expired=self.expired + other.expired,
            current_bytes=self.current_bytes + other.current_bytes,
            num_entries=self.num_entries + other.num_entries,
        )

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON reports and result metadata."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "expired": self.expired,
            "current_bytes": self.current_bytes,
            "num_entries": self.num_entries,
            "hit_rate": self.hit_rate,
        }


def _entry_nbytes(subgraph: Subgraph, bfs: BFSResult) -> int:
    """Retained bytes of one cache entry (CSR arrays, id maps, BFS arrays)."""
    return int(
        subgraph.graph.nbytes()
        + subgraph.global_ids.nbytes
        + bfs.nodes.nbytes
        + bfs.levels.nbytes
        # The global->local dict: ~two machine words per node is a fair model
        # without paying a sys.getsizeof traversal per insert.
        + 16 * subgraph.num_nodes
    )


class SubgraphCache:
    """LRU cache of ``(center, depth) -> (Subgraph, BFSResult)`` extractions.

    Parameters
    ----------
    max_bytes:
        Byte budget for retained entries.  Inserting past the budget evicts
        least-recently-used entries until the new entry fits; an entry larger
        than the whole budget is never cached (counted in ``stats.rejected``).

    Notes
    -----
    A cache instance is bound to one host graph (the engine owns one per
    graph); keying by ``(center, depth)`` alone keeps lookups cheap.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        self._max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, int], Tuple[Subgraph, BFSResult, int]]" = (
            OrderedDict()
        )
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0
        # Bound on first use: entries are keyed by (center, depth) alone, so
        # serving a second graph from the same cache would silently return
        # the first graph's sub-graphs.
        self._graph: Optional[CSRGraph] = None

    # ------------------------------------------------------------------
    @property
    def max_bytes(self) -> int:
        """The configured byte budget."""
        return self._max_bytes

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                rejected=self._rejected,
                current_bytes=self._current_bytes,
                num_entries=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    def get(self, center: int, depth: int) -> Optional[Tuple[Subgraph, BFSResult]]:
        """Look up an extraction, updating recency and hit/miss counters."""
        key = (int(center), int(depth))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0], entry[1]

    def put(self, center: int, depth: int, subgraph: Subgraph, bfs: BFSResult) -> bool:
        """Insert an extraction; returns whether it was retained."""
        key = (int(center), int(depth))
        nbytes = _entry_nbytes(subgraph, bfs)
        with self._lock:
            if nbytes > self._max_bytes:
                self._rejected += 1
                return False
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._current_bytes -= previous[2]
            while self._entries and self._current_bytes + nbytes > self._max_bytes:
                _, (_, _, dropped) = self._entries.popitem(last=False)
                self._current_bytes -= dropped
                self._evictions += 1
            self._entries[key] = (subgraph, bfs, nbytes)
            self._current_bytes += nbytes
            return True

    def get_or_extract(
        self, graph: CSRGraph, center: int, depth: int
    ) -> Tuple[Subgraph, BFSResult, bool]:
        """Serve ``extract_ego_subgraph(graph, center, depth)`` through the cache.

        Returns ``(subgraph, bfs, hit)``; this is exactly the
        :data:`repro.meloppr.planner.ExtractFn` signature the planner's
        executors accept, so ``cache.get_or_extract`` can be passed as the
        ``extract=`` hook directly.

        The cache binds to the first ``graph`` it serves; passing a different
        graph later raises ``ValueError`` (keys carry no graph identity, so
        cross-graph sharing would return wrong sub-graphs).  :meth:`clear`
        resets the binding.
        """
        with self._lock:
            if self._graph is None:
                self._graph = graph
            elif graph is not self._graph:
                raise ValueError(
                    f"cache is bound to graph {self._graph.name!r}; create one "
                    f"SubgraphCache per graph (got {graph.name!r})"
                )
        cached = self.get(center, depth)
        if cached is not None:
            return cached[0], cached[1], True
        # Extract outside the lock so concurrent misses proceed in parallel.
        subgraph, bfs = extract_ego_subgraph(graph, center, depth)
        self.put(center, depth, subgraph, bfs)
        return subgraph, bfs, False

    def max_depth(self) -> int:
        """Largest extraction depth among retained entries (0 when empty).

        The engine's live-update path uses this to size its BFS reach
        bound: distances only need resolving up to the deepest ego ball any
        cached entry could cover.
        """
        with self._lock:
            return max((key[1] for key in self._entries), default=0)

    def invalidate_covering(self, distances) -> int:
        """Drop every entry whose ego ball can contain an updated node.

        ``distances[node]`` is a conservative hop distance to the nearest
        endpoint an edge update touched (see
        :func:`repro.graph.delta.update_distance_bound`); an entry keyed
        ``(center, depth)`` is dropped exactly when
        ``distances[center] <= depth`` — every survivor's extraction is
        provably byte-identical on the updated topology.  Returns the number
        of entries dropped; like explicit invalidation elsewhere, these are
        not counted as evictions (the budget did not force them).
        """
        with self._lock:
            dead = [
                key
                for key in self._entries
                if int(distances[key[0]]) <= key[1]
            ]
            for key in dead:
                _, _, dropped = self._entries.pop(key)
                self._current_bytes -= dropped
            return len(dead)

    def rebind(self, graph: CSRGraph) -> None:
        """Re-point the cache at a new host graph, keeping surviving entries.

        The live-update path: after :meth:`invalidate_covering` has dropped
        every entry the topology change could affect, the survivors are
        bit-identical to fresh extractions on ``graph``, so the binding can
        move without a cold restart.  (Use :meth:`clear` for an unrelated
        graph.)
        """
        with self._lock:
            self._graph = graph

    def validate(self) -> None:
        """Check the internal invariants, raising ``AssertionError`` on drift.

        Invariants: ``current_bytes`` equals the sum of the retained entries'
        sizes, never exceeds the budget, and every retained entry's recorded
        size matches a recomputation.  Used by the concurrency stress tests;
        cheap enough to call after any sequence of operations.
        """
        with self._lock:
            recomputed = 0
            for (subgraph, bfs, nbytes) in self._entries.values():
                actual = _entry_nbytes(subgraph, bfs)
                if actual != nbytes:
                    raise AssertionError(
                        f"entry records {nbytes} bytes but holds {actual}"
                    )
                recomputed += nbytes
            if recomputed != self._current_bytes:
                raise AssertionError(
                    f"current_bytes={self._current_bytes} but entries sum to "
                    f"{recomputed}"
                )
            if self._current_bytes > self._max_bytes:
                raise AssertionError(
                    f"current_bytes={self._current_bytes} exceeds the budget "
                    f"{self._max_bytes}"
                )

    def resize(self, max_bytes: int) -> int:
        """Change the byte budget in place, evicting LRU entries past it.

        The hot-reload path of a live server: shrinking evicts (counted in
        ``stats.evictions``) until the retained bytes fit, growing just
        raises the ceiling — either way no lookup is ever interrupted and
        surviving entries stay warm.  Returns the number of evictions the
        resize forced.
        """
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        with self._lock:
            self._max_bytes = int(max_bytes)
            evicted = 0
            while self._entries and self._current_bytes > self._max_bytes:
                _, (_, _, dropped) = self._entries.popitem(last=False)
                self._current_bytes -= dropped
                self._evictions += 1
                evicted += 1
            return evicted

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction/rejection counters (entries are kept).

        ``current_bytes`` and ``num_entries`` describe live state, not
        history, so they are unaffected; used for per-interval reporting on
        long-running servers.
        """
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._rejected = 0

    def clear(self) -> None:
        """Drop every entry and the graph binding (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0
            self._graph = None

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"SubgraphCache(max_bytes={self._max_bytes}, "
            f"entries={stats.num_entries}, bytes={stats.current_bytes}, "
            f"hit_rate={stats.hit_rate:.2f})"
        )
