"""Latency telemetry for the serving layer.

Long-running servers cannot afford to retain every observed latency, but
tail percentiles (p95/p99) are exactly what capacity planning needs, so the
serving layer records latencies into a :class:`LatencyHistogram` — a fixed
set of logarithmically spaced buckets from 1 µs to 1000 s.  Percentiles are
read as the upper edge of the bucket containing the requested rank, which
makes them deterministic and at most one bucket width (~12 %) above the true
value; count, sum, min and max are tracked exactly.

The histogram is thread-safe (one lock around the counters), cheap to record
into (one log10 per sample) and snapshots into the immutable
:class:`LatencySnapshot` that :class:`~repro.serving.engine.EngineStats` and
the async frontend's stats export in their ``as_dict`` reports.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = ["LatencySnapshot", "LatencyHistogram"]

#: Smallest resolvable latency (lower edge of bucket 0).
_MIN_LATENCY_SECONDS = 1e-6
#: Buckets per decade; 9 decades cover 1 µs .. 1000 s.
_BUCKETS_PER_DECADE = 20
_NUM_DECADES = 9
_NUM_BUCKETS = _BUCKETS_PER_DECADE * _NUM_DECADES


def _bucket_index(seconds: float) -> int:
    """Bucket holding ``seconds`` (clamped to the histogram's range)."""
    if seconds <= _MIN_LATENCY_SECONDS:
        return 0
    index = int(math.log10(seconds / _MIN_LATENCY_SECONDS) * _BUCKETS_PER_DECADE)
    return min(index, _NUM_BUCKETS - 1)


def _bucket_upper_edge(index: int) -> float:
    """Upper latency edge of bucket ``index``."""
    return _MIN_LATENCY_SECONDS * 10.0 ** ((index + 1) / _BUCKETS_PER_DECADE)


@dataclass(frozen=True)
class LatencySnapshot:
    """An immutable percentile summary of recorded latencies (seconds).

    Attributes
    ----------
    count:
        Number of recorded samples.
    mean_seconds, min_seconds, max_seconds:
        Exact moments of the samples (0.0 before any sample).
    p50_seconds, p95_seconds, p99_seconds:
        Bucketed percentile estimates — the upper edge of the bucket holding
        the rank, clamped to ``max_seconds``.
    """

    count: int
    mean_seconds: float
    min_seconds: float
    max_seconds: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON reports.

        Key order is part of the contract — ``count``, the exact moments
        (mean/min/max), then the percentiles ascending — so serialized
        reports and JSONL logs diff cleanly across runs.
        """
        return {
            "count": self.count,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "p99_seconds": self.p99_seconds,
        }


class LatencyHistogram:
    """Thread-safe log-bucketed histogram of latencies in seconds.

    ``record`` is O(1); ``percentile`` walks the fixed bucket array.  The
    histogram never allocates after construction, so a server can keep one
    per metric for its whole lifetime and :meth:`reset` it per reporting
    interval.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets = [0] * _NUM_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        with self._lock:
            return self._count

    def record(self, seconds: float) -> None:
        """Record one latency sample (negative values are clamped to 0)."""
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._buckets[_bucket_index(seconds)] += 1
            self._count += 1
            self._sum += seconds
            self._min = min(self._min, seconds)
            self._max = max(self._max, seconds)

    def percentile(self, quantile: float) -> float:
        """Latency at ``quantile`` in [0, 1].

        An empty histogram returns exactly ``0.0`` for every quantile —
        never ``NaN``, ``inf`` or an exception — so reporting paths can
        render a fresh (or just-reset) histogram without special-casing.
        Out-of-range quantiles raise ``ValueError`` regardless of count.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        with self._lock:
            return self._percentile_locked(quantile)

    def _percentile_locked(self, quantile: float) -> float:
        if self._count == 0:
            return 0.0
        rank = max(1, math.ceil(quantile * self._count))
        seen = 0
        for index, bucket_count in enumerate(self._buckets):
            seen += bucket_count
            if seen >= rank:
                # The upper edge bounds every sample in the bucket; clamping
                # to the exact max keeps p99 <= max always true in reports.
                return min(_bucket_upper_edge(index), self._max)
        return self._max

    def snapshot(self) -> LatencySnapshot:
        """A consistent :class:`LatencySnapshot` of the current samples."""
        with self._lock:
            count = self._count
            return LatencySnapshot(
                count=count,
                mean_seconds=(self._sum / count) if count else 0.0,
                min_seconds=self._min if count else 0.0,
                max_seconds=self._max,
                p50_seconds=self._percentile_locked(0.50),
                p95_seconds=self._percentile_locked(0.95),
                p99_seconds=self._percentile_locked(0.99),
            )

    def reset(self) -> None:
        """Drop every sample (for per-interval reporting)."""
        with self._lock:
            self._buckets = [0] * _NUM_BUCKETS
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = 0.0

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"LatencyHistogram(count={snap.count}, "
            f"p50={snap.p50_seconds:.6f}s, p99={snap.p99_seconds:.6f}s)"
        )
