"""Experiment E15 — soak/overload through the HTTP front door.

E11 established the batcher's behaviour under load; this study asks the
production question one layer up: **when traffic exceeds capacity, does the
deployed server shed or collapse?**  A server that collapses spends its
cycles on queueing, timeouts and half-finished work, so its *goodput*
(completed answers per second) falls as offered load rises.  A server that
sheds keeps answering at capacity and turns the excess into cheap, explicit
``429`` rejections.

The study measures the engine's closed-loop capacity, then drives the real
HTTP front door (:class:`~repro.serving.frontend.http.HttpQueryServer` —
sockets, HTTP parsing, JSON, the same micro-batcher as production) with
Poisson arrivals at multiples of that capacity, from comfortable (0.5x)
through saturation (2x) to a 10x overload soak.  For each multiple it
reports client-observed goodput, shed rate and latency percentiles, and
cross-checks the client's tally against the server's own ``/metrics``
exposition (the counters operators would actually alarm on).

Pass criteria (asserted by the soak tests and the CI smoke):

* goodput at the highest overload stays within 20% of the peak goodput
  across the sweep — shedding, not collapsing;
* every completed answer is **bit-identical** to a serial
  ``QueryEngine.solve_batch`` reference;
* the ``/metrics`` counters agree with the client-side outcome tally.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_table
from repro.experiments.workloads import (
    PAPER_STAGE_SPLIT,
    OpenLoopWorkload,
    make_open_loop_workload,
)
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine
from repro.serving.frontend.admission import AdmissionController
from repro.serving.frontend.batcher import BatchPolicy, MicroBatcher
from repro.serving.frontend.http import HttpClientPool, HttpQueryServer
from repro.serving.frontend.metrics import parse_prometheus_text
from repro.serving.result_cache import ScoreTableCache
from repro.utils.rng import RngLike

__all__ = [
    "SoakRun",
    "SoakStudy",
    "run_soak_study",
    "format_soak",
    "main",
]


@dataclass(frozen=True)
class SoakRun:
    """One offered-load multiple's client- and server-side measurements."""

    label: str
    multiplier: float
    rate_qps: float
    offered: int
    completed: int
    shed: int
    expired: int
    wall_seconds: float
    goodput_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    server_completed: int
    server_shed: int

    @property
    def shed_rate(self) -> float:
        """Fraction of offered queries answered with a shed (0.0 = none)."""
        return self.shed / self.offered if self.offered else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "multiplier": self.multiplier,
            "rate_qps": self.rate_qps,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "expired": self.expired,
            "shed_rate": self.shed_rate,
            "wall_seconds": self.wall_seconds,
            "goodput_qps": self.goodput_qps,
            # The regression gate's uniform metric name: for a soak, the
            # figure of merit is completed answers per second.
            "throughput_qps": self.goodput_qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "server_completed": self.server_completed,
            "server_shed": self.server_shed,
        }


@dataclass(frozen=True)
class SoakStudy:
    """The full overload sweep: one run per capacity multiple."""

    dataset: str
    capacity_qps: float
    num_seeds: int
    num_arrivals: int
    max_pending: int
    pool_size: int
    runs: Tuple[SoakRun, ...]

    @property
    def peak_goodput_qps(self) -> float:
        """The best goodput any multiple achieved."""
        return max(run.goodput_qps for run in self.runs)

    @property
    def overload_degradation(self) -> float:
        """Fractional goodput loss at the *highest* multiple vs the peak.

        ``0.0`` means the 10x soak served at peak rate; ``0.2`` means it lost
        20%.  This is the figure the shed-not-collapse acceptance bounds.
        """
        peak = self.peak_goodput_qps
        if peak <= 0:
            return 0.0
        worst = max(self.runs, key=lambda run: run.multiplier)
        return 1.0 - worst.goodput_qps / peak

    def by_label(self) -> Dict[str, SoakRun]:
        """Runs keyed by configuration label."""
        return {run.label: run for run in self.runs}

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "capacity_qps": self.capacity_qps,
            "num_seeds": self.num_seeds,
            "num_arrivals": self.num_arrivals,
            "max_pending": self.max_pending,
            "pool_size": self.pool_size,
            "peak_goodput_qps": self.peak_goodput_qps,
            "overload_degradation": self.overload_degradation,
            "runs": [run.as_dict() for run in self.runs],
        }


def _measure_capacity(
    workload: OpenLoopWorkload,
    config: MeLoPPRConfig,
    policy: BatchPolicy,
    pool_size: int,
) -> float:
    """Closed-loop capacity (queries/second) of the *HTTP front door*.

    The overload multiples must be multiples of what the deployed stack —
    sockets, HTTP parsing, batching, engine — can actually serve, not of the
    bare engine's arithmetic rate (which is far higher and would make every
    multiple an overload).  So the calibration drives the same server the
    soak drives, closed-loop: ``pool_size`` connections firing back-to-back
    with admission sized to never shed.  One pass warms the caches (the
    soak runs warm too — hot seeds repeat), a second pass is timed.
    """
    engine = QueryEngine(
        MeLoPPRSolver(workload.graph, config),
        cache=SubgraphCache(),
        result_cache=ScoreTableCache(),
    )

    async def run() -> float:
        admission = AdmissionController(max_pending=4 * pool_size)
        async with MicroBatcher(engine, policy, admission) as batcher:
            server = HttpQueryServer(batcher)
            host, port = await server.start()
            try:
                async with HttpClientPool(host, port, size=pool_size) as pool:
                    bodies = [
                        {
                            "seed": query.seed,
                            "k": query.k,
                            "alpha": query.alpha,
                            "length": query.length,
                        }
                        for query in workload.queries
                    ]
                    loop = asyncio.get_running_loop()
                    for timed in (False, True):
                        start = loop.time()
                        responses = await asyncio.gather(
                            *(pool.query(body) for body in bodies)
                        )
                        wall = loop.time() - start
                        for status, body in responses:
                            if status != 200:
                                raise AssertionError(
                                    "calibration must not shed "
                                    f"(got HTTP {status}: {body})"
                                )
                    return len(bodies) / wall if wall > 0 else float("inf")
            finally:
                await server.drain()

    try:
        return asyncio.run(run())
    finally:
        engine.close()


def _extend_for_multiplier(
    workload: OpenLoopWorkload, multiplier: float
) -> Tuple[List[PPRQuery], List[float]]:
    """The workload tiled so every multiple soaks for a comparable wall.

    At 10x the base sequence would flash past in a tenth of the 1x wall —
    far too short to distinguish sustained shedding from a lucky burst — so
    the query/arrival sequence repeats ``round(multiplier)`` times (each
    copy shifted by the base span plus one mean gap, preserving the Poisson
    structure).  Offered *duration* is then the same at every multiple;
    offered *volume* scales with the overload.
    """
    repeats = max(1, int(round(multiplier)))
    queries = list(workload.queries) * repeats
    base = list(workload.arrival_seconds)
    span = base[-1] + 1.0  # unit-rate sequence: mean gap is 1 second
    arrivals = [
        offset * span + at for offset in range(repeats) for at in base
    ]
    return queries, arrivals


def _run_multiplier(
    workload: OpenLoopWorkload,
    config: MeLoPPRConfig,
    reference: Dict[PPRQuery, List[List[float]]],
    multiplier: float,
    capacity_qps: float,
    policy: BatchPolicy,
    max_pending: int,
    pool_size: int,
    timeout_ms: Optional[float],
) -> SoakRun:
    """Serve one overload multiple through a fresh HTTP front door."""
    label = f"{multiplier:g}x"
    rate_qps = multiplier * capacity_qps
    queries, unit_arrivals = _extend_for_multiplier(workload, multiplier)
    arrivals = [at / rate_qps for at in unit_arrivals]
    engine = QueryEngine(
        MeLoPPRSolver(workload.graph, config),
        cache=SubgraphCache(),
        result_cache=ScoreTableCache(),
    )

    async def run() -> Tuple[List[Tuple[int, dict]], float, str]:
        async with MicroBatcher(
            engine, policy, AdmissionController(max_pending=max_pending)
        ) as batcher:
            server = HttpQueryServer(batcher)
            host, port = await server.start()
            try:
                async with HttpClientPool(host, port, size=pool_size) as pool:
                    loop = asyncio.get_running_loop()
                    start = loop.time()

                    async def fire(
                        query: PPRQuery, at: float
                    ) -> Tuple[int, dict]:
                        delay = start + at - loop.time()
                        if delay > 0:
                            await asyncio.sleep(delay)
                        body = {
                            "seed": query.seed,
                            "k": query.k,
                            "alpha": query.alpha,
                            "length": query.length,
                        }
                        if timeout_ms is not None:
                            body["timeout_ms"] = timeout_ms
                        return await pool.query(body)

                    tasks = [
                        asyncio.ensure_future(fire(query, at))
                        for query, at in zip(queries, arrivals)
                    ]
                    responses = await asyncio.gather(*tasks)
                    wall = loop.time() - start
                    return responses, wall, await _scrape(host, port)
            finally:
                await server.drain()

    async def _scrape(host: str, port: int) -> str:
        from repro.serving.frontend.http import HttpClient

        async with HttpClient(host, port) as client:
            status, _, raw = await client.request("GET", "/metrics")
            if status != 200:
                raise AssertionError(f"/metrics answered {status}")
            return raw.decode("utf-8")

    try:
        responses, wall, exposition = asyncio.run(run())
    finally:
        engine.close()

    completed = shed = expired = 0
    latencies_ms: List[float] = []
    for query, (status, body) in zip(queries, responses):
        if status == 200:
            completed += 1
            latencies_ms.append(float(body["latency_ms"]))
            if body["top"] != reference[query]:
                raise AssertionError(
                    f"soak at {label} changed seed {query.seed}'s scores — "
                    "the HTTP front door must be bit-identical to the serial "
                    "engine"
                )
        elif status == 429:
            shed += 1
        elif status == 504:
            expired += 1
        else:
            raise AssertionError(
                f"unexpected HTTP status {status} under soak: {body}"
            )

    # The server's own books must agree with the client's tally — these are
    # the counters operators alarm on.
    scrape = parse_prometheus_text(exposition)
    server_completed = int(scrape.value("repro_queries_completed_total"))
    server_shed = int(scrape.value("repro_queries_shed_total"))
    if server_completed != completed or server_shed != shed:
        raise AssertionError(
            f"/metrics disagrees with the client tally at {label}: server "
            f"says {server_completed} completed/{server_shed} shed, clients "
            f"saw {completed}/{shed}"
        )

    latencies_ms.sort()

    def percentile(fraction: float) -> float:
        if not latencies_ms:
            return 0.0
        index = min(
            len(latencies_ms) - 1, int(fraction * (len(latencies_ms) - 1))
        )
        return latencies_ms[index]

    return SoakRun(
        label=label,
        multiplier=multiplier,
        rate_qps=rate_qps,
        offered=len(queries),
        completed=completed,
        shed=shed,
        expired=expired,
        wall_seconds=wall,
        goodput_qps=completed / wall if wall > 0 else 0.0,
        p50_ms=percentile(0.50),
        p95_ms=percentile(0.95),
        p99_ms=percentile(0.99),
        server_completed=server_completed,
        server_shed=server_shed,
    )


def run_soak_study(
    dataset: str = "G1",
    num_seeds: int = 5,
    num_arrivals: int = 60,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 10.0),
    k: int = 100,
    selection_ratio: float = 0.02,
    max_pending: int = 8,
    pool_size: int = 16,
    timeout_ms: Optional[float] = None,
    policy: Optional[BatchPolicy] = None,
    rng: RngLike = 44,
) -> SoakStudy:
    """Soak the HTTP front door at multiples of measured capacity.

    Parameters
    ----------
    dataset:
        Dataset key of the host graph.
    num_seeds, num_arrivals:
        Hot-seed pool size and number of timed arrivals per multiple (the
        same Poisson sequence replays at every rate).
    multipliers:
        Offered load as multiples of the measured closed-loop capacity;
        include a deep overload (10x) to exercise sustained shedding.
    max_pending:
        Admission bound — the knob that turns overload into shedding.
    pool_size:
        Concurrent HTTP connections driving the load.
    timeout_ms:
        Optional per-query deadline (504s count separately from sheds).
    policy:
        Batching policy (default: batch 8, wait 2 ms, dedup on).
    """
    config = MeLoPPRConfig(
        stage_lengths=PAPER_STAGE_SPLIT,
        selector=RatioSelector(selection_ratio),
        score_table_factor=10,
        track_memory=False,
    )
    if policy is None:
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=2.0)
    workload = make_open_loop_workload(
        dataset, num_seeds=num_seeds, num_arrivals=num_arrivals, k=k, rng=rng
    )
    capacity_qps = _measure_capacity(workload, config, policy, pool_size)

    # Serial reference answers, in the HTTP response's wire shape, for the
    # bit-identical check on every completed answer.
    unique = list(dict.fromkeys(workload.queries))
    with QueryEngine(MeLoPPRSolver(workload.graph, config)) as engine:
        reference = {
            query: [
                [int(node), float(score)] for node, score in result.top_k()
            ]
            for query, result in zip(unique, engine.solve_batch(unique))
        }

    runs = tuple(
        _run_multiplier(
            workload,
            config,
            reference,
            multiplier,
            capacity_qps,
            policy,
            max_pending,
            pool_size,
            timeout_ms,
        )
        for multiplier in multipliers
    )
    return SoakStudy(
        dataset=dataset,
        capacity_qps=capacity_qps,
        num_seeds=num_seeds,
        num_arrivals=num_arrivals,
        max_pending=max_pending,
        pool_size=pool_size,
        runs=runs,
    )


def format_soak(study: SoakStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Load",
        "Offered qps",
        "Done",
        "Shed",
        "Shed %",
        "Goodput",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                f"{run.rate_qps:.0f}",
                run.completed,
                run.shed,
                f"{run.shed_rate:.0%}",
                f"{run.goodput_qps:.1f}",
                f"{run.p50_ms:.2f}",
                f"{run.p95_ms:.2f}",
                f"{run.p99_ms:.2f}",
            ]
        )
    title = (
        f"E15 — HTTP soak/overload on {study.dataset} "
        f"(capacity {study.capacity_qps:.0f} qps, {study.num_arrivals} "
        f"arrivals/multiple, admission bound {study.max_pending}; overload "
        f"goodput degradation {study.overload_degradation:.0%})"
    )
    return format_table(headers, rows, title=title)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table (and optionally JSON)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="G1")
    parser.add_argument("--num-seeds", type=int, default=5)
    parser.add_argument("--num-arrivals", type=int, default=60)
    parser.add_argument(
        "--multipliers", type=float, nargs="+", default=[0.5, 1.0, 2.0, 10.0]
    )
    parser.add_argument("--max-pending", type=int, default=8)
    parser.add_argument("--pool-size", type=int, default=16)
    parser.add_argument("--timeout-ms", type=float, default=None)
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_soak_study(
        dataset=args.dataset,
        num_seeds=args.num_seeds,
        num_arrivals=args.num_arrivals,
        multipliers=tuple(args.multipliers),
        max_pending=args.max_pending,
        pool_size=args.pool_size,
        timeout_ms=args.timeout_ms,
    )
    print(format_soak(study))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(study.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
