"""Experiment E9 — batched serving throughput (engine, cache, backends).

This study is not a paper artefact: it characterises the query-serving
engine added on top of the reproduction.  A repeated-seed workload (hot
seeds queried many times, as a production traffic mix would) is answered
four ways — serial/cold, serial/cached, threaded/cold, threaded/cached —
and the study reports wall-clock throughput, mean latency, the sub-graph
cache hit rate and the speedup over the serial cold-cache baseline.

Answers are verified identical across all configurations before the study
returns, so the numbers always describe equivalent work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.reporting import format_ratio, format_table
from repro.experiments.workloads import PAPER_STAGE_SPLIT, make_repeated_seed_workload
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving.backends import ExecutionBackend, make_backend
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine
from repro.utils.rng import RngLike

__all__ = ["ServingRun", "ServingStudy", "run_serving_study", "format_serving"]


@dataclass(frozen=True)
class ServingRun:
    """One engine configuration's measurements over the workload."""

    label: str
    backend: str
    cache_enabled: bool
    num_queries: int
    wall_seconds: float
    throughput_qps: float
    mean_latency_seconds: float
    cache_hit_rate: Optional[float]
    speedup_vs_baseline: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "backend": self.backend,
            "cache_enabled": self.cache_enabled,
            "num_queries": self.num_queries,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "mean_latency_seconds": self.mean_latency_seconds,
            "cache_hit_rate": self.cache_hit_rate,
            "speedup_vs_baseline": self.speedup_vs_baseline,
        }


@dataclass(frozen=True)
class ServingStudy:
    """The full serial/threaded x cold/cached sweep."""

    dataset: str
    num_seeds: int
    repeat_factor: int
    num_workers: int
    k: int
    runs: Tuple[ServingRun, ...]

    def by_label(self) -> Dict[str, ServingRun]:
        """Runs keyed by configuration label."""
        return {run.label: run for run in self.runs}

    @property
    def baseline(self) -> ServingRun:
        """The serial cold-cache reference run."""
        return self.runs[0]

    @property
    def best(self) -> ServingRun:
        """The highest-throughput run."""
        return max(self.runs, key=lambda run: run.throughput_qps)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "num_seeds": self.num_seeds,
            "repeat_factor": self.repeat_factor,
            "num_workers": self.num_workers,
            "k": self.k,
            "runs": [run.as_dict() for run in self.runs],
        }


def run_serving_study(
    dataset: str = "G1",
    num_seeds: int = 8,
    repeat_factor: int = 4,
    num_workers: int = 4,
    k: int = 100,
    selection_ratio: float = 0.02,
    rng: RngLike = 17,
) -> ServingStudy:
    """Measure batched serving throughput across backends and cache settings.

    Parameters
    ----------
    dataset:
        Dataset key of the host graph.
    num_seeds:
        Distinct hot seeds in the workload.
    repeat_factor:
        How many times each seed is queried (shuffled into the batch).
    num_workers:
        Thread-pool size for the threaded configurations.
    k, selection_ratio:
        Query and solver knobs (memory tracking is disabled so wall-clock
        reflects serving work, not tracemalloc overhead).
    """
    config = MeLoPPRConfig(
        stage_lengths=PAPER_STAGE_SPLIT,
        selector=RatioSelector(selection_ratio),
        score_table_factor=10,
        track_memory=False,
    )
    graph, queries = make_repeated_seed_workload(dataset, num_seeds, repeat_factor, k, rng)

    def make_engine(backend: ExecutionBackend, cached: bool) -> QueryEngine:
        return QueryEngine(
            MeLoPPRSolver(graph, config),
            backend=backend,
            cache=SubgraphCache() if cached else None,
        )

    configurations = (
        ("serial-cold", "serial", False),
        ("serial-cached", "serial", True),
        (f"threads{num_workers}-cold", f"thread:{num_workers}", False),
        (f"threads{num_workers}-cached", f"thread:{num_workers}", True),
    )

    runs: List[ServingRun] = []
    reference_top_k: Optional[List[List[int]]] = None
    baseline_qps = 0.0
    for label, backend_spec, cached in configurations:
        with make_engine(make_backend(backend_spec), cached) as engine:
            results = engine.solve_batch(queries)
            stats = engine.stats()
        top_k = [result.top_k_nodes() for result in results]
        if reference_top_k is None:
            reference_top_k = top_k
        elif top_k != reference_top_k:
            raise AssertionError(
                f"configuration {label} changed the answers — serving must be "
                "a pure performance layer"
            )
        qps = stats.throughput_qps
        if not runs:
            baseline_qps = qps
        runs.append(
            ServingRun(
                label=label,
                backend=stats.backend,
                cache_enabled=cached,
                num_queries=stats.queries_served,
                wall_seconds=stats.wall_seconds,
                throughput_qps=qps,
                mean_latency_seconds=stats.mean_latency_seconds,
                cache_hit_rate=None if stats.cache is None else stats.cache.hit_rate,
                speedup_vs_baseline=(qps / baseline_qps if baseline_qps > 0 else 0.0),
            )
        )
    return ServingStudy(
        dataset=dataset,
        num_seeds=num_seeds,
        repeat_factor=repeat_factor,
        num_workers=num_workers,
        k=k,
        runs=tuple(runs),
    )


def format_serving(study: ServingStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Configuration",
        "Backend",
        "Cache",
        "Queries",
        "Wall (s)",
        "QPS",
        "Mean lat (ms)",
        "Hit rate",
        "Speedup",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                run.backend,
                "on" if run.cache_enabled else "off",
                run.num_queries,
                f"{run.wall_seconds:.3f}",
                f"{run.throughput_qps:.1f}",
                f"{run.mean_latency_seconds * 1e3:.2f}",
                "-" if run.cache_hit_rate is None else f"{run.cache_hit_rate:.0%}",
                format_ratio(run.speedup_vs_baseline),
            ]
        )
    title = (
        f"E9 — serving throughput on {study.dataset} "
        f"({study.num_seeds} hot seeds x{study.repeat_factor}, "
        f"{study.num_workers} workers)"
    )
    return format_table(headers, rows, title=title)
