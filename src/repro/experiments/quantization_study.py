"""Experiment E6 — fixed-point precision-loss study (Sec. V-A of the paper).

The FPGA datapath represents scores as 32-bit integers with the seed node set
to ``Max = d * |G_L(s)|`` and the decay multiplication realised as a 16-bit
numerator and a ``q``-bit shift.  The paper reports:

* ``d`` = average degree of ``G_L(s)``   -> precision loss below 4 %;
* ``d`` = maximum degree of ``G_L(s)``   -> precision loss below 0.001 %;
* the deployed configuration uses ``d`` = half the maximum degree, ``q = 10``.

The study runs the integer diffusion next to the floating-point diffusion on
the same depth-``L`` ego sub-graphs and reports the top-k precision of the
integer result against the float result for each scaling rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.experiments.reporting import format_table
from repro.experiments.workloads import (
    PAPER_ALPHA,
    PAPER_K,
    PAPER_LENGTH,
    make_workload,
)
from repro.graph.bfs import extract_ego_subgraph
from repro.meloppr.fixed_point import FixedPointFormat, fixed_point_diffusion
from repro.ppr.metrics import precision_at_k
from repro.utils.rng import RngLike

__all__ = ["QuantizationRow", "QuantizationStudy", "run_quantization_study", "format_quantization"]

#: The degree-scaling rules compared in Sec. V-A.
PAPER_SCALES: Tuple[str, ...] = ("average", "half-max", "max")


@dataclass(frozen=True)
class QuantizationRow:
    """Precision of the integer datapath under one degree-scaling rule."""

    scale_rule: str
    mean_precision: float
    min_precision: float
    mean_precision_loss: float


@dataclass(frozen=True)
class QuantizationStudy:
    """The full Sec. V-A sweep."""

    dataset: str
    num_seeds: int
    k: int
    shift_bits: int
    rows: Tuple[QuantizationRow, ...]

    def by_rule(self) -> Dict[str, QuantizationRow]:
        """Rows keyed by scaling rule."""
        return {row.scale_rule: row for row in self.rows}


def _degree_scale(rule: str, degrees: np.ndarray) -> float:
    """Map a scaling rule name to the degree value ``d`` of Sec. V-A."""
    if degrees.size == 0:
        return 1.0
    if rule == "average":
        return float(max(degrees.mean(), 1.0))
    if rule == "half-max":
        return float(max(degrees.max() / 2.0, 1.0))
    if rule == "max":
        return float(max(degrees.max(), 1.0))
    raise ValueError(f"unknown scale rule {rule!r}")


def run_quantization_study(
    dataset: str = "G1",
    scale_rules: Sequence[str] = PAPER_SCALES,
    num_seeds: int = 10,
    k: int = PAPER_K,
    shift_bits: int = 10,
    rng: RngLike = 23,
    scale: Optional[float] = None,
) -> QuantizationStudy:
    """Run the integer-vs-float precision comparison of Sec. V-A."""
    workload = make_workload(
        dataset,
        num_seeds=num_seeds,
        k=k,
        length=PAPER_LENGTH,
        alpha=PAPER_ALPHA,
        rng=rng,
        scale=scale,
    )
    per_rule_precisions: Dict[str, List[float]] = {rule: [] for rule in scale_rules}

    for query in workload.queries:
        subgraph, _ = extract_ego_subgraph(workload.graph, query.seed, query.length)
        local_seed = subgraph.to_local(query.seed)
        initial = seed_vector(subgraph.num_nodes, local_seed)
        float_result = graph_diffusion(
            subgraph.graph, initial, query.length, query.alpha
        )
        float_order = np.argsort(-float_result.accumulated, kind="stable")
        float_topk = [int(node) for node in float_order[: query.k]]

        degrees = subgraph.graph.degrees()
        for rule in scale_rules:
            fmt = FixedPointFormat.for_subgraph(
                alpha=query.alpha,
                subgraph_nodes=subgraph.num_nodes,
                degree_scale=_degree_scale(rule, degrees),
                shift_bits=shift_bits,
            )
            int_result = fixed_point_diffusion(
                subgraph.graph, local_seed, query.length, fmt
            )
            int_order = np.argsort(-int_result.accumulated_int, kind="stable")
            int_topk = [int(node) for node in int_order[: query.k]]
            per_rule_precisions[rule].append(
                precision_at_k(int_topk, float_topk, min(query.k, subgraph.num_nodes))
            )

    rows = []
    for rule in scale_rules:
        values = np.asarray(per_rule_precisions[rule])
        rows.append(
            QuantizationRow(
                scale_rule=rule,
                mean_precision=float(values.mean()),
                min_precision=float(values.min()),
                mean_precision_loss=float(1.0 - values.mean()),
            )
        )
    return QuantizationStudy(
        dataset=dataset,
        num_seeds=num_seeds,
        k=k,
        shift_bits=shift_bits,
        rows=tuple(rows),
    )


def format_quantization(study: QuantizationStudy) -> str:
    """Render the study as a text table."""
    headers = ["Degree scale d", "Mean precision", "Min precision", "Mean loss"]
    rows = [
        [
            row.scale_rule,
            f"{row.mean_precision:.3%}",
            f"{row.min_precision:.3%}",
            f"{row.mean_precision_loss:.3%}",
        ]
        for row in study.rows
    ]
    title = (
        f"Sec. V-A — fixed-point precision loss on {study.dataset} "
        f"(q={study.shift_bits}, {study.num_seeds} seeds, k={study.k})"
    )
    return format_table(headers, rows, title=title)
