"""Experiment E11 — latency under load (arrival rate × batching policy).

The serving studies so far (E9, E10) are closed-loop: they hand the engine a
ready-made batch and measure throughput.  Online serving is open-loop — a
Poisson source submits queries at its own rate whether or not the server
keeps up — so tail latency and shed rate, not throughput alone, are the
figures of merit.  This study replays one Poisson-timed hot-seed workload
(:func:`~repro.experiments.workloads.make_open_loop_workload`) through the
async frontend for every ``arrival rate × batching policy`` combination and
reports completed/shed/expired counts, achieved throughput, the p50/p95/p99
end-to-end latency and the micro-batcher's dedup and batch-size counters.

Every completed answer is verified **bit-identical** to a serial
``QueryEngine.solve_batch`` reference before the study returns — the
frontend must be a pure scheduling layer, never a numerical one.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_table
from repro.experiments.workloads import (
    PAPER_STAGE_SPLIT,
    OpenLoopWorkload,
    make_open_loop_workload,
)
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery, PPRResult
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine
from repro.serving.frontend.admission import (
    AdmissionController,
    DeadlineExceededError,
    QueryShedError,
)
from repro.serving.frontend.batcher import BatchPolicy, MicroBatcher
from repro.utils.rng import RngLike

__all__ = [
    "LatencyRun",
    "LatencyStudy",
    "run_latency_study",
    "format_latency",
    "main",
]


@dataclass(frozen=True)
class LatencyRun:
    """One ``arrival rate × policy`` configuration's measurements."""

    label: str
    rate_qps: float
    max_batch_size: int
    max_wait_ms: float
    dedup: bool
    offered: int
    completed: int
    shed: int
    expired: int
    wall_seconds: float
    throughput_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    mean_batch_size: float
    dedup_hits: int
    cache_hit_rate: float

    @property
    def shed_rate(self) -> float:
        """Fraction of offered queries shed (0.0 before any traffic)."""
        return self.shed / self.offered if self.offered else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "rate_qps": self.rate_qps,
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "dedup": self.dedup,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "expired": self.expired,
            "shed_rate": self.shed_rate,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "mean_batch_size": self.mean_batch_size,
            "dedup_hits": self.dedup_hits,
            "cache_hit_rate": self.cache_hit_rate,
        }


@dataclass(frozen=True)
class LatencyStudy:
    """The full rate × policy sweep on one open-loop workload."""

    dataset: str
    num_seeds: int
    num_arrivals: int
    k: int
    max_pending: int
    timeout_ms: Optional[float]
    runs: Tuple[LatencyRun, ...]

    def by_label(self) -> Dict[str, LatencyRun]:
        """Runs keyed by configuration label."""
        return {run.label: run for run in self.runs}

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "num_seeds": self.num_seeds,
            "num_arrivals": self.num_arrivals,
            "k": self.k,
            "max_pending": self.max_pending,
            "timeout_ms": self.timeout_ms,
            "runs": [run.as_dict() for run in self.runs],
        }


async def _drive_open_loop(
    batcher: MicroBatcher,
    queries: Sequence[PPRQuery],
    arrivals: Sequence[float],
    timeout_ms: Optional[float],
) -> Tuple[List[object], float]:
    """Submit every query at its arrival time; returns (outcomes, wall)."""
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def fire(query: PPRQuery, at: float) -> PPRResult:
        delay = start + at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        return await batcher.submit(query, timeout_ms=timeout_ms)

    tasks = [
        asyncio.ensure_future(fire(query, at))
        for query, at in zip(queries, arrivals)
    ]
    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    return list(outcomes), loop.time() - start


def _run_configuration(
    workload: OpenLoopWorkload,
    config: MeLoPPRConfig,
    reference: Dict[PPRQuery, Dict[int, float]],
    rate_qps: float,
    policy: BatchPolicy,
    max_pending: int,
    timeout_ms: Optional[float],
) -> LatencyRun:
    label = f"{rate_qps:g}qps-{policy.label}"
    engine = QueryEngine(
        MeLoPPRSolver(workload.graph, config), cache=SubgraphCache()
    )
    admission = AdmissionController(max_pending=max_pending)
    batcher = MicroBatcher(engine, policy, admission)
    arrivals = workload.arrivals_at(rate_qps)

    async def run() -> Tuple[List[object], float]:
        async with batcher:
            return await _drive_open_loop(
                batcher, workload.queries, arrivals, timeout_ms
            )

    try:
        outcomes, wall = asyncio.run(run())
        completed = shed = expired = 0
        for query, outcome in zip(workload.queries, outcomes):
            if isinstance(outcome, PPRResult):
                completed += 1
                if dict(outcome.scores.items()) != reference[query]:
                    raise AssertionError(
                        f"configuration {label} changed seed {query.seed}'s "
                        "scores — the async frontend must be bit-identical to "
                        "the serial engine"
                    )
            elif isinstance(outcome, QueryShedError):
                shed += 1
            elif isinstance(outcome, DeadlineExceededError):
                expired += 1
            else:
                raise outcome  # unexpected failure: surface it
        stats = batcher.stats()
        latency = stats.admission.latency
    finally:
        engine.close()

    return LatencyRun(
        label=label,
        rate_qps=rate_qps,
        max_batch_size=policy.max_batch_size,
        max_wait_ms=policy.max_wait_ms,
        dedup=policy.dedup,
        offered=len(workload.queries),
        completed=completed,
        shed=shed,
        expired=expired,
        wall_seconds=wall,
        throughput_qps=completed / wall if wall > 0 else 0.0,
        p50_ms=latency.p50_seconds * 1e3,
        p95_ms=latency.p95_seconds * 1e3,
        p99_ms=latency.p99_seconds * 1e3,
        mean_ms=latency.mean_seconds * 1e3,
        max_ms=latency.max_seconds * 1e3,
        mean_batch_size=stats.mean_batch_size,
        dedup_hits=stats.dedup_hits,
        cache_hit_rate=(
            0.0 if stats.engine.cache is None else stats.engine.cache.hit_rate
        ),
    )


def run_latency_study(
    dataset: str = "G1",
    num_seeds: int = 5,
    num_arrivals: int = 40,
    rates_qps: Sequence[float] = (50.0, 4000.0),
    policies: Sequence[BatchPolicy] = (
        BatchPolicy(max_batch_size=1, max_wait_ms=0.0),
        BatchPolicy(max_batch_size=8, max_wait_ms=2.0),
    ),
    k: int = 100,
    selection_ratio: float = 0.02,
    max_pending: int = 16,
    timeout_ms: Optional[float] = None,
    rng: RngLike = 33,
) -> LatencyStudy:
    """Sweep arrival rates × batching policies on one open-loop workload.

    Parameters
    ----------
    dataset:
        Dataset key of the host graph.
    num_seeds, num_arrivals:
        Hot-seed pool size and number of timed arrivals.
    rates_qps:
        Offered arrival rates; include one well above the engine's service
        rate to exercise shedding.
    policies:
        Batching policies to compare (``BatchPolicy(1, 0)`` is the
        no-batching baseline).
    k, selection_ratio:
        Query and solver knobs (memory tracking off, as in E9/E10).
    max_pending:
        Admission bound of every configuration.
    timeout_ms:
        Optional per-query deadline applied to every submission.
    """
    config = MeLoPPRConfig(
        stage_lengths=PAPER_STAGE_SPLIT,
        selector=RatioSelector(selection_ratio),
        score_table_factor=10,
        track_memory=False,
    )
    workload = make_open_loop_workload(
        dataset, num_seeds=num_seeds, num_arrivals=num_arrivals, k=k, rng=rng
    )

    # Serial reference scores, one solve per distinct query: what every
    # completed frontend answer must match bit-for-bit.
    unique = list(dict.fromkeys(workload.queries))
    with QueryEngine(MeLoPPRSolver(workload.graph, config)) as engine:
        reference = {
            query: dict(result.scores.items())
            for query, result in zip(unique, engine.solve_batch(unique))
        }

    runs: List[LatencyRun] = []
    for rate in rates_qps:
        for policy in policies:
            runs.append(
                _run_configuration(
                    workload,
                    config,
                    reference,
                    rate,
                    policy,
                    max_pending,
                    timeout_ms,
                )
            )
    return LatencyStudy(
        dataset=dataset,
        num_seeds=num_seeds,
        num_arrivals=num_arrivals,
        k=k,
        max_pending=max_pending,
        timeout_ms=timeout_ms,
        runs=tuple(runs),
    )


def format_latency(study: LatencyStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Configuration",
        "Offered qps",
        "Done",
        "Shed",
        "Expired",
        "QPS",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "Batch",
        "Dedup",
        "Hit rate",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                f"{run.rate_qps:g}",
                run.completed,
                run.shed,
                run.expired,
                f"{run.throughput_qps:.1f}",
                f"{run.p50_ms:.2f}",
                f"{run.p95_ms:.2f}",
                f"{run.p99_ms:.2f}",
                f"{run.mean_batch_size:.1f}",
                run.dedup_hits,
                f"{run.cache_hit_rate:.0%}",
            ]
        )
    title = (
        f"E11 — latency under load on {study.dataset} "
        f"({study.num_arrivals} Poisson arrivals over {study.num_seeds} hot "
        f"seeds, admission bound {study.max_pending})"
    )
    return format_table(headers, rows, title=title)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table (and optionally JSON)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="G1")
    parser.add_argument("--num-seeds", type=int, default=5)
    parser.add_argument("--num-arrivals", type=int, default=40)
    parser.add_argument(
        "--rates", type=float, nargs="+", default=[50.0, 4000.0]
    )
    parser.add_argument("--timeout-ms", type=float, default=None)
    parser.add_argument("--max-pending", type=int, default=16)
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_latency_study(
        dataset=args.dataset,
        num_seeds=args.num_seeds,
        num_arrivals=args.num_arrivals,
        rates_qps=tuple(args.rates),
        max_pending=args.max_pending,
        timeout_ms=args.timeout_ms,
    )
    print(format_latency(study))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(study.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
