"""Experiment E8 (ablation) — choice of the stage split ``L = l1 + l2 (+ ...)``.

The paper fixes ``l1 = l2 = 3`` and notes the decomposition extends to more
terms.  This ablation sweeps alternative splits of the same total length
(``(1,5)``, ``(2,4)``, ``(3,3)``, ``(4,2)``, ``(5,1)`` and the three-stage
``(2,2,2)``) and reports, for each:

* the top-k precision at a fixed selection ratio,
* the peak sub-graph size (the memory proxy — a large ``l1`` drags the
  stage-one sub-graph back towards ``G_L(s)``), and
* the total diffusion work.

The expected shape: balanced splits minimise the peak sub-graph size, while
very unbalanced splits either lose precision (small ``l1`` leaves most mass
un-diffused before selection) or lose the memory benefit (large ``l1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.workloads import (
    PAPER_ALPHA,
    PAPER_K,
    PAPER_LENGTH,
    make_workload,
)
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision
from repro.utils.rng import RngLike

__all__ = ["StageSplitRow", "StageSplitStudy", "run_stage_split_ablation", "format_stage_split"]

#: Splits of the paper's L = 6 compared by the ablation.
DEFAULT_SPLITS: Tuple[Tuple[int, ...], ...] = (
    (1, 5),
    (2, 4),
    (3, 3),
    (4, 2),
    (5, 1),
    (2, 2, 2),
)


@dataclass(frozen=True)
class StageSplitRow:
    """Outcome of one stage split."""

    stage_lengths: Tuple[int, ...]
    precision: float
    mean_peak_subgraph_nodes: float
    mean_total_tasks: float
    mean_elapsed_seconds: float


@dataclass(frozen=True)
class StageSplitStudy:
    """The full stage-split ablation."""

    dataset: str
    num_seeds: int
    selection_ratio: float
    rows: Tuple[StageSplitRow, ...]

    def best_precision(self) -> StageSplitRow:
        """Row with the highest precision."""
        return max(self.rows, key=lambda row: row.precision)

    def smallest_memory(self) -> StageSplitRow:
        """Row with the smallest peak sub-graph."""
        return min(self.rows, key=lambda row: row.mean_peak_subgraph_nodes)


def run_stage_split_ablation(
    dataset: str = "G2",
    splits: Sequence[Sequence[int]] = DEFAULT_SPLITS,
    num_seeds: int = 8,
    selection_ratio: float = 0.05,
    rng: RngLike = 31,
    scale: Optional[float] = None,
) -> StageSplitStudy:
    """Run the stage-split ablation on one dataset."""
    workload = make_workload(
        dataset,
        num_seeds=num_seeds,
        k=PAPER_K,
        length=PAPER_LENGTH,
        alpha=PAPER_ALPHA,
        rng=rng,
        scale=scale,
    )
    exact = [
        LocalPPRSolver(workload.graph, track_memory=False).solve(q)
        for q in workload.queries
    ]

    rows: List[StageSplitRow] = []
    for split in splits:
        split = tuple(int(length) for length in split)
        if sum(split) != PAPER_LENGTH:
            raise ValueError(
                f"split {split} does not sum to the paper's L={PAPER_LENGTH}"
            )
        config = MeLoPPRConfig(
            stage_lengths=split,
            selector=RatioSelector(selection_ratio),
            score_table_factor=10,
            track_memory=False,
        )
        solver = MeLoPPRSolver(workload.graph, config)
        precisions: List[float] = []
        peaks: List[float] = []
        tasks: List[float] = []
        elapsed: List[float] = []
        for query, reference in zip(workload.queries, exact):
            result = solver.solve(query)
            precisions.append(result_precision(result, reference))
            peaks.append(float(result.metadata["max_subgraph_nodes"]))
            tasks.append(float(result.metadata["num_tasks"]))
            elapsed.append(result.elapsed_seconds)
        rows.append(
            StageSplitRow(
                stage_lengths=split,
                precision=float(np.mean(precisions)),
                mean_peak_subgraph_nodes=float(np.mean(peaks)),
                mean_total_tasks=float(np.mean(tasks)),
                mean_elapsed_seconds=float(np.mean(elapsed)),
            )
        )
    return StageSplitStudy(
        dataset=dataset,
        num_seeds=num_seeds,
        selection_ratio=selection_ratio,
        rows=tuple(rows),
    )


def format_stage_split(study: StageSplitStudy) -> str:
    """Render the ablation as a text table."""
    headers = [
        "Split",
        "Precision",
        "Peak sub-graph |V|",
        "Tasks per query",
        "CPU time (ms)",
    ]
    rows = [
        [
            "+".join(str(length) for length in row.stage_lengths),
            f"{row.precision:.1%}",
            f"{row.mean_peak_subgraph_nodes:.0f}",
            f"{row.mean_total_tasks:.1f}",
            f"{row.mean_elapsed_seconds * 1e3:.2f}",
        ]
        for row in study.rows
    ]
    title = (
        f"Ablation — stage split choice on {study.dataset} "
        f"(ratio {study.selection_ratio:.0%}, {study.num_seeds} seeds)"
    )
    return format_table(headers, rows, title=title)
