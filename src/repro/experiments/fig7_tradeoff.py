"""Experiment E5 — precision-latency trade-off across all graphs (Fig. 7).

Fig. 7 shows, for each of the six graphs and a sweep of next-stage node
budgets, four series:

* the speedup of **MeLoPPR-CPU** over the LocalPPR-CPU baseline (yellow bars;
  values range from slowdowns at high precision to ~2.6x),
* the speedup of **MeLoPPR-FPGA** (P = 16) over the same baseline (grey bars /
  annotated values; 3.1x–707.9x depending on graph and operating point),
* the fraction of MeLoPPR-FPGA latency spent in CPU-side BFS (light-blue
  bars), which grows as the FPGA part shrinks, and
* the resulting top-k precision (dark-blue stars), which rises as more
  next-stage nodes are computed.

The headline shape to reproduce: precision improves and speedup decreases as
the number of computed next-stage nodes grows; the FPGA implementation is
consistently faster than the CPU one; and the BFS share of the co-designed
system grows with the node budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.reporting import format_ratio, format_table
from repro.experiments.workloads import (
    PAPER_ALPHA,
    PAPER_K,
    PAPER_LENGTH,
    PAPER_STAGE_SPLIT,
    Workload,
    make_workload,
)
from repro.hardware.accelerator import FPGAAccelerator
from repro.hardware.cosim import tasks_from_records
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision
from repro.utils.rng import RngLike

__all__ = ["TradeoffPoint", "TradeoffStudy", "run_fig7", "format_fig7"]

#: Selection ratios forming the operating points of Fig. 7 (left-to-right the
#: paper increases the number of computed next-stage nodes).
PAPER_RATIOS: Tuple[float, ...] = (0.01, 0.02, 0.05, 0.10)

#: FPGA parallelism used for the Fig. 7 results.
PAPER_PARALLELISM = 16


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point (dataset x selection ratio) of Fig. 7."""

    dataset: str
    ratio: float
    precision: float
    baseline_seconds: float
    meloppr_cpu_seconds: float
    meloppr_fpga_seconds: float
    bfs_fraction: float
    mean_next_stage_tasks: float

    @property
    def cpu_speedup(self) -> float:
        """MeLoPPR-CPU speedup over the LocalPPR-CPU baseline."""
        if self.meloppr_cpu_seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.meloppr_cpu_seconds

    @property
    def fpga_speedup(self) -> float:
        """MeLoPPR-FPGA speedup over the LocalPPR-CPU baseline."""
        if self.meloppr_fpga_seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.meloppr_fpga_seconds


@dataclass(frozen=True)
class TradeoffStudy:
    """The full Fig. 7 sweep."""

    points: Tuple[TradeoffPoint, ...]
    num_seeds: int
    parallelism: int

    def for_dataset(self, dataset: str) -> List[TradeoffPoint]:
        """Points of one dataset, ordered by increasing ratio."""
        return sorted(
            (point for point in self.points if point.dataset == dataset),
            key=lambda point: point.ratio,
        )

    def datasets(self) -> Tuple[str, ...]:
        """Datasets present in the study, in first-appearance order."""
        seen: List[str] = []
        for point in self.points:
            if point.dataset not in seen:
                seen.append(point.dataset)
        return tuple(seen)


def run_fig7(
    datasets: Sequence[str] = ("G1", "G2", "G3", "G4", "G5", "G6"),
    ratios: Sequence[float] = PAPER_RATIOS,
    num_seeds: int = 5,
    parallelism: int = PAPER_PARALLELISM,
    rng: RngLike = 17,
    scale: Optional[float] = None,
) -> TradeoffStudy:
    """Run the Fig. 7 precision-latency trade-off sweep.

    For every dataset and selection ratio the study measures the LocalPPR-CPU
    baseline wall-clock latency, the MeLoPPR-CPU wall-clock latency, the
    modelled MeLoPPR-FPGA latency (measured CPU BFS + modelled FPGA time at
    ``parallelism`` PEs) and the top-k precision against the exact result.
    """
    points: List[TradeoffPoint] = []
    for dataset_index, dataset in enumerate(datasets):
        workload = make_workload(
            dataset,
            num_seeds=num_seeds,
            k=PAPER_K,
            length=PAPER_LENGTH,
            alpha=PAPER_ALPHA,
            rng=(int(rng) + dataset_index if isinstance(rng, int) else rng),
            scale=scale,
        )
        baseline_solver = LocalPPRSolver(workload.graph, track_memory=False)
        baseline_results = [baseline_solver.solve(q) for q in workload.queries]
        baseline_seconds = float(
            np.mean([r.elapsed_seconds for r in baseline_results])
        )

        accelerator = FPGAAccelerator(
            parallelism=parallelism, k=PAPER_K, score_table_factor=10
        )
        for ratio in ratios:
            config = MeLoPPRConfig(
                stage_lengths=PAPER_STAGE_SPLIT,
                selector=RatioSelector(ratio),
                score_table_factor=10,
                track_memory=False,
            )
            solver = MeLoPPRSolver(workload.graph, config)
            precisions: List[float] = []
            cpu_seconds: List[float] = []
            fpga_seconds: List[float] = []
            bfs_fractions: List[float] = []
            task_counts: List[float] = []
            for query, exact in zip(workload.queries, baseline_results):
                result = solver.solve(query)
                precisions.append(result_precision(result, exact))
                cpu_seconds.append(result.elapsed_seconds)
                records = result.metadata["tasks"]
                tasks = tasks_from_records(records, result.metadata["stage_lengths"])
                report = accelerator.execute(tasks)
                bfs_time = result.timing.seconds.get("bfs", 0.0)
                total = bfs_time + report.fpga_seconds
                fpga_seconds.append(total)
                bfs_fractions.append(bfs_time / total if total > 0 else 0.0)
                task_counts.append(float(result.metadata["num_next_stage_tasks"]))
            points.append(
                TradeoffPoint(
                    dataset=dataset,
                    ratio=float(ratio),
                    precision=float(np.mean(precisions)),
                    baseline_seconds=baseline_seconds,
                    meloppr_cpu_seconds=float(np.mean(cpu_seconds)),
                    meloppr_fpga_seconds=float(np.mean(fpga_seconds)),
                    bfs_fraction=float(np.mean(bfs_fractions)),
                    mean_next_stage_tasks=float(np.mean(task_counts)),
                )
            )
    return TradeoffStudy(
        points=tuple(points), num_seeds=num_seeds, parallelism=parallelism
    )


def format_fig7(study: TradeoffStudy) -> str:
    """Render the sweep as a text table mirroring the Fig. 7 annotations."""
    headers = [
        "Graph",
        "Ratio",
        "Precision",
        "MeLoPPR-CPU speedup",
        "MeLoPPR-FPGA speedup",
        "BFS fraction",
        "Next-stage tasks",
    ]
    rows = []
    for dataset in study.datasets():
        for point in study.for_dataset(dataset):
            rows.append(
                [
                    point.dataset,
                    f"{point.ratio:.0%}",
                    f"{point.precision:.1%}",
                    format_ratio(point.cpu_speedup),
                    format_ratio(point.fpga_speedup),
                    f"{point.bfs_fraction:.0%}",
                    f"{point.mean_next_stage_tasks:.1f}",
                ]
            )
    title = (
        f"Fig. 7 — precision-latency trade-off (P={study.parallelism}, "
        f"{study.num_seeds} seeds per graph)"
    )
    return format_table(headers, rows, title=title)
