"""Experiment E1 — FPGA scalability study (Fig. 5 of the paper).

The paper takes G1 (citeseer) as a case study and measures the latency of the
graph-diffusion phase of a MeLoPPR query when the FPGA parallelism ``P`` grows
from 1 to 16 at 100 MHz, next to the CPU execution of the same diffusions.
The latency is split into CPU, FPGA-scheduling, FPGA-diffusion and
FPGA-data-movement.  The observations to reproduce:

* increasing ``P`` reduces the diffusion latency, over 10x from ``P = 1`` to
  ``P = 16``;
* the scheduling overhead (conflicting reads/writes between the ``P``
  diffusers and the score tables) stays below ~20 % of the FPGA compute time
  at ``P = 2`` and below ~40 % for larger ``P``;
* the data-movement and CPU components do not shrink with ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.reporting import format_milliseconds, format_table
from repro.experiments.workloads import (
    PAPER_ALPHA,
    PAPER_K,
    PAPER_LENGTH,
    PAPER_STAGE_SPLIT,
    make_workload,
)
from repro.hardware.accelerator import FPGAAccelerator
from repro.hardware.pe import DiffusionTask
from repro.utils.rng import RngLike

__all__ = ["ScalabilityPoint", "ScalabilityStudy", "run_fig5", "format_fig5"]

#: Parallelism values swept in Fig. 5.
PAPER_PARALLELISMS: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ScalabilityPoint:
    """Latency breakdown at one parallelism value (one bar group of Fig. 5)."""

    parallelism: int
    cpu_seconds: float
    fpga_scheduling_seconds: float
    fpga_diffusion_seconds: float
    fpga_data_movement_seconds: float

    @property
    def fpga_seconds(self) -> float:
        """Total modelled FPGA time."""
        return (
            self.fpga_scheduling_seconds
            + self.fpga_diffusion_seconds
            + self.fpga_data_movement_seconds
        )

    @property
    def total_seconds(self) -> float:
        """End-to-end latency of the FPGA path (compute + data movement)."""
        return self.fpga_seconds

    @property
    def scheduling_fraction(self) -> float:
        """Scheduling share of the FPGA compute time (diffusion + scheduling)."""
        compute = self.fpga_scheduling_seconds + self.fpga_diffusion_seconds
        if compute == 0:
            return 0.0
        return self.fpga_scheduling_seconds / compute


@dataclass(frozen=True)
class ScalabilityStudy:
    """The full Fig. 5 sweep."""

    dataset: str
    num_queries: int
    points: Tuple[ScalabilityPoint, ...]

    def speedup_from_first(self) -> Dict[int, float]:
        """FPGA-compute speedup of each parallelism relative to ``P = 1``."""
        base = self.points[0]
        base_compute = base.fpga_diffusion_seconds + base.fpga_scheduling_seconds
        result = {}
        for point in self.points:
            compute = point.fpga_diffusion_seconds + point.fpga_scheduling_seconds
            result[point.parallelism] = base_compute / compute if compute > 0 else float("inf")
        return result


def run_fig5(
    dataset: str = "G1",
    parallelisms: Sequence[int] = PAPER_PARALLELISMS,
    num_seeds: int = 10,
    next_stage_nodes: int = 32,
    rng: RngLike = 7,
    scale: Optional[float] = None,
) -> ScalabilityStudy:
    """Run the Fig. 5 scalability sweep.

    For every sampled seed node the full MeLoPPR diffusion phase (the
    stage-one diffusion plus every selected next-stage diffusion — the work
    the FPGA off-loads) is computed once with the software solver; its task
    list is then replayed on the FPGA model at every parallelism value.  The
    stage-one diffusion is split across the ``P`` diffusers (intra-diffusion
    parallelism) while next-stage tasks are dispatched whole to idle PEs.
    The CPU bar is the wall-clock time the software kernel spends on the same
    diffusions (its ``diffusion`` timing bucket).

    ``next_stage_nodes`` defaults to 32 so the diffusion phase contains
    enough independent tasks to exercise all 16 PEs, matching the operating
    point the paper's case study examines (a precision-oriented setting).
    """
    from repro.meloppr.config import MeLoPPRConfig
    from repro.meloppr.selection import CountSelector
    from repro.meloppr.solver import MeLoPPRSolver
    from repro.hardware.cosim import tasks_from_records

    workload = make_workload(
        dataset,
        num_seeds=num_seeds,
        k=PAPER_K,
        length=PAPER_LENGTH,
        alpha=PAPER_ALPHA,
        rng=rng,
        scale=scale,
    )
    config = MeLoPPRConfig(
        stage_lengths=PAPER_STAGE_SPLIT,
        selector=CountSelector(next_stage_nodes),
        score_table_factor=10,
        track_memory=False,
    )
    solver = MeLoPPRSolver(workload.graph, config)

    per_seed_tasks: List[List[DiffusionTask]] = []
    cpu_seconds: List[float] = []
    for query in workload.queries:
        result = solver.solve(query)
        per_seed_tasks.append(
            tasks_from_records(
                result.metadata["tasks"], result.metadata["stage_lengths"]
            )
        )
        cpu_seconds.append(result.timing.seconds.get("diffusion", 0.0))

    mean_cpu_seconds = float(np.mean(cpu_seconds))
    points: List[ScalabilityPoint] = []
    for parallelism in parallelisms:
        accelerator = FPGAAccelerator(
            parallelism=parallelism, k=PAPER_K, score_table_factor=10
        )
        scheduling_values = []
        diffusion_values = []
        movement_values = []
        for tasks in per_seed_tasks:
            report = accelerator.execute(tasks)
            scheduling_values.append(report.scheduling_seconds)
            diffusion_values.append(report.diffusion_seconds)
            movement_values.append(report.data_movement_seconds)
        points.append(
            ScalabilityPoint(
                parallelism=parallelism,
                cpu_seconds=mean_cpu_seconds,
                fpga_scheduling_seconds=float(np.mean(scheduling_values)),
                fpga_diffusion_seconds=float(np.mean(diffusion_values)),
                fpga_data_movement_seconds=float(np.mean(movement_values)),
            )
        )

    return ScalabilityStudy(
        dataset=dataset, num_queries=workload.num_queries, points=tuple(points)
    )


def format_fig5(study: ScalabilityStudy) -> str:
    """Render the sweep as a text table mirroring the Fig. 5 bar groups."""
    headers = [
        "P",
        "CPU (ms)",
        "FPGA-Scheduling (ms)",
        "FPGA-Diffusion (ms)",
        "FPGA-Data Movement (ms)",
        "FPGA total (ms)",
        "Sched. fraction",
    ]
    rows = [
        [
            point.parallelism,
            format_milliseconds(point.cpu_seconds),
            format_milliseconds(point.fpga_scheduling_seconds),
            format_milliseconds(point.fpga_diffusion_seconds),
            format_milliseconds(point.fpga_data_movement_seconds),
            format_milliseconds(point.total_seconds),
            f"{point.scheduling_fraction:.1%}",
        ]
        for point in study.points
    ]
    title = (
        f"Fig. 5 — FPGA scalability of one graph diffusion on {study.dataset} "
        f"(averaged over {study.num_queries} seeds)"
    )
    return format_table(headers, rows, title=title)
