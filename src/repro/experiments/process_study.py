"""Experiment E12 — multi-core serving scaling (serial vs threads vs processes).

This study is not a paper artefact: it characterises the process-pool
backend added on top of the reproduction.  The same repeated-seed workload
that E9 measures is answered by ``serial``, ``thread:N`` and ``process:N``
engines for every worker count in the sweep, and the study reports each
configuration's throughput, its speedup over serial, and — for every worker
count — the process pool's speedup over the *equally sized* thread pool,
which is the number that shows whether the GIL was actually the bottleneck.

Caching is enabled everywhere (the engine's sub-graph cache for serial and
threads, the per-worker caches for processes) so every configuration is the
backend's best serving setup, not a strawman.  Answers are verified
bit-identical across all configurations before the study returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_ratio, format_table
from repro.experiments.workloads import PAPER_STAGE_SPLIT, make_repeated_seed_workload
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine
from repro.serving.backends import make_backend
from repro.utils.rng import RngLike

__all__ = ["ProcessRun", "ProcessStudy", "run_process_study", "format_process"]


@dataclass(frozen=True)
class ProcessRun:
    """One backend configuration's measurements over the workload."""

    label: str
    backend: str
    workers: int
    num_queries: int
    wall_seconds: float
    throughput_qps: float
    mean_latency_seconds: float
    cache_hit_rate: Optional[float]
    speedup_vs_serial: float
    speedup_vs_threads: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "backend": self.backend,
            "workers": self.workers,
            "num_queries": self.num_queries,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "mean_latency_seconds": self.mean_latency_seconds,
            "cache_hit_rate": self.cache_hit_rate,
            "speedup_vs_serial": self.speedup_vs_serial,
            "speedup_vs_threads": self.speedup_vs_threads,
        }


@dataclass(frozen=True)
class ProcessStudy:
    """The serial / thread:N / process:N sweep over one workload."""

    dataset: str
    num_seeds: int
    repeat_factor: int
    k: int
    worker_counts: Tuple[int, ...]
    runs: Tuple[ProcessRun, ...]

    def by_label(self) -> Dict[str, ProcessRun]:
        """Runs keyed by configuration label."""
        return {run.label: run for run in self.runs}

    @property
    def baseline(self) -> ProcessRun:
        """The serial reference run."""
        return self.runs[0]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "num_seeds": self.num_seeds,
            "repeat_factor": self.repeat_factor,
            "k": self.k,
            "worker_counts": list(self.worker_counts),
            "runs": [run.as_dict() for run in self.runs],
        }


def run_process_study(
    dataset: str = "G1",
    num_seeds: int = 8,
    repeat_factor: int = 4,
    worker_counts: Sequence[int] = (2, 4),
    k: int = 100,
    selection_ratio: float = 0.02,
    rng: RngLike = 17,
) -> ProcessStudy:
    """Measure multi-core serving scaling on a repeated-seed workload.

    Parameters
    ----------
    dataset:
        Dataset key of the host graph.
    num_seeds, repeat_factor, k:
        Workload shape (same generator as E9, same rng default — the
        acceptance workload of the process backend).
    worker_counts:
        Pool sizes to sweep; each gets a ``thread:N`` and a ``process:N`` run.
    selection_ratio:
        Solver selection knob (memory tracking is disabled so wall-clock
        reflects serving work, not tracemalloc overhead).
    """
    config = MeLoPPRConfig(
        stage_lengths=PAPER_STAGE_SPLIT,
        selector=RatioSelector(selection_ratio),
        score_table_factor=10,
        track_memory=False,
    )
    graph, queries = make_repeated_seed_workload(dataset, num_seeds, repeat_factor, k, rng)

    configurations: List[Tuple[str, str, int, bool]] = [("serial", "serial", 1, True)]
    for workers in worker_counts:
        configurations.append((f"thread:{workers}", f"thread:{workers}", workers, True))
        configurations.append((f"process:{workers}", f"process:{workers}", workers, True))

    runs: List[ProcessRun] = []
    reference_top_k: Optional[List[List[int]]] = None
    serial_qps = 0.0
    thread_qps_by_workers: Dict[int, float] = {}
    for label, backend_spec, workers, cached in configurations:
        backend = make_backend(backend_spec)
        # Worker processes cache extractions themselves; the engine-level
        # cache serves the single-process backends.
        engine_cache = (
            SubgraphCache()
            if cached and not getattr(backend, "executes_stage_tasks", False)
            else None
        )
        with QueryEngine(
            MeLoPPRSolver(graph, config), backend=backend, cache=engine_cache
        ) as engine:
            results = engine.solve_batch(queries)
            stats = engine.stats()
        top_k = [result.top_k_nodes() for result in results]
        if reference_top_k is None:
            reference_top_k = top_k
        elif top_k != reference_top_k:
            raise AssertionError(
                f"configuration {label} changed the answers — backends must be "
                "a pure performance choice"
            )
        qps = stats.throughput_qps
        if label == "serial":
            serial_qps = qps
        if label.startswith("thread:"):
            thread_qps_by_workers[workers] = qps
        speedup_vs_threads: Optional[float] = None
        if label.startswith("process:") and thread_qps_by_workers.get(workers, 0.0) > 0:
            speedup_vs_threads = qps / thread_qps_by_workers[workers]
        runs.append(
            ProcessRun(
                label=label,
                backend=stats.backend,
                workers=workers,
                num_queries=stats.queries_served,
                wall_seconds=stats.wall_seconds,
                throughput_qps=qps,
                mean_latency_seconds=stats.mean_latency_seconds,
                cache_hit_rate=None if stats.cache is None else stats.cache.hit_rate,
                speedup_vs_serial=(qps / serial_qps if serial_qps > 0 else 0.0),
                speedup_vs_threads=speedup_vs_threads,
            )
        )
    return ProcessStudy(
        dataset=dataset,
        num_seeds=num_seeds,
        repeat_factor=repeat_factor,
        k=k,
        worker_counts=tuple(worker_counts),
        runs=tuple(runs),
    )


def format_process(study: ProcessStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Configuration",
        "Backend",
        "Workers",
        "Queries",
        "Wall (s)",
        "QPS",
        "Mean lat (ms)",
        "Hit rate",
        "vs serial",
        "vs thread:N",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                run.backend,
                run.workers,
                run.num_queries,
                f"{run.wall_seconds:.3f}",
                f"{run.throughput_qps:.1f}",
                f"{run.mean_latency_seconds * 1e3:.2f}",
                "-" if run.cache_hit_rate is None else f"{run.cache_hit_rate:.0%}",
                format_ratio(run.speedup_vs_serial),
                (
                    "-"
                    if run.speedup_vs_threads is None
                    else format_ratio(run.speedup_vs_threads)
                ),
            ]
        )
    title = (
        f"E12 — multi-core serving scaling on {study.dataset} "
        f"({study.num_seeds} hot seeds x{study.repeat_factor}, "
        f"worker counts {list(study.worker_counts)})"
    )
    return format_table(headers, rows, title=title)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table (and optionally JSON)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="G1")
    parser.add_argument("--num-seeds", type=int, default=8)
    parser.add_argument("--repeat-factor", type=int, default=4)
    parser.add_argument(
        "--worker-counts", type=int, nargs="+", default=[2, 4]
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_process_study(
        dataset=args.dataset,
        num_seeds=args.num_seeds,
        repeat_factor=args.repeat_factor,
        worker_counts=tuple(args.worker_counts),
    )
    print(format_process(study))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(study.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
