"""Experiment E3 — memory-efficiency comparison (Table II of the paper).

Table II compares, per dataset and across seed nodes, the memory required by

* **LocalPPR-CPU** — the single-stage baseline: its working set is the
  depth-``L`` ego sub-graph plus its score vectors,
* **MeLoPPR-CPU** — the multi-stage solver: its working set is bounded by the
  largest *single* sub-graph it touches, and
* **MeLoPPR-FPGA** — the accelerator: the BRAM bytes of the three per-sub-graph
  tables (Sec. VI-B formula).

The paper reports min/max per-query memory in MB plus per-graph average
reduction factors (1.51x–13.43x on CPU, 73.6x–8699x on FPGA), with denser /
larger graphs enjoying larger savings.  That ordering is the shape this
reproduction checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.reporting import format_megabytes, format_ratio, format_table
from repro.experiments.workloads import (
    PAPER_ALPHA,
    PAPER_K,
    PAPER_LENGTH,
    PAPER_STAGE_SPLIT,
    Workload,
    make_workload,
)
from repro.hardware.memory_model import subgraph_bram_bytes
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.memory.report import MemorySummary, summarize_bytes
from repro.ppr.local_ppr import LocalPPRSolver
from repro.utils.rng import RngLike

__all__ = ["MemoryRow", "MemoryStudy", "run_table2", "format_table2"]


@dataclass(frozen=True)
class MemoryRow:
    """Per-dataset memory comparison (one row of Table II)."""

    dataset: str
    graph_nodes: int
    graph_edges: int
    baseline: MemorySummary
    meloppr_cpu: MemorySummary
    meloppr_fpga: MemorySummary
    cpu_reduction_mean: float
    fpga_reduction_mean: float

    @property
    def cpu_reduction_range(self) -> Tuple[float, float]:
        """Min/max per-query CPU reduction cannot be reconstructed from the
        summaries alone; exposed as mean-based bounds for reporting."""
        return (self.cpu_reduction_mean, self.cpu_reduction_mean)


@dataclass(frozen=True)
class MemoryStudy:
    """The full Table II sweep across datasets."""

    rows: Tuple[MemoryRow, ...]
    num_seeds: int
    measurement: str

    def by_dataset(self) -> Dict[str, MemoryRow]:
        """Rows keyed by dataset name."""
        return {row.dataset: row for row in self.rows}


def _memory_for_baseline(workload: Workload, measured: bool) -> Tuple[List[float], List[float]]:
    """Per-query baseline memory (bytes) and modelled bytes."""
    solver = LocalPPRSolver(workload.graph, track_memory=measured)
    measured_bytes: List[float] = []
    modelled_bytes: List[float] = []
    for result in solver.solve_many(list(workload.queries)):
        measured_bytes.append(float(result.peak_memory_bytes))
        modelled_bytes.append(float(result.metadata["modelled_bytes"]))
    return measured_bytes, modelled_bytes


def _memory_for_meloppr(
    workload: Workload, config: MeLoPPRConfig, measured: bool
) -> Tuple[List[float], List[float], List[float]]:
    """Per-query MeLoPPR CPU memory (measured, modelled) and FPGA BRAM bytes."""
    solver = MeLoPPRSolver(workload.graph, config)
    measured_bytes: List[float] = []
    modelled_bytes: List[float] = []
    fpga_bytes: List[float] = []
    for result in solver.solve_many(list(workload.queries)):
        measured_bytes.append(float(result.peak_memory_bytes))
        modelled_bytes.append(float(result.metadata["modelled_bytes"]))
        records = result.metadata["tasks"]
        fpga_bytes.append(
            float(
                max(
                    subgraph_bram_bytes(r.subgraph_nodes, r.subgraph_edges)
                    for r in records
                )
            )
        )
    return measured_bytes, modelled_bytes, fpga_bytes


def run_table2(
    datasets: Sequence[str] = ("G1", "G2", "G3", "G4", "G5", "G6"),
    num_seeds: int = 10,
    selection_ratio: float = 0.02,
    rng: RngLike = 11,
    use_tracemalloc: bool = True,
    scale: Optional[float] = None,
) -> MemoryStudy:
    """Run the Table II memory comparison.

    Parameters
    ----------
    datasets:
        Dataset keys to include (all six by default).
    num_seeds:
        Seeds per dataset (the paper averages over all nodes implicitly via
        random queries; 10–50 is enough for stable reduction factors on the
        stand-ins).
    selection_ratio:
        Next-stage selection ratio used by MeLoPPR.
    use_tracemalloc:
        When true, CPU memory is measured with ``tracemalloc`` exactly as the
        paper does; when false, the analytical working-set model is used
        (faster, deterministic — handy for unit tests).
    scale:
        Optional dataset down-scaling override.
    """
    config = MeLoPPRConfig(
        stage_lengths=PAPER_STAGE_SPLIT,
        selector=RatioSelector(selection_ratio),
        score_table_factor=10,
        track_memory=use_tracemalloc,
    )
    rows: List[MemoryRow] = []
    for index, dataset in enumerate(datasets):
        workload = make_workload(
            dataset,
            num_seeds=num_seeds,
            k=PAPER_K,
            length=PAPER_LENGTH,
            alpha=PAPER_ALPHA,
            rng=(rng if not isinstance(rng, (int, np.integer)) else int(rng) + index),
            scale=scale,
        )
        base_measured, base_modelled = _memory_for_baseline(workload, use_tracemalloc)
        mel_measured, mel_modelled, fpga_bytes = _memory_for_meloppr(
            workload, config, use_tracemalloc
        )
        baseline_values = base_measured if use_tracemalloc else base_modelled
        meloppr_values = mel_measured if use_tracemalloc else mel_modelled

        cpu_reductions = [
            b / m if m > 0 else float("inf")
            for b, m in zip(baseline_values, meloppr_values)
        ]
        fpga_reductions = [
            b / f if f > 0 else float("inf")
            for b, f in zip(baseline_values, fpga_bytes)
        ]
        rows.append(
            MemoryRow(
                dataset=dataset,
                graph_nodes=workload.graph.num_nodes,
                graph_edges=workload.graph.num_edges,
                baseline=summarize_bytes(baseline_values),
                meloppr_cpu=summarize_bytes(meloppr_values),
                meloppr_fpga=summarize_bytes(fpga_bytes),
                cpu_reduction_mean=float(np.mean(cpu_reductions)),
                fpga_reduction_mean=float(np.mean(fpga_reductions)),
            )
        )
    return MemoryStudy(
        rows=tuple(rows),
        num_seeds=num_seeds,
        measurement="tracemalloc" if use_tracemalloc else "modelled",
    )


def format_table2(study: MemoryStudy) -> str:
    """Render the study as a text table mirroring Table II."""
    headers = [
        "Graph",
        "|V|",
        "|E|",
        "LocalPPR-CPU (MB min~max)",
        "MeLoPPR-CPU (MB min~max)",
        "CPU avg red.",
        "MeLoPPR-FPGA (MB min~max)",
        "FPGA avg red.",
    ]
    rows = []
    for row in study.rows:
        rows.append(
            [
                row.dataset,
                row.graph_nodes,
                row.graph_edges,
                f"{format_megabytes(row.baseline.minimum)}~{format_megabytes(row.baseline.maximum)}",
                f"{format_megabytes(row.meloppr_cpu.minimum)}~{format_megabytes(row.meloppr_cpu.maximum)}",
                format_ratio(row.cpu_reduction_mean),
                f"{format_megabytes(row.meloppr_fpga.minimum)}~{format_megabytes(row.meloppr_fpga.maximum)}",
                format_ratio(row.fpga_reduction_mean),
            ]
        )
    title = (
        f"Table II — memory comparison ({study.measurement}, "
        f"{study.num_seeds} seeds per graph)"
    )
    return format_table(headers, rows, title=title)
