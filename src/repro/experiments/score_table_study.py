"""Experiment E7 — global score-table size study (Sec. V-B of the paper).

The global score table kept in FPGA BRAM holds only the top ``c * k`` scores.
The paper reports that ``c > 8`` costs less than 0.2 % precision while
``c < 4`` costs more than 3 %, and deploys ``c = 10``.

The study runs MeLoPPR with an unbounded score table (the reference) and with
bounded tables across a sweep of ``c`` values, reporting the precision loss
attributable purely to the bounded table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.workloads import (
    PAPER_ALPHA,
    PAPER_K,
    PAPER_LENGTH,
    PAPER_STAGE_SPLIT,
    make_workload,
)
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision
from repro.utils.rng import RngLike

__all__ = ["ScoreTableRow", "ScoreTableStudy", "run_score_table_study", "format_score_table"]

#: Score-table size factors swept (the paper discusses c < 4, c > 8, c = 10).
PAPER_FACTORS: Tuple[int, ...] = (2, 4, 8, 10, 16)


@dataclass(frozen=True)
class ScoreTableRow:
    """Precision at one table-size factor ``c``."""

    factor: int
    precision: float
    precision_loss_vs_unbounded: float
    mean_evictions: float


@dataclass(frozen=True)
class ScoreTableStudy:
    """The full Sec. V-B sweep."""

    dataset: Tuple[str, ...]
    num_seeds: int
    selection_ratio: float
    unbounded_precision: float
    rows: Tuple[ScoreTableRow, ...]

    def loss_at(self, factor: int) -> float:
        """Precision loss at a given ``c`` (raises if not swept)."""
        for row in self.rows:
            if row.factor == factor:
                return row.precision_loss_vs_unbounded
        raise KeyError(f"factor {factor} not part of the study")


def run_score_table_study(
    datasets: Sequence[str] = ("G1", "G2"),
    factors: Sequence[int] = PAPER_FACTORS,
    num_seeds: int = 8,
    selection_ratio: float = 0.05,
    rng: RngLike = 29,
    scale: Optional[float] = None,
) -> ScoreTableStudy:
    """Run the bounded-score-table precision study of Sec. V-B."""
    workloads = [
        make_workload(
            dataset,
            num_seeds=num_seeds,
            k=PAPER_K,
            length=PAPER_LENGTH,
            alpha=PAPER_ALPHA,
            rng=(int(rng) + index if isinstance(rng, int) else rng),
            scale=scale,
        )
        for index, dataset in enumerate(datasets)
    ]
    exact_results = [
        [LocalPPRSolver(w.graph, track_memory=False).solve(q) for q in w.queries]
        for w in workloads
    ]

    def _run_with_factor(factor: Optional[int]) -> Tuple[float, float]:
        precisions: List[float] = []
        evictions: List[float] = []
        for workload, exacts in zip(workloads, exact_results):
            config = MeLoPPRConfig(
                stage_lengths=PAPER_STAGE_SPLIT,
                selector=RatioSelector(selection_ratio),
                score_table_factor=factor,
                track_memory=False,
            )
            solver = MeLoPPRSolver(workload.graph, config)
            for query, exact in zip(workload.queries, exacts):
                result = solver.solve(query)
                precisions.append(result_precision(result, exact))
                evictions.append(float(result.metadata["score_table_evictions"]))
        return float(np.mean(precisions)), float(np.mean(evictions))

    unbounded_precision, _ = _run_with_factor(None)

    rows = []
    for factor in factors:
        precision, mean_evictions = _run_with_factor(int(factor))
        rows.append(
            ScoreTableRow(
                factor=int(factor),
                precision=precision,
                precision_loss_vs_unbounded=max(0.0, unbounded_precision - precision),
                mean_evictions=mean_evictions,
            )
        )
    return ScoreTableStudy(
        dataset=tuple(datasets),
        num_seeds=num_seeds,
        selection_ratio=selection_ratio,
        unbounded_precision=unbounded_precision,
        rows=tuple(rows),
    )


def format_score_table(study: ScoreTableStudy) -> str:
    """Render the study as a text table."""
    headers = ["c (table = c*k)", "Precision", "Loss vs unbounded", "Mean evictions"]
    rows = [
        [
            row.factor,
            f"{row.precision:.1%}",
            f"{row.precision_loss_vs_unbounded:.2%}",
            f"{row.mean_evictions:.0f}",
        ]
        for row in study.rows
    ]
    title = (
        f"Sec. V-B — global score-table size study "
        f"(unbounded precision {study.unbounded_precision:.1%}, "
        f"{study.num_seeds} seeds per graph)"
    )
    return format_table(headers, rows, title=title)
