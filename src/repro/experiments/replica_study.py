"""Experiment E16 — multi-replica serving scaling (replica counts × sockets).

This study is not a paper artefact: it characterises the replicated serving
layer added on top of the reproduction.  For every replica count in the
sweep it launches a real fleet — ``N`` server subprocesses supervised by
:class:`~repro.serving.replica.ReplicaSet` behind a
:class:`~repro.serving.frontend.router.ReplicaRouter` — and pushes the same
repeated-seed workload through the router's HTTP front door with a fixed
client concurrency.  Everything travels through real sockets: the numbers
include HTTP parsing, JSON, consistent-hash routing, and the per-replica
micro-batchers.

Every answer is verified **bit-identical** to the serial in-process engine
before the study returns — replication must be a pure scale-out layer,
never a numerical one.  The router's per-replica counters are folded into
each run so the report shows how evenly the ring spread the workload.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_ratio, format_table
from repro.experiments.workloads import make_repeated_seed_workload
from repro.ppr.base import PPRQuery
from repro.serving.frontend.config import ServingConfig, build_frontend
from repro.serving.frontend.http import HttpClientPool
from repro.serving.frontend.router import ReplicaRouter
from repro.serving.replica import ReplicaSet
from repro.utils.rng import RngLike

__all__ = ["ReplicaRun", "ReplicaStudy", "run_replica_study", "format_replica"]


@dataclass(frozen=True)
class ReplicaRun:
    """One fleet size's measurements over the workload."""

    label: str
    replicas: int
    num_queries: int
    wall_seconds: float
    throughput_qps: float
    speedup_vs_single: float
    max_replica_share: float
    retries: int
    failovers: int
    per_replica_answers: Tuple[int, ...]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "replicas": self.replicas,
            "num_queries": self.num_queries,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "speedup_vs_single": self.speedup_vs_single,
            "max_replica_share": self.max_replica_share,
            "retries": self.retries,
            "failovers": self.failovers,
            "per_replica_answers": list(self.per_replica_answers),
        }


@dataclass(frozen=True)
class ReplicaStudy:
    """The full replica-count sweep."""

    dataset: str
    num_seeds: int
    repeat_factor: int
    k: int
    num_shards: int
    concurrency: int
    runs: Tuple[ReplicaRun, ...]

    def by_label(self) -> Dict[str, ReplicaRun]:
        """Runs keyed by configuration label."""
        return {run.label: run for run in self.runs}

    @property
    def best(self) -> ReplicaRun:
        """The highest-throughput run."""
        return max(self.runs, key=lambda run: run.throughput_qps)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "num_seeds": self.num_seeds,
            "repeat_factor": self.repeat_factor,
            "k": self.k,
            "num_shards": self.num_shards,
            "concurrency": self.concurrency,
            "runs": [run.as_dict() for run in self.runs],
        }


async def _drive(
    router: ReplicaRouter,
    workload: Sequence[Tuple[int, int]],
    expected: Dict[int, List[List[float]]],
    concurrency: int,
) -> float:
    """Push the workload through the router; returns the wall seconds.

    Raises ``AssertionError`` on the first answer that is not bit-identical
    to the serial reference.
    """
    host, port = router.address
    semaphore = asyncio.Semaphore(concurrency)

    async with HttpClientPool(host, port, size=concurrency) as pool:

        async def one(seed: int, k: int) -> None:
            async with semaphore:
                status, payload = await pool.request_json(
                    "POST", "/query", {"seed": seed, "k": k}
                )
            if status != 200 or not payload.get("ok"):
                raise AssertionError(
                    f"query for seed {seed} failed: {status} {payload}"
                )
            if payload["top"] != expected[seed]:
                raise AssertionError(
                    f"replicated answer for seed {seed} diverged from the "
                    "serial reference — replication must be bit-identical"
                )

        started = time.perf_counter()
        await asyncio.gather(*(one(seed, k) for seed, k in workload))
        return time.perf_counter() - started


def run_replica_study(
    dataset: str = "G1",
    num_seeds: int = 6,
    repeat_factor: int = 4,
    replica_counts: Sequence[int] = (1, 2, 3),
    num_shards: int = 4,
    k: int = 100,
    concurrency: int = 8,
    backend: str = "serial",
    max_wait_ms: float = 0.5,
    startup_timeout: float = 120.0,
    rng: RngLike = 29,
) -> ReplicaStudy:
    """Sweep fleet sizes over a repeated-seed workload through real sockets.

    Parameters
    ----------
    dataset:
        Dataset key every replica loads (each replica holds the full graph,
        so any replica can answer any seed — the ring is pure locality).
    num_seeds, repeat_factor:
        Workload shape (distinct hot seeds × queries per seed).
    replica_counts:
        The sweep: how many server subprocesses to launch per run.
    num_shards:
        Shard count inside each replica (and the router's seed → shard map).
    concurrency:
        Concurrent in-flight requests on the client side; fixed across the
        sweep so throughput differences come from the fleet, not the driver.
    backend:
        Engine backend inside each replica (``serial`` keeps each replica
        single-core, which is what makes replica scaling visible).
    startup_timeout:
        Per-fleet readiness budget (subprocesses import numpy/scipy).
    """
    config = ServingConfig(
        dataset=dataset,
        backend=backend,
        num_shards=num_shards,
        max_wait_ms=max_wait_ms,
    )
    _, queries = make_repeated_seed_workload(dataset, num_seeds, repeat_factor, k, rng)
    workload = [(int(query.seed), int(query.k)) for query in queries]

    # Serial in-process reference: the answers every fleet must reproduce.
    engine, _, _ = build_frontend(config.replace(num_shards=0))
    try:
        distinct = sorted({seed for seed, _ in workload})
        reference = engine.solve_batch([PPRQuery(seed=seed, k=k) for seed in distinct])
    finally:
        engine.close()
    expected = {
        seed: [[int(node), float(score)] for node, score in result.top_k()]
        for seed, result in zip(distinct, reference)
    }

    runs: List[ReplicaRun] = []
    single_qps: Optional[float] = None
    for count in replica_counts:
        with ReplicaSet(config, count, startup_timeout=startup_timeout) as fleet:

            async def measure() -> Tuple[float, Dict[str, object]]:
                router = ReplicaRouter.for_replica_set(
                    fleet, health_interval_s=0.2, retries=4
                )
                async with router:
                    wall = await _drive(router, workload, expected, concurrency)
                    stats = router._router_stats()
                    await router.stop()
                return wall, stats

            wall, stats = asyncio.run(measure())
        answers = tuple(stats["answers"][f"replica-{i}"] for i in range(count))
        qps = len(workload) / wall if wall > 0 else 0.0
        if single_qps is None:
            single_qps = qps
        runs.append(
            ReplicaRun(
                label=f"replicas={count}",
                replicas=count,
                num_queries=len(workload),
                wall_seconds=wall,
                throughput_qps=qps,
                speedup_vs_single=qps / single_qps if single_qps > 0 else 0.0,
                max_replica_share=(
                    max(answers) / sum(answers) if sum(answers) else 0.0
                ),
                retries=sum(stats["retries"].values()),
                failovers=sum(stats["failovers"].values()),
                per_replica_answers=answers,
            )
        )
    return ReplicaStudy(
        dataset=dataset,
        num_seeds=num_seeds,
        repeat_factor=repeat_factor,
        k=k,
        num_shards=num_shards,
        concurrency=concurrency,
        runs=tuple(runs),
    )


def format_replica(study: ReplicaStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Fleet",
        "QPS",
        "vs 1 replica",
        "Max share",
        "Retries",
        "Failovers",
        "Answers per replica",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                f"{run.throughput_qps:.1f}",
                format_ratio(run.speedup_vs_single),
                f"{run.max_replica_share:.0%}",
                run.retries,
                run.failovers,
                "/".join(str(count) for count in run.per_replica_answers),
            ]
        )
    title = (
        f"E16 — replicated serving on {study.dataset} "
        f"({study.num_seeds} hot seeds x{study.repeat_factor}, k={study.k}, "
        f"{study.num_shards} shards, concurrency {study.concurrency}, "
        "real subprocess fleets)"
    )
    return format_table(headers, rows, title=title)


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point printing the table (and optional JSON)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="G1")
    parser.add_argument("--num-seeds", type=int, default=6)
    parser.add_argument("--repeat-factor", type=int, default=4)
    parser.add_argument(
        "--replica-counts", type=int, nargs="+", default=[1, 2, 3]
    )
    parser.add_argument("--num-shards", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_replica_study(
        dataset=args.dataset,
        num_seeds=args.num_seeds,
        repeat_factor=args.repeat_factor,
        replica_counts=tuple(args.replica_counts),
        num_shards=args.num_shards,
        concurrency=args.concurrency,
    )
    print(format_replica(study))
    if args.json:
        document = json.dumps(study.as_dict(), indent=2, sort_keys=True)
        print(document)
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
