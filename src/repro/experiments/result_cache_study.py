"""Experiment E13 — cross-query stage-one result caching under Zipfian skew.

This study is not a paper artefact: it characterises the serving layer's
:class:`~repro.serving.result_cache.ScoreTableCache` on the heavy-tailed
query streams production systems actually see.  A Zipf-``s`` hot-seed
workload (:func:`~repro.experiments.workloads.make_zipf_workload`) is
answered twice per skew — result cache off, then on — and the study reports
each configuration's throughput, the cache's hit rate, and the on/off
speedup, which grows with skew because a hotter stream repeats more
stage-one work verbatim.

The configuration is deliberately front-loaded (stage split ``(5, 1)``, a
tight next-stage selection): stage one is then the dominant share of a
query, which is exactly the regime the cache targets — the cached entry
replaces the deep seed-centred diffusion *and* its fold into the bounded
score table, leaving only the shallow stage-two tasks.  The sub-graph cache
is enabled in **both** configurations, so the reported speedup is the
result cache's incremental win, not a strawman.

Answers are verified bit-identical between the cached and uncached runs for
every skew before the study returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_ratio, format_table
from repro.experiments.workloads import make_zipf_workload
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.serving.backends import make_backend
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine
from repro.serving.result_cache import ScoreTableCache
from repro.utils.rng import RngLike

__all__ = [
    "ResultCacheRun",
    "ResultCacheStudy",
    "run_result_cache_study",
    "format_result_cache",
]


@dataclass(frozen=True)
class ResultCacheRun:
    """One (skew, cache on/off) configuration's measurements."""

    label: str
    skew: float
    cached: bool
    num_queries: int
    wall_seconds: float
    throughput_qps: float
    mean_latency_seconds: float
    result_cache_hit_rate: Optional[float]
    subgraph_hit_rate: Optional[float]
    speedup_vs_uncached: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "skew": self.skew,
            "cached": self.cached,
            "num_queries": self.num_queries,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "mean_latency_seconds": self.mean_latency_seconds,
            "result_cache_hit_rate": self.result_cache_hit_rate,
            "subgraph_hit_rate": self.subgraph_hit_rate,
            "speedup_vs_uncached": self.speedup_vs_uncached,
        }


@dataclass(frozen=True)
class ResultCacheStudy:
    """The skew × cache-on/off sweep over one Zipfian workload family."""

    dataset: str
    backend: str
    num_queries: int
    num_seeds: int
    k: int
    stage_lengths: Tuple[int, ...]
    selection_ratio: float
    skews: Tuple[float, ...]
    runs: Tuple[ResultCacheRun, ...]

    def by_label(self) -> Dict[str, ResultCacheRun]:
        """Runs keyed by configuration label."""
        return {run.label: run for run in self.runs}

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "backend": self.backend,
            "num_queries": self.num_queries,
            "num_seeds": self.num_seeds,
            "k": self.k,
            "stage_lengths": list(self.stage_lengths),
            "selection_ratio": self.selection_ratio,
            "skews": list(self.skews),
            "runs": [run.as_dict() for run in self.runs],
        }


def _zipf_label(skew: float, cached: bool) -> str:
    """Run label, e.g. ``zipf1.1:on`` (shared bench/baseline contract)."""
    return f"zipf{skew:g}:{'on' if cached else 'off'}"


def run_result_cache_study(
    dataset: str = "G1",
    num_queries: int = 120,
    num_seeds: int = 16,
    skews: Sequence[float] = (0.0, 1.1),
    k: int = 100,
    stage_lengths: Tuple[int, ...] = (5, 1),
    selection_ratio: float = 0.005,
    backend: str = "serial",
    rng: RngLike = 7,
) -> ResultCacheStudy:
    """Measure the result cache's hit rate and speedup across Zipf skews.

    Parameters
    ----------
    dataset:
        Dataset key of the host graph.
    num_queries, num_seeds:
        Arrivals per skew and the hot-seed pool they draw from.
    skews:
        Zipf exponents to sweep (0 = uniform repeats, 1.1 = classic
        web-traffic skew).
    k, stage_lengths, selection_ratio:
        Query/solver shape.  The default front-loads stage one (see module
        docstring); memory tracking is off so wall-clock reflects serving
        work.
    backend:
        Execution backend spec for both configurations of every pair.
    """
    config = MeLoPPRConfig(
        stage_lengths=stage_lengths,
        selector=RatioSelector(selection_ratio),
        score_table_factor=10,
        track_memory=False,
    )
    runs: List[ResultCacheRun] = []
    for skew in skews:
        graph, queries = make_zipf_workload(
            dataset,
            num_queries,
            skew=skew,
            num_seeds=num_seeds,
            k=k,
            length=sum(stage_lengths),
            rng=rng,
        )
        reference_scores = None
        uncached_qps = 0.0
        for cached in (False, True):
            with QueryEngine(
                MeLoPPRSolver(graph, config),
                backend=make_backend(backend),
                cache=SubgraphCache(),
                result_cache=ScoreTableCache() if cached else None,
            ) as engine:
                results = engine.solve_batch(queries)
                stats = engine.stats()
            scores = [dict(result.scores.items()) for result in results]
            if reference_scores is None:
                reference_scores = scores
            elif scores != reference_scores:
                raise AssertionError(
                    f"result cache changed the answers at skew {skew} — "
                    "stage-one reuse must be bit-identical"
                )
            qps = stats.throughput_qps
            if not cached:
                uncached_qps = qps
            runs.append(
                ResultCacheRun(
                    label=_zipf_label(skew, cached),
                    skew=float(skew),
                    cached=cached,
                    num_queries=stats.queries_served,
                    wall_seconds=stats.wall_seconds,
                    throughput_qps=qps,
                    mean_latency_seconds=stats.mean_latency_seconds,
                    result_cache_hit_rate=(
                        None
                        if stats.result_cache is None
                        else stats.result_cache.hit_rate
                    ),
                    subgraph_hit_rate=(
                        # stats.cache folds the result cache in; the
                        # engine-level SubgraphCache alone is what this
                        # column reports.
                        engine.cache.stats.hit_rate
                        if engine.cache is not None
                        else None
                    ),
                    speedup_vs_uncached=(
                        qps / uncached_qps if cached and uncached_qps > 0 else None
                    ),
                )
            )
    return ResultCacheStudy(
        dataset=dataset,
        backend=backend,
        num_queries=num_queries,
        num_seeds=num_seeds,
        k=k,
        stage_lengths=tuple(stage_lengths),
        selection_ratio=selection_ratio,
        skews=tuple(float(skew) for skew in skews),
        runs=tuple(runs),
    )


def format_result_cache(study: ResultCacheStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Configuration",
        "Skew",
        "Result cache",
        "Queries",
        "Wall (s)",
        "QPS",
        "Mean lat (ms)",
        "RC hit rate",
        "SG hit rate",
        "Speedup",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                f"{run.skew:g}",
                "on" if run.cached else "off",
                run.num_queries,
                f"{run.wall_seconds:.3f}",
                f"{run.throughput_qps:.1f}",
                f"{run.mean_latency_seconds * 1e3:.2f}",
                (
                    "-"
                    if run.result_cache_hit_rate is None
                    else f"{run.result_cache_hit_rate:.0%}"
                ),
                (
                    "-"
                    if run.subgraph_hit_rate is None
                    else f"{run.subgraph_hit_rate:.0%}"
                ),
                (
                    "-"
                    if run.speedup_vs_uncached is None
                    else format_ratio(run.speedup_vs_uncached)
                ),
            ]
        )
    title = (
        f"E13 — cross-query result caching on {study.dataset} "
        f"({study.num_queries} Zipf arrivals over {study.num_seeds} seeds, "
        f"split {list(study.stage_lengths)}, backend {study.backend})"
    )
    return format_table(headers, rows, title=title)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table (and optionally JSON)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="G1")
    parser.add_argument("--num-queries", type=int, default=120)
    parser.add_argument("--num-seeds", type=int, default=16)
    parser.add_argument(
        "--skews", type=float, nargs="+", default=[0.0, 1.1]
    )
    parser.add_argument("--backend", default="serial")
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_result_cache_study(
        dataset=args.dataset,
        num_queries=args.num_queries,
        num_seeds=args.num_seeds,
        skews=tuple(args.skews),
        backend=args.backend,
    )
    print(format_result_cache(study))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(study.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
