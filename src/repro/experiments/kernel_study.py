"""Experiment E14 — diffusion-kernel study (exactness + throughput).

This study is not a paper artefact: it characterises the pluggable
diffusion kernels of :mod:`repro.diffusion.kernels`.  Every registered
kernel (plus the ``auto`` selector) diffuses the same seed vectors over the
same ego sub-graph; the study

* verifies each kernel is **bit-identical** to the ``reference`` kernel
  (``np.array_equal`` on accumulated and residual scores and an exact match
  on the propagation-work counter) over both sparse (one-hot) and dense
  (random) initial vectors,
* measures each kernel's diffusion throughput and its speedup over the
  reference ``np.add.at`` implementation, and
* re-answers one full MeLoPPR query per kernel and checks the top-k list
  never changes — kernels must be a pure performance choice.

A kernel that changes any score aborts the study with ``AssertionError``;
there is no tolerance, because the kernels' contract is exactness, not
closeness.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.diffusion.kernels import (
    KERNEL_ENV_VAR,
    available_kernels,
    make_kernel,
    resolve_kernel_name,
)
from repro.experiments.reporting import format_ratio, format_table
from repro.graph.bfs import extract_ego_subgraph
from repro.graph.datasets import load_dataset
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver

__all__ = ["KernelRun", "KernelStudy", "run_kernel_study", "format_kernels"]


@dataclass(frozen=True)
class KernelRun:
    """One kernel's measurements over the study workload."""

    label: str
    resolved: str
    jit_enabled: Optional[bool]
    num_diffusions: int
    wall_seconds: float
    throughput_qps: float
    speedup_vs_reference: float
    propagations: int

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "resolved": self.resolved,
            "jit_enabled": self.jit_enabled,
            "num_diffusions": self.num_diffusions,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "speedup_vs_reference": self.speedup_vs_reference,
            "propagations": self.propagations,
        }


@dataclass(frozen=True)
class KernelStudy:
    """The kernel sweep over one diffusion workload."""

    dataset: str
    center: int
    depth: int
    length: int
    num_nodes: int
    num_edges: int
    runs: Tuple[KernelRun, ...]

    def by_label(self) -> Dict[str, KernelRun]:
        """Runs keyed by kernel label."""
        return {run.label: run for run in self.runs}

    @property
    def baseline(self) -> KernelRun:
        """The reference-kernel run."""
        return self.by_label()["reference"]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "center": self.center,
            "depth": self.depth,
            "length": self.length,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "runs": [run.as_dict() for run in self.runs],
        }


@contextlib.contextmanager
def _kernel_env(name: str) -> Iterator[None]:
    """Temporarily pin the environment-default kernel to ``name``."""
    previous = os.environ.get(KERNEL_ENV_VAR)
    os.environ[KERNEL_ENV_VAR] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV_VAR, None)
        else:
            os.environ[KERNEL_ENV_VAR] = previous


def _study_config() -> MeLoPPRConfig:
    """Paper-default solver config with memory tracking off (timing study)."""
    return MeLoPPRConfig(
        stage_lengths=(3, 3),
        selector=RatioSelector(0.02),
        score_table_factor=10,
        track_memory=False,
    )


def _study_vectors(num_nodes: int, local_seed: int, rng: np.random.Generator) -> List[np.ndarray]:
    """Sparse (one-hot) and dense initial vectors exercised for exactness."""
    vectors = [seed_vector(num_nodes, local_seed)]
    other = int(rng.integers(num_nodes))
    vectors.append(seed_vector(num_nodes, other))
    dense = rng.random(num_nodes)
    vectors.append(dense / dense.sum())
    return vectors


def run_kernel_study(
    dataset: str = "G3",
    center: int = 123,
    depth: int = 6,
    length: int = 6,
    alpha: float = 0.85,
    repeats: int = 5,
    k: int = 100,
    kernels: Optional[Sequence[str]] = None,
) -> KernelStudy:
    """Sweep every diffusion kernel over one ego-sub-graph workload.

    Parameters
    ----------
    dataset, center, depth:
        Host graph and the ego sub-graph the diffusions run on (the default
        matches the ``bench_kernels`` micro-benchmark workload).
    length, alpha:
        Diffusion shape.
    repeats:
        Timed diffusions per kernel (each repeat diffuses every study
        vector once); a warm-up pass precedes the timed loop so one-off
        structure construction is not billed to the first kernel.
    k:
        Top-k size of the per-kernel MeLoPPR equality check.
    kernels:
        Kernel labels to sweep; defaults to every registered kernel plus
        ``auto``.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be > 0, got {repeats}")
    graph = load_dataset(dataset)
    subgraph, _ = extract_ego_subgraph(graph, center, depth)
    local_seed = subgraph.to_local(center)
    rng = np.random.default_rng(17)
    vectors = _study_vectors(subgraph.graph.num_nodes, local_seed, rng)

    labels = list(kernels) if kernels is not None else [*available_kernels(), "auto"]
    # Reference first: every speedup is relative to its measured throughput.
    labels = ["reference"] + [label for label in labels if label != "reference"]

    # Reference answers first: every other kernel must reproduce them bit
    # for bit (scores and the propagation-work counter alike).
    reference = [
        graph_diffusion(subgraph.graph, vector, length, alpha, kernel="reference")
        for vector in vectors
    ]
    with _kernel_env("reference"):
        reference_top_k = (
            MeLoPPRSolver(graph, _study_config())
            .solve_seed(seed=center, k=k, length=length)
            .top_k_nodes()
        )

    runs: List[KernelRun] = []
    reference_qps = 0.0
    for label in labels:
        kernel = make_kernel(label)
        for expected, vector in zip(reference, vectors):
            result = graph_diffusion(subgraph.graph, vector, length, alpha, kernel=kernel)
            if not (
                np.array_equal(result.accumulated, expected.accumulated)
                and np.array_equal(result.residual, expected.residual)
                and result.propagations == expected.propagations
            ):
                raise AssertionError(
                    f"kernel {label} changed the diffusion output — kernels "
                    "must be bit-identical to reference"
                )
        with _kernel_env(label):
            top_k = (
                MeLoPPRSolver(graph, _study_config())
                .solve_seed(seed=center, k=k, length=length)
                .top_k_nodes()
            )
        if top_k != reference_top_k:
            raise AssertionError(
                f"kernel {label} changed the MeLoPPR top-{k} answer"
            )

        # Timed loop (the exactness pass above doubles as warm-up).
        start = time.perf_counter()
        for _ in range(repeats):
            for vector in vectors:
                result = graph_diffusion(subgraph.graph, vector, length, alpha, kernel=kernel)
        wall = time.perf_counter() - start
        num_diffusions = repeats * len(vectors)
        qps = num_diffusions / wall if wall > 0 else 0.0
        if label == "reference":
            reference_qps = qps
        runs.append(
            KernelRun(
                label=label,
                resolved=resolve_kernel_name(label),
                jit_enabled=getattr(kernel, "jit_enabled", None),
                num_diffusions=num_diffusions,
                wall_seconds=wall,
                throughput_qps=qps,
                speedup_vs_reference=(qps / reference_qps if reference_qps > 0 else 0.0),
                propagations=reference[0].propagations,
            )
        )
    return KernelStudy(
        dataset=dataset,
        center=center,
        depth=depth,
        length=length,
        num_nodes=subgraph.graph.num_nodes,
        num_edges=subgraph.graph.num_edges,
        runs=tuple(runs),
    )


def format_kernels(study: KernelStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Kernel",
        "Resolved",
        "JIT",
        "Diffusions/s",
        "vs reference",
        "Exact",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                run.resolved,
                "-" if run.jit_enabled is None else ("on" if run.jit_enabled else "fallback"),
                f"{run.throughput_qps:.1f}",
                format_ratio(run.speedup_vs_reference),
                "yes",  # a non-exact kernel aborts the study
            ]
        )
    title = (
        f"E14 — diffusion kernels on {study.dataset} ego(center={study.center}, "
        f"depth={study.depth}): {study.num_nodes} nodes / {study.num_edges} edges, "
        f"length {study.length}"
    )
    return format_table(headers, rows, title=title)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table (and optionally JSON)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="G3")
    parser.add_argument("--center", type=int, default=123)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument("--length", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_kernel_study(
        dataset=args.dataset,
        center=args.center,
        depth=args.depth,
        length=args.length,
        repeats=args.repeats,
    )
    print(format_kernels(study))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(study.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
