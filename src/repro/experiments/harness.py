"""One-stop experiment harness: run every paper artefact and print its table.

``python -m repro.experiments.harness`` (or :func:`run_all`) regenerates all
tables and figures of the paper in text form — the per-experiment modules do
the work; this module only sequences them and collects their reports.  The
``quick`` profile keeps seed counts small so the whole sweep finishes in a few
minutes; the ``paper`` profile uses seed counts closer to the paper's
averaging.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.ablation_stage_split import format_stage_split, run_stage_split_ablation
from repro.experiments.fig5_scalability import format_fig5, run_fig5
from repro.experiments.fig6_sparsity import format_fig6, run_fig6
from repro.experiments.fig7_tradeoff import format_fig7, run_fig7
from repro.experiments.kernel_study import format_kernels, run_kernel_study
from repro.experiments.churn_study import format_churn, run_churn_study
from repro.experiments.latency_study import format_latency, run_latency_study
from repro.experiments.process_study import format_process, run_process_study
from repro.experiments.quantization_study import format_quantization, run_quantization_study
from repro.experiments.replica_study import format_replica, run_replica_study
from repro.experiments.result_cache_study import format_result_cache, run_result_cache_study
from repro.experiments.score_table_study import format_score_table, run_score_table_study
from repro.experiments.serving_study import format_serving, run_serving_study
from repro.experiments.sharding_study import format_sharding, run_sharding_study
from repro.experiments.soak_study import format_soak, run_soak_study
from repro.experiments.table1_resources import format_table1, run_table1
from repro.experiments.table2_memory import format_table2, run_table2

__all__ = ["ExperimentProfile", "QUICK_PROFILE", "PAPER_PROFILE", "run_all", "main"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Seed counts and dataset subsets used by :func:`run_all`.

    Attributes
    ----------
    name:
        Profile name (``"quick"`` or ``"paper"``).
    num_seeds_small, num_seeds_large:
        Seed counts for the small (G1–G3) and large (G4–G6) graphs.
    memory_datasets, tradeoff_datasets:
        Dataset keys used by the Table II and Fig. 7 sweeps.
    """

    name: str
    num_seeds_small: int
    num_seeds_large: int
    memory_datasets: Tuple[str, ...]
    tradeoff_datasets: Tuple[str, ...]


QUICK_PROFILE = ExperimentProfile(
    name="quick",
    num_seeds_small=5,
    num_seeds_large=3,
    memory_datasets=("G1", "G2", "G3", "G4", "G5", "G6"),
    tradeoff_datasets=("G1", "G2", "G3", "G4", "G5", "G6"),
)

PAPER_PROFILE = ExperimentProfile(
    name="paper",
    num_seeds_small=50,
    num_seeds_large=20,
    memory_datasets=("G1", "G2", "G3", "G4", "G5", "G6"),
    tradeoff_datasets=("G1", "G2", "G3", "G4", "G5", "G6"),
)


def run_all(profile: ExperimentProfile = QUICK_PROFILE) -> Dict[str, str]:
    """Run every experiment and return ``{experiment id: rendered table}``."""
    reports: Dict[str, str] = {}

    reports["E1_fig5"] = format_fig5(
        run_fig5(num_seeds=profile.num_seeds_small)
    )
    reports["E2_table1"] = format_table1(run_table1())
    reports["E3_table2"] = format_table2(
        run_table2(
            datasets=profile.memory_datasets,
            num_seeds=profile.num_seeds_large,
        )
    )
    reports["E4_fig6"] = format_fig6(
        run_fig6(num_seeds=profile.num_seeds_small)
    )
    reports["E5_fig7"] = format_fig7(
        run_fig7(
            datasets=profile.tradeoff_datasets,
            num_seeds=profile.num_seeds_large,
        )
    )
    reports["E6_quantization"] = format_quantization(
        run_quantization_study(num_seeds=profile.num_seeds_small)
    )
    reports["E7_score_table"] = format_score_table(
        run_score_table_study(num_seeds=profile.num_seeds_small)
    )
    reports["E8_stage_split"] = format_stage_split(
        run_stage_split_ablation(num_seeds=profile.num_seeds_small)
    )
    reports["E9_serving"] = format_serving(
        run_serving_study(
            num_seeds=profile.num_seeds_small,
            repeat_factor=4,
        )
    )
    reports["E10_sharding"] = format_sharding(
        run_sharding_study(
            num_seeds=profile.num_seeds_small,
            repeat_factor=3,
        )
    )
    reports["E11_latency"] = format_latency(
        run_latency_study(
            num_seeds=profile.num_seeds_small,
            num_arrivals=8 * profile.num_seeds_small,
        )
    )
    reports["E12_process"] = format_process(
        run_process_study(
            num_seeds=profile.num_seeds_small,
            repeat_factor=3,
            worker_counts=(2,) if profile.name == "quick" else (2, 4),
        )
    )
    reports["E13_result_cache"] = format_result_cache(
        run_result_cache_study(
            num_queries=16 * profile.num_seeds_small,
            num_seeds=2 * profile.num_seeds_small,
            skews=(0.0, 1.1) if profile.name == "quick" else (0.0, 0.6, 1.1, 1.5),
        )
    )
    reports["E14_kernels"] = format_kernels(
        run_kernel_study(repeats=3 if profile.name == "quick" else 10)
    )
    reports["E15_soak"] = format_soak(
        run_soak_study(
            num_seeds=profile.num_seeds_small,
            num_arrivals=12 * profile.num_seeds_small,
            multipliers=(0.5, 1.0, 10.0)
            if profile.name == "quick"
            else (0.5, 1.0, 2.0, 10.0),
        )
    )
    reports["E16_replicas"] = format_replica(
        run_replica_study(
            num_seeds=profile.num_seeds_small,
            repeat_factor=3,
            replica_counts=(1, 2) if profile.name == "quick" else (1, 2, 3),
        )
    )
    reports["E17_churn"] = format_churn(
        run_churn_study(
            num_queries=8 * profile.num_seeds_small,
            num_seeds=profile.num_seeds_small,
            update_rates=(0, 6) if profile.name == "quick" else (0, 2, 6, 12),
            cache_budgets=(256 * 1024,)
            if profile.name == "quick"
            else (256 * 1024, 4 * 1024 * 1024),
        )
    )
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: print every experiment's table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile",
        choices=("quick", "paper"),
        default="quick",
        help="seed-count profile (quick keeps runtimes to a few minutes)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="run only the experiment whose id contains this substring",
    )
    args = parser.parse_args(argv)
    profile = QUICK_PROFILE if args.profile == "quick" else PAPER_PROFILE

    reports = run_all(profile)
    for experiment_id, report in reports.items():
        if args.only and args.only not in experiment_id:
            continue
        print(f"\n{'=' * 78}\n{experiment_id}\n{'=' * 78}")
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
