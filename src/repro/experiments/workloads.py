"""Workload definitions shared by all experiments.

The paper evaluates every experiment with ``k = 200``, ``L = 6`` and
``l1 = l2 = 3``, averaging over randomly chosen seed nodes (1000 seeds for
Fig. 6, 500 for Fig. 7).  This module centralises those choices, the seed
sampling, and the per-graph workload records so every benchmark uses exactly
the same queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.ppr.base import PPRQuery
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "PAPER_K",
    "PAPER_LENGTH",
    "PAPER_STAGE_SPLIT",
    "Workload",
    "OpenLoopWorkload",
    "make_workload",
    "make_repeated_seed_workload",
    "make_zipf_workload",
    "make_poisson_arrivals",
    "make_open_loop_workload",
]

#: k, L and the stage split fixed for all of the paper's experiments (Sec. VI).
PAPER_K = 200
PAPER_LENGTH = 6
PAPER_STAGE_SPLIT: Tuple[int, int] = (3, 3)
PAPER_ALPHA = 0.85


@dataclass(frozen=True)
class Workload:
    """A graph plus the set of queries an experiment runs on it.

    Attributes
    ----------
    dataset:
        Dataset key or name the graph was loaded from.
    graph:
        The loaded (stand-in) graph.
    queries:
        The PPR queries, one per sampled seed node.
    """

    dataset: str
    graph: CSRGraph
    queries: Tuple[PPRQuery, ...]

    @property
    def num_queries(self) -> int:
        """Number of queries in the workload."""
        return len(self.queries)

    @property
    def seeds(self) -> Tuple[int, ...]:
        """The sampled seed nodes."""
        return tuple(query.seed for query in self.queries)


def sample_seeds(
    graph: CSRGraph,
    num_seeds: int,
    rng: RngLike = None,
    min_degree: int = 1,
) -> np.ndarray:
    """Sample ``num_seeds`` distinct seed nodes with degree >= ``min_degree``.

    Degree-0 nodes are excluded because a PPR query from an isolated node is
    trivially its own answer (and the paper's graphs have none).
    """
    if num_seeds <= 0:
        raise ValueError(f"num_seeds must be > 0, got {num_seeds}")
    generator = ensure_rng(rng)
    degrees = graph.degrees()
    (eligible,) = np.nonzero(degrees >= min_degree)
    if eligible.size == 0:
        raise ValueError("graph has no node satisfying the degree constraint")
    count = min(num_seeds, eligible.size)
    return generator.choice(eligible, size=count, replace=False)


def make_workload(
    dataset: str,
    num_seeds: int = 20,
    k: int = PAPER_K,
    length: int = PAPER_LENGTH,
    alpha: float = PAPER_ALPHA,
    rng: RngLike = None,
    scale: Optional[float] = None,
    graph: Optional[CSRGraph] = None,
) -> Workload:
    """Build a workload for one paper dataset (or a user-provided graph).

    Parameters
    ----------
    dataset:
        Dataset key (``"G1"``..) or name; ignored when ``graph`` is given
        except as a label.
    num_seeds:
        Number of random seed nodes to query.  The paper uses 500–1000; the
        default is lower so test/bench runs stay fast — pass the full count to
        reproduce the paper's averaging exactly.
    k, length, alpha:
        Query parameters (paper defaults).
    rng:
        Seed sampling randomness (deterministic by default).
    scale:
        Optional dataset down-scaling factor.
    graph:
        Optional pre-loaded graph (skips :func:`load_dataset`).
    """
    loaded = graph if graph is not None else load_dataset(dataset, scale=scale)
    seeds = sample_seeds(loaded, num_seeds, rng=rng)
    queries = tuple(
        PPRQuery(seed=int(seed), k=k, alpha=alpha, length=length) for seed in seeds
    )
    return Workload(dataset=dataset, graph=loaded, queries=queries)


def make_repeated_seed_workload(
    dataset: str,
    num_seeds: int,
    repeat_factor: int,
    k: int,
    rng: RngLike = None,
) -> Tuple[CSRGraph, List[PPRQuery]]:
    """Hot-seed serving workload: each sampled seed queried ``repeat_factor``
    times, shuffled the way real repeated traffic arrives (not seed-sorted
    blocks).  Shared by the serving studies E9 and E10 so both measure the
    exact same traffic mix.
    """
    workload = make_workload(
        dataset,
        num_seeds=num_seeds,
        k=k,
        length=PAPER_LENGTH,
        alpha=PAPER_ALPHA,
        rng=rng,
    )
    queries = [query for query in workload.queries for _ in range(repeat_factor)]
    generator = ensure_rng(rng)
    order = generator.permutation(len(queries))
    return workload.graph, [queries[index] for index in order]


def make_zipf_workload(
    dataset: str,
    num_queries: int,
    skew: float = 1.1,
    num_seeds: int = 32,
    k: int = PAPER_K,
    length: int = PAPER_LENGTH,
    alpha: float = PAPER_ALPHA,
    rng: RngLike = None,
    graph: Optional[CSRGraph] = None,
) -> Tuple[CSRGraph, List[PPRQuery]]:
    """Zipfian hot-seed workload: seeds drawn with rank-``skew`` popularity.

    Production query streams are heavy-tailed — a few hot seeds dominate
    while a long tail arrives once.  Each of the ``num_queries`` arrivals
    draws its seed from a pool of ``num_seeds`` sampled seeds with
    probability proportional to ``1 / rank**skew`` (``skew = 0`` degrades to
    the uniform repeated-traffic mix, ``skew ≈ 1.1`` is the classic web/
    social workload shape).  This is the acceptance workload of the
    cross-query result cache: the higher the skew, the more stage-one work
    repeats verbatim.

    Returns ``(graph, queries)`` like :func:`make_repeated_seed_workload`,
    with arrivals already in stream order (no extra shuffle needed — draws
    are i.i.d.).
    """
    if num_queries <= 0:
        raise ValueError(f"num_queries must be > 0, got {num_queries}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    workload = make_workload(
        dataset,
        num_seeds=num_seeds,
        k=k,
        length=length,
        alpha=alpha,
        rng=rng,
        graph=graph,
    )
    ranks = np.arange(1, len(workload.queries) + 1, dtype=np.float64)
    probabilities = ranks**-float(skew)
    probabilities /= probabilities.sum()
    generator = ensure_rng(rng)
    picks = generator.choice(
        len(workload.queries), size=num_queries, p=probabilities
    )
    return workload.graph, [workload.queries[int(pick)] for pick in picks]


@dataclass(frozen=True)
class OpenLoopWorkload:
    """An arrival-timed workload for online (latency-under-load) studies.

    Unlike the closed-loop batches above, an open-loop source submits query
    ``i`` at ``arrival_seconds[i]`` regardless of whether earlier queries
    have finished — which is what makes overload (and admission control)
    observable.  Arrival times are stored at **unit rate** (1 query/s on
    average); :meth:`arrivals_at` rescales them to any offered rate so every
    rate in a sweep replays the identical query sequence.
    """

    dataset: str
    graph: CSRGraph
    queries: Tuple[PPRQuery, ...]
    arrival_seconds: Tuple[float, ...]

    @property
    def num_queries(self) -> int:
        """Number of timed arrivals."""
        return len(self.queries)

    def arrivals_at(self, rate_qps: float) -> List[float]:
        """The arrival times rescaled to ``rate_qps`` offered queries/second."""
        if rate_qps <= 0:
            raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
        return [time / rate_qps for time in self.arrival_seconds]


def make_poisson_arrivals(
    num_arrivals: int, rate_qps: float = 1.0, rng: RngLike = None
) -> np.ndarray:
    """Arrival times of a Poisson process: exponential gaps at ``rate_qps``.

    The memoryless arrival process is the standard open-loop traffic model;
    its bursts (several arrivals inside one mean gap) are exactly what
    micro-batching exploits and admission control must survive.
    """
    if num_arrivals <= 0:
        raise ValueError(f"num_arrivals must be > 0, got {num_arrivals}")
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    generator = ensure_rng(rng)
    gaps = generator.exponential(scale=1.0 / rate_qps, size=num_arrivals)
    return np.cumsum(gaps)


def make_open_loop_workload(
    dataset: str,
    num_seeds: int,
    num_arrivals: int,
    k: int = PAPER_K,
    rng: RngLike = None,
    graph: Optional[CSRGraph] = None,
) -> OpenLoopWorkload:
    """Build a Poisson-timed hot-seed workload for the online serving studies.

    Each arrival queries a seed drawn (with replacement) from a pool of
    ``num_seeds`` hot seeds, so repeats occur the way production traffic
    repeats — which gives the frontend's dedup and the engine's caches
    something to work with.  Arrival times are unit-rate Poisson; rescale
    with :meth:`OpenLoopWorkload.arrivals_at`.
    """
    workload = make_workload(
        dataset,
        num_seeds=num_seeds,
        k=k,
        length=PAPER_LENGTH,
        alpha=PAPER_ALPHA,
        rng=rng,
        graph=graph,
    )
    generator = ensure_rng(rng)
    picks = generator.integers(0, len(workload.queries), size=num_arrivals)
    queries = tuple(workload.queries[int(pick)] for pick in picks)
    arrivals = make_poisson_arrivals(num_arrivals, rate_qps=1.0, rng=generator)
    return OpenLoopWorkload(
        dataset=dataset,
        graph=workload.graph,
        queries=queries,
        arrival_seconds=tuple(float(time) for time in arrivals),
    )
