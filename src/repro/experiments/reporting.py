"""Plain-text table rendering for experiment outputs.

Every experiment module returns structured dataclasses *and* can render a
text table with the same rows/columns the paper reports, so running the
benchmark harness prints something directly comparable with the paper's
tables and figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_ratio", "format_megabytes", "format_milliseconds"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row values; every row must have the same length as ``headers``.
    title:
        Optional title printed above the table.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(_line([str(h) for h in headers]))
    lines.append(_line(["-" * w for w in widths]))
    lines.extend(_line(row) for row in materialized)
    return "\n".join(lines)


def format_ratio(value: float) -> str:
    """Format a reduction/speedup factor like the paper (``13.43x``)."""
    if value == float("inf"):
        return "inf"
    return f"{value:.2f}x"


def format_megabytes(value_bytes: float) -> str:
    """Format a byte count in megabytes with three decimals (Table II style)."""
    return f"{value_bytes / (1024.0 * 1024.0):.3f}"


def format_milliseconds(value_seconds: float) -> str:
    """Format seconds as milliseconds with three decimals."""
    return f"{value_seconds * 1e3:.3f}"
