"""Experiment E4 — PPR-vector sparsity and precision vs selection ratio (Fig. 6).

Fig. 6 has two panels:

* **top** — average top-k precision as a function of the percentage of
  next-stage nodes selected for the second stage, averaged over random seeds
  on G1, G2 and G3.  The paper reports ~73.8 % precision at 1 %, 78.1 % at
  2 %, 85.2 % at 3 %, 96.1 % at 20 % and 96.9 % at 30 % — a steep rise
  followed by saturation;
* **bottom** — the distribution of normalised stage-one PPR scores in log
  scale, showing that more than 90 % of the nodes have near-zero scores while
  fewer than 1 % carry large scores.

This module computes both: the precision curve over a configurable ratio
sweep and a histogram of normalised residual scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.experiments.reporting import format_table
from repro.experiments.workloads import (
    PAPER_ALPHA,
    PAPER_K,
    PAPER_LENGTH,
    PAPER_STAGE_SPLIT,
    Workload,
    make_workload,
)
from repro.graph.bfs import extract_ego_subgraph
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision
from repro.utils.rng import RngLike

__all__ = [
    "SparsityCurvePoint",
    "ScoreDistribution",
    "SparsityStudy",
    "run_fig6",
    "format_fig6",
]

#: Selection ratios swept in the zoomed-in portion of Fig. 6 plus the tail.
PAPER_RATIOS: Tuple[float, ...] = (0.01, 0.02, 0.03, 0.05, 0.10, 0.20, 0.30)


@dataclass(frozen=True)
class SparsityCurvePoint:
    """Average precision at one selection ratio (one point of the top panel)."""

    ratio: float
    precision: float
    precision_per_dataset: Dict[str, float]
    mean_next_stage_tasks: float


@dataclass(frozen=True)
class ScoreDistribution:
    """Histogram of normalised stage-one residual scores (bottom panel).

    Attributes
    ----------
    bin_edges:
        Log10 bin edges of the normalised scores.
    counts:
        Node counts per bin, summed over all sampled seeds.
    near_zero_fraction:
        Fraction of nodes whose normalised score falls below
        ``near_zero_threshold`` — the paper reports more than 90 % of nodes
        carry near-zero scores.
    large_score_fraction:
        Fraction of nodes with normalised score above ``large_threshold`` —
        the paper reports less than 1 %.
    top_decile_mass_fraction:
        Fraction of the total residual mass held by the highest-scoring 10 %
        of nodes.  This is the property the next-stage selection exploits: a
        small subset of nodes carries most of the remaining probability mass.
    """

    bin_edges: np.ndarray
    counts: np.ndarray
    near_zero_fraction: float
    large_score_fraction: float
    top_decile_mass_fraction: float


@dataclass(frozen=True)
class SparsityStudy:
    """The full Fig. 6 reproduction."""

    datasets: Tuple[str, ...]
    num_seeds: int
    curve: Tuple[SparsityCurvePoint, ...]
    distribution: ScoreDistribution

    def precision_at(self, ratio: float) -> float:
        """Precision of the curve point closest to ``ratio``."""
        closest = min(self.curve, key=lambda point: abs(point.ratio - ratio))
        return closest.precision


def _residual_scores(workload: Workload, stage_length: int, alpha: float) -> np.ndarray:
    """Collect normalised stage-one residual scores over all workload seeds."""
    values: List[np.ndarray] = []
    for query in workload.queries:
        subgraph, _ = extract_ego_subgraph(workload.graph, query.seed, stage_length)
        initial = seed_vector(subgraph.num_nodes, subgraph.to_local(query.seed))
        result = graph_diffusion(subgraph.graph, initial, stage_length, alpha)
        residual = result.residual
        peak = residual.max()
        if peak > 0:
            values.append(residual / peak)
    if not values:
        return np.zeros(0)
    return np.concatenate(values)


def run_fig6(
    datasets: Sequence[str] = ("G1", "G2", "G3"),
    ratios: Sequence[float] = PAPER_RATIOS,
    num_seeds: int = 10,
    rng: RngLike = 13,
    near_zero_threshold: float = 0.05,
    large_threshold: float = 0.5,
    scale: Optional[float] = None,
) -> SparsityStudy:
    """Run the Fig. 6 precision-vs-ratio sweep and score-distribution study."""
    workloads = {
        dataset: make_workload(
            dataset,
            num_seeds=num_seeds,
            k=PAPER_K,
            length=PAPER_LENGTH,
            alpha=PAPER_ALPHA,
            rng=(int(rng) + index if isinstance(rng, int) else rng),
            scale=scale,
        )
        for index, dataset in enumerate(datasets)
    }

    # Ground truth (the exact single-stage local PPR) once per query.
    exact_results = {
        dataset: [LocalPPRSolver(w.graph).solve(q) for q in w.queries]
        for dataset, w in workloads.items()
    }

    curve: List[SparsityCurvePoint] = []
    for ratio in ratios:
        per_dataset: Dict[str, float] = {}
        task_counts: List[float] = []
        for dataset, workload in workloads.items():
            config = MeLoPPRConfig(
                stage_lengths=PAPER_STAGE_SPLIT,
                selector=RatioSelector(ratio),
                score_table_factor=10,
                track_memory=False,
            )
            solver = MeLoPPRSolver(workload.graph, config)
            precisions = []
            for query, exact in zip(workload.queries, exact_results[dataset]):
                approx = solver.solve(query)
                precisions.append(result_precision(approx, exact))
                task_counts.append(float(approx.metadata["num_next_stage_tasks"]))
            per_dataset[dataset] = float(np.mean(precisions))
        curve.append(
            SparsityCurvePoint(
                ratio=float(ratio),
                precision=float(np.mean(list(per_dataset.values()))),
                precision_per_dataset=per_dataset,
                mean_next_stage_tasks=float(np.mean(task_counts)),
            )
        )

    # Score distribution over the first dataset's stage-one residuals (the
    # paper's bottom panel uses one representative real-world graph).
    scores = np.concatenate(
        [
            _residual_scores(workload, PAPER_STAGE_SPLIT[0], PAPER_ALPHA)
            for workload in workloads.values()
        ]
    )
    positive = scores[scores > 0]
    if positive.size:
        log_scores = np.log10(positive)
        counts, bin_edges = np.histogram(log_scores, bins=20)
    else:
        counts, bin_edges = np.zeros(1, dtype=np.int64), np.zeros(2)
    near_zero = float(np.mean(scores < near_zero_threshold)) if scores.size else 0.0
    large = float(np.mean(scores > large_threshold)) if scores.size else 0.0
    if scores.size:
        ordered = np.sort(scores)[::-1]
        top_count = max(1, int(np.ceil(0.1 * ordered.size)))
        total_mass = ordered.sum()
        top_decile_mass = float(ordered[:top_count].sum() / total_mass) if total_mass > 0 else 0.0
    else:
        top_decile_mass = 0.0

    return SparsityStudy(
        datasets=tuple(datasets),
        num_seeds=num_seeds,
        curve=tuple(curve),
        distribution=ScoreDistribution(
            bin_edges=bin_edges,
            counts=counts,
            near_zero_fraction=near_zero,
            large_score_fraction=large,
            top_decile_mass_fraction=top_decile_mass,
        ),
    )


def format_fig6(study: SparsityStudy) -> str:
    """Render the precision curve and sparsity summary as text."""
    headers = ["Selection ratio", "Precision (avg)", *study.datasets, "Avg next-stage tasks"]
    rows = []
    for point in study.curve:
        rows.append(
            [
                f"{point.ratio:.0%}",
                f"{point.precision:.1%}",
                *[f"{point.precision_per_dataset[d]:.1%}" for d in study.datasets],
                f"{point.mean_next_stage_tasks:.1f}",
            ]
        )
    table = format_table(
        headers,
        rows,
        title=(
            f"Fig. 6 (top) — precision vs next-stage selection ratio "
            f"({study.num_seeds} seeds per graph)"
        ),
    )
    sparsity = (
        "Fig. 6 (bottom) — normalised residual score distribution: "
        f"{study.distribution.near_zero_fraction:.1%} of nodes near zero, "
        f"{study.distribution.large_score_fraction:.1%} with large scores, "
        f"top 10% of nodes hold {study.distribution.top_decile_mass_fraction:.1%} "
        "of the residual mass"
    )
    return table + "\n\n" + sparsity
