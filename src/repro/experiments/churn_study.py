"""Experiment E17 — streaming edge churn under surgical cache invalidation.

This study is the acceptance harness of the dynamic-graph path: a Zipfian
hot-seed query stream is answered in micro-batches while the host graph
churns between batches — each update step applies a batch of random edge
deletions and insertions through
:meth:`~repro.serving.engine.QueryEngine.apply_update`, which compacts a
:class:`~repro.graph.delta.DeltaGraph` overlay into a fresh canonical CSR
and *surgically* invalidates the cache tiers (ego-sub-graph cache, stage-one
score-table cache, shard halos) instead of clearing them.

Two invariants are asserted at **every** step of **every** run, across the
serial/thread/process backends and the sharded router:

* the engine's compacted graph is bit-identical to a from-scratch
  ``CSRGraph.from_edges`` rebuild of the evolving edge set (fingerprint
  equality — same CSR arrays);
* every answer matches a fresh, uncached serial solver on that rebuilt
  graph, score for score.

The sweep is update-rate × cache-budget per serving mode, and each run
reports the combined cache hit rate next to the invalidation counters —
showing how much cached state *survives* churn (the clear-everything
baseline would report a cold cache after every update; see
``benchmarks/bench_churn.py`` for that comparison under a gate).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.workloads import make_zipf_workload
from repro.graph.csr import CSRGraph
from repro.graph.delta import EdgeOp
from repro.graph.partition import partition_graph
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving.backends import make_backend
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine
from repro.serving.result_cache import ScoreTableCache
from repro.serving.sharding import ShardRouter
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "ChurnRun",
    "ChurnStep",
    "make_churn_script",
    "ChurnStudy",
    "run_churn_study",
    "format_churn",
]

#: Serving modes every churn sweep exercises by default.
DEFAULT_MODES = ("serial", "thread:2", "sharded", "process:2")


def _edge_set(graph: CSRGraph) -> Set[Tuple[int, int]]:
    """The graph's undirected edge set as canonical ``(u < v)`` pairs."""
    sources = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), graph.degrees()
    )
    targets = graph.indices.astype(np.int64)
    mask = sources < targets
    return set(zip(sources[mask].tolist(), targets[mask].tolist()))


@dataclass(frozen=True)
class ChurnStep:
    """One step of a pre-computed churn script (shared across runs).

    ``ops`` is the edge-op batch applied *before* answering ``batch``;
    ``fingerprint`` and ``reference_scores`` come from an independent
    from-scratch rebuild of the evolving edge set, answered by a fresh,
    uncached serial solver — the ground truth every serving mode must hit
    bit for bit.
    """

    batch: Tuple[PPRQuery, ...]
    ops: Tuple[EdgeOp, ...]
    fingerprint: str
    reference_scores: Tuple[Dict[int, float], ...]


def make_churn_script(
    graph: CSRGraph,
    queries: Sequence[PPRQuery],
    batch_size: int,
    update_rate: int,
    config: MeLoPPRConfig,
    rng: np.random.Generator,
) -> List[ChurnStep]:
    """Pre-compute the update stream and its ground truth for one rate.

    The script depends only on ``(graph, queries, batch_size, update_rate,
    rng)`` — every (mode, budget) run of the sweep replays the same ops and
    is checked against the same reference, so the expensive uncached
    reference solves are paid once per rate, not once per run.
    """
    batches = [
        tuple(queries[index : index + batch_size])
        for index in range(0, len(queries), batch_size)
    ]
    edge_set = _edge_set(graph)
    sorted_edges = sorted(edge_set)
    current = graph
    steps: List[ChurnStep] = []
    for index, batch in enumerate(batches):
        ops: List[EdgeOp] = []
        if index > 0 and update_rate > 0:
            for _ in range(update_rate):
                if rng.random() < 0.5 and sorted_edges:
                    position = int(rng.integers(len(sorted_edges)))
                    u, v = sorted_edges.pop(position)
                    edge_set.discard((u, v))
                    ops.append(("delete", u, v))
                else:
                    while True:
                        u = int(rng.integers(graph.num_nodes))
                        v = int(rng.integers(graph.num_nodes))
                        if u == v:
                            continue
                        edge = (u, v) if u < v else (v, u)
                        if edge not in edge_set:
                            break
                    edge_set.add(edge)
                    bisect.insort(sorted_edges, edge)
                    ops.append(("insert", edge[0], edge[1]))
            # The ground truth deliberately avoids DeltaGraph: an
            # independent from-scratch rebuild is what "bit-identical to
            # rebuilding" is measured against.
            current = CSRGraph.from_edges(
                graph.num_nodes, sorted_edges, name=graph.name
            )
        reference = MeLoPPRSolver(current, config)
        reference_scores = tuple(
            dict(reference.solve(query).scores.items()) for query in batch
        )
        steps.append(
            ChurnStep(
                batch=batch,
                ops=tuple(ops),
                fingerprint=current.fingerprint(),
                reference_scores=reference_scores,
            )
        )
    return steps


def _make_engine(
    mode: str, graph: CSRGraph, config: MeLoPPRConfig, cache_budget: int
) -> QueryEngine:
    """One serving mode's engine over ``graph`` with ``cache_budget`` tiers."""
    solver = MeLoPPRSolver(graph, config)
    if mode == "sharded":
        partition = partition_graph(
            graph, num_shards=4, halo_depth=max(config.stage_lengths)
        )
        router = ShardRouter(
            partition,
            cache_bytes=cache_budget,
            result_cache_bytes=cache_budget,
        )
        return QueryEngine(solver, router=router)
    backend = make_backend(mode)
    if getattr(backend, "executes_stage_tasks", False):
        # Worker processes own their extraction caches; the parent-side
        # result cache is the tier the update path must keep correct here.
        return QueryEngine(
            solver, backend=backend, result_cache=ScoreTableCache(cache_budget)
        )
    return QueryEngine(
        solver,
        backend=backend,
        cache=SubgraphCache(cache_budget),
        result_cache=ScoreTableCache(cache_budget),
    )


@dataclass(frozen=True)
class ChurnRun:
    """One (mode, update rate, cache budget) configuration's measurements."""

    label: str
    mode: str
    update_rate: int
    cache_budget_bytes: int
    num_queries: int
    num_updates: int
    wall_seconds: float
    throughput_qps: float
    hit_rate: Optional[float]
    shards_rebuilt: int
    subgraph_entries_dropped: int
    result_entries_dropped: int
    result_entries_rekeyed: int
    identical: bool

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "mode": self.mode,
            "update_rate": self.update_rate,
            "cache_budget_bytes": self.cache_budget_bytes,
            "num_queries": self.num_queries,
            "num_updates": self.num_updates,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "hit_rate": self.hit_rate,
            "shards_rebuilt": self.shards_rebuilt,
            "subgraph_entries_dropped": self.subgraph_entries_dropped,
            "result_entries_dropped": self.result_entries_dropped,
            "result_entries_rekeyed": self.result_entries_rekeyed,
            "identical": self.identical,
        }


@dataclass(frozen=True)
class ChurnStudy:
    """The update-rate × cache-budget sweep across serving modes."""

    dataset: str
    num_queries: int
    num_seeds: int
    batch_size: int
    k: int
    stage_lengths: Tuple[int, ...]
    update_rates: Tuple[int, ...]
    cache_budgets: Tuple[int, ...]
    modes: Tuple[str, ...]
    runs: Tuple[ChurnRun, ...]

    def by_label(self) -> Dict[str, ChurnRun]:
        """Runs keyed by configuration label."""
        return {run.label: run for run in self.runs}

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "num_queries": self.num_queries,
            "num_seeds": self.num_seeds,
            "batch_size": self.batch_size,
            "k": self.k,
            "stage_lengths": list(self.stage_lengths),
            "update_rates": list(self.update_rates),
            "cache_budgets": list(self.cache_budgets),
            "modes": list(self.modes),
            "runs": [run.as_dict() for run in self.runs],
        }


def _churn_label(mode: str, rate: int, budget: int) -> str:
    """Run label, e.g. ``sharded:r8:b256k`` (shared bench contract)."""
    return f"{mode}:r{rate}:b{budget // 1024}k"


def run_churn_study(
    dataset: str = "G1",
    num_queries: int = 64,
    num_seeds: int = 12,
    batch_size: int = 8,
    update_rates: Sequence[int] = (0, 6),
    cache_budgets: Sequence[int] = (256 * 1024, 4 * 1024 * 1024),
    modes: Sequence[str] = DEFAULT_MODES,
    k: int = 50,
    stage_lengths: Tuple[int, ...] = (3, 3),
    selection_ratio: float = 0.01,
    rng: RngLike = 7,
) -> ChurnStudy:
    """Sweep edge-churn rates and cache budgets across serving modes.

    Parameters
    ----------
    dataset:
        Dataset key of the (initial) host graph.
    num_queries, num_seeds, batch_size:
        Zipf-1.1 arrivals, their hot-seed pool, and the micro-batch size
        (one update step fires between consecutive batches).
    update_rates:
        Edge ops applied per update step (0 = static-graph baseline, which
        pins the no-churn hit rate the other rates are read against).
    cache_budgets:
        Byte budget applied to every cache tier of every mode.
    modes:
        Serving modes (backend specs, plus ``"sharded"`` for the
        :class:`~repro.serving.sharding.ShardRouter` path).
    k, stage_lengths, selection_ratio:
        Query/solver shape; memory tracking is off so wall-clock reflects
        serving work.

    Raises
    ------
    AssertionError
        If any step of any run diverges from the from-scratch rebuild —
        either the compacted graph's fingerprint or any query's scores.
    """
    base_rng = ensure_rng(rng)
    graph, queries = make_zipf_workload(
        dataset,
        num_queries,
        skew=1.1,
        num_seeds=num_seeds,
        k=k,
        length=sum(stage_lengths),
        rng=base_rng,
    )
    config = MeLoPPRConfig(
        stage_lengths=stage_lengths,
        selector=RatioSelector(selection_ratio),
        track_memory=False,
    )
    runs: List[ChurnRun] = []
    for rate in update_rates:
        script = make_churn_script(
            graph,
            queries,
            batch_size,
            rate,
            config,
            np.random.default_rng(10_000 + rate),
        )
        num_updates = sum(1 for step in script if step.ops)
        for budget in cache_budgets:
            for mode in modes:
                label = _churn_label(mode, rate, budget)
                invalidated = {
                    "shards_rebuilt": 0,
                    "subgraph_entries_dropped": 0,
                    "result_entries_dropped": 0,
                    "result_entries_rekeyed": 0,
                }
                with _make_engine(mode, graph, config, budget) as engine:
                    for step in script:
                        if step.ops:
                            outcome = engine.apply_update(list(step.ops))
                            for key in invalidated:
                                invalidated[key] += outcome["invalidated"][key]
                            if (
                                engine.solver.graph.fingerprint()
                                != step.fingerprint
                            ):
                                raise AssertionError(
                                    f"{label}: compacted graph diverged from "
                                    "the from-scratch rebuild"
                                )
                        results = engine.solve_batch(list(step.batch))
                        scores = [
                            dict(result.scores.items()) for result in results
                        ]
                        if scores != list(step.reference_scores):
                            raise AssertionError(
                                f"{label}: answers diverged from the "
                                "from-scratch rebuild after an update"
                            )
                    stats = engine.stats()
                runs.append(
                    ChurnRun(
                        label=label,
                        mode=mode,
                        update_rate=int(rate),
                        cache_budget_bytes=int(budget),
                        num_queries=stats.queries_served,
                        num_updates=num_updates,
                        wall_seconds=stats.wall_seconds,
                        throughput_qps=stats.throughput_qps,
                        hit_rate=(
                            None if stats.cache is None else stats.cache.hit_rate
                        ),
                        identical=True,
                        **invalidated,
                    )
                )
    return ChurnStudy(
        dataset=dataset,
        num_queries=num_queries,
        num_seeds=num_seeds,
        batch_size=batch_size,
        k=k,
        stage_lengths=tuple(stage_lengths),
        update_rates=tuple(int(rate) for rate in update_rates),
        cache_budgets=tuple(int(budget) for budget in cache_budgets),
        modes=tuple(modes),
        runs=tuple(runs),
    )


def format_churn(study: ChurnStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Configuration",
        "Mode",
        "Rate",
        "Budget",
        "Queries",
        "Updates",
        "QPS",
        "Hit rate",
        "Shards rebuilt",
        "SG dropped",
        "RC dropped",
        "RC rekeyed",
        "Identical",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                run.mode,
                run.update_rate,
                f"{run.cache_budget_bytes // 1024}k",
                run.num_queries,
                run.num_updates,
                f"{run.throughput_qps:.1f}",
                "-" if run.hit_rate is None else f"{run.hit_rate:.0%}",
                run.shards_rebuilt,
                run.subgraph_entries_dropped,
                run.result_entries_dropped,
                run.result_entries_rekeyed,
                "yes" if run.identical else "NO",
            ]
        )
    title = (
        f"E17 — streaming edge churn on {study.dataset} "
        f"({study.num_queries} Zipf arrivals in batches of "
        f"{study.batch_size}, split {list(study.stage_lengths)}; every run "
        "verified bit-identical to from-scratch rebuilds)"
    )
    return format_table(headers, rows, title=title)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point printing the table (and optionally JSON)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="G1")
    parser.add_argument("--num-queries", type=int, default=64)
    parser.add_argument("--num-seeds", type=int, default=12)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument(
        "--update-rates", type=int, nargs="+", default=[0, 6]
    )
    parser.add_argument(
        "--cache-budgets",
        type=int,
        nargs="+",
        default=[256 * 1024, 4 * 1024 * 1024],
    )
    parser.add_argument(
        "--modes", nargs="+", default=list(DEFAULT_MODES)
    )
    parser.add_argument("--json", default=None, help="also write the JSON report here")
    args = parser.parse_args(argv)

    study = run_churn_study(
        dataset=args.dataset,
        num_queries=args.num_queries,
        num_seeds=args.num_seeds,
        batch_size=args.batch_size,
        update_rates=tuple(args.update_rates),
        cache_budgets=tuple(args.cache_budgets),
        modes=tuple(args.modes),
    )
    print(format_churn(study))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(study.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI only
    raise SystemExit(main())
