"""Experiment E2 — FPGA resource utilisation (Table I of the paper).

Table I reports LUT and BRAM utilisation of the KC705 for parallelism
``P in {1, 2, 4, 8, 16}``, with DSP usage below 0.1 % because the divisions
are implemented in logic.  The reproduction evaluates the fitted
:class:`~repro.hardware.resources.ResourceModel` at the same parallelism
values and reports both the modelled fractions and the paper's numbers side
by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.reporting import format_table
from repro.hardware.resources import PAPER_TABLE_I, ResourceModel, ResourceUsage

__all__ = ["ResourceRow", "ResourceStudy", "run_table1", "format_table1"]

PAPER_PARALLELISMS: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ResourceRow:
    """Modelled and reference utilisation at one parallelism value."""

    parallelism: int
    usage: ResourceUsage
    paper_lut_fraction: Optional[float]
    paper_bram_fraction: Optional[float]

    @property
    def lut_error(self) -> Optional[float]:
        """Absolute difference between modelled and paper LUT fraction."""
        if self.paper_lut_fraction is None:
            return None
        return abs(self.usage.lut_fraction - self.paper_lut_fraction)

    @property
    def bram_error(self) -> Optional[float]:
        """Absolute difference between modelled and paper BRAM fraction."""
        if self.paper_bram_fraction is None:
            return None
        return abs(self.usage.bram_fraction - self.paper_bram_fraction)


@dataclass(frozen=True)
class ResourceStudy:
    """The full Table I sweep."""

    rows: Tuple[ResourceRow, ...]

    def max_lut_error(self) -> float:
        """Largest LUT-fraction deviation from the paper across the sweep."""
        return max((row.lut_error or 0.0) for row in self.rows)

    def max_bram_error(self) -> float:
        """Largest BRAM-fraction deviation from the paper across the sweep."""
        return max((row.bram_error or 0.0) for row in self.rows)


def run_table1(
    parallelisms: Sequence[int] = PAPER_PARALLELISMS,
    model: Optional[ResourceModel] = None,
) -> ResourceStudy:
    """Evaluate the resource model at every parallelism value of Table I."""
    model = model if model is not None else ResourceModel()
    rows = []
    for parallelism in parallelisms:
        usage = model.usage(parallelism)
        reference = PAPER_TABLE_I.get(parallelism, {})
        rows.append(
            ResourceRow(
                parallelism=parallelism,
                usage=usage,
                paper_lut_fraction=reference.get("lut"),
                paper_bram_fraction=reference.get("bram"),
            )
        )
    return ResourceStudy(rows=tuple(rows))


def format_table1(study: ResourceStudy) -> str:
    """Render the study as a text table mirroring Table I."""
    headers = [
        "P",
        "LUTs",
        "LUT %",
        "LUT % (paper)",
        "BRAM blocks",
        "BRAM %",
        "BRAM % (paper)",
        "DSP %",
    ]
    rows = []
    for row in study.rows:
        rows.append(
            [
                row.parallelism,
                row.usage.luts,
                f"{row.usage.lut_fraction:.1%}",
                "-" if row.paper_lut_fraction is None else f"{row.paper_lut_fraction:.1%}",
                row.usage.bram_blocks,
                f"{row.usage.bram_fraction:.1%}",
                "-" if row.paper_bram_fraction is None else f"{row.paper_bram_fraction:.1%}",
                f"{row.usage.dsp_fraction:.2%}",
            ]
        )
    return format_table(
        headers, rows, title="Table I — FPGA resource utilisation vs parallelism P"
    )
