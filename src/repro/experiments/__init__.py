"""Experiment harness: one module per paper table/figure plus ablations."""

from repro.experiments.ablation_stage_split import (
    StageSplitRow,
    StageSplitStudy,
    format_stage_split,
    run_stage_split_ablation,
)
from repro.experiments.fig5_scalability import (
    ScalabilityPoint,
    ScalabilityStudy,
    format_fig5,
    run_fig5,
)
from repro.experiments.fig6_sparsity import (
    ScoreDistribution,
    SparsityCurvePoint,
    SparsityStudy,
    format_fig6,
    run_fig6,
)
from repro.experiments.fig7_tradeoff import (
    TradeoffPoint,
    TradeoffStudy,
    format_fig7,
    run_fig7,
)
from repro.experiments.harness import (
    PAPER_PROFILE,
    QUICK_PROFILE,
    ExperimentProfile,
    run_all,
)
from repro.experiments.quantization_study import (
    QuantizationRow,
    QuantizationStudy,
    format_quantization,
    run_quantization_study,
)
from repro.experiments.reporting import format_table
from repro.experiments.score_table_study import (
    ScoreTableRow,
    ScoreTableStudy,
    format_score_table,
    run_score_table_study,
)
from repro.experiments.serving_study import (
    ServingRun,
    ServingStudy,
    format_serving,
    run_serving_study,
)
from repro.experiments.table1_resources import (
    ResourceRow,
    ResourceStudy,
    format_table1,
    run_table1,
)
from repro.experiments.table2_memory import (
    MemoryRow,
    MemoryStudy,
    format_table2,
    run_table2,
)
from repro.experiments.workloads import (
    PAPER_K,
    PAPER_LENGTH,
    PAPER_STAGE_SPLIT,
    Workload,
    make_workload,
)

__all__ = [
    "ServingRun",
    "ServingStudy",
    "format_serving",
    "run_serving_study",
    "StageSplitRow",
    "StageSplitStudy",
    "format_stage_split",
    "run_stage_split_ablation",
    "ScalabilityPoint",
    "ScalabilityStudy",
    "format_fig5",
    "run_fig5",
    "ScoreDistribution",
    "SparsityCurvePoint",
    "SparsityStudy",
    "format_fig6",
    "run_fig6",
    "TradeoffPoint",
    "TradeoffStudy",
    "format_fig7",
    "run_fig7",
    "PAPER_PROFILE",
    "QUICK_PROFILE",
    "ExperimentProfile",
    "run_all",
    "QuantizationRow",
    "QuantizationStudy",
    "format_quantization",
    "run_quantization_study",
    "format_table",
    "ScoreTableRow",
    "ScoreTableStudy",
    "format_score_table",
    "run_score_table_study",
    "ResourceRow",
    "ResourceStudy",
    "format_table1",
    "run_table1",
    "MemoryRow",
    "MemoryStudy",
    "format_table2",
    "run_table2",
    "PAPER_K",
    "PAPER_LENGTH",
    "PAPER_STAGE_SPLIT",
    "Workload",
    "make_workload",
]
