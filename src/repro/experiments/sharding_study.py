"""Experiment E10 — sharded serving (partitioners × shard counts).

Like E9 this is a serving-layer study, not a paper artefact: it characterises
the sharding subsystem added on top of the reproduction.  A repeated-seed
workload is answered once through the unsharded serial engine (the reference)
and then through a shard-routed engine for every ``strategy × shard count``
combination, and the study reports throughput, the aggregate and per-shard
cache hit rates, the cross-shard fallback rate and the halo overhead bytes of
each partition.

Every sharded configuration's answers are verified **bit-identical** to the
unsharded reference before the study returns — sharding must be a pure
locality/scale-out layer, never a numerical one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_ratio, format_table
from repro.experiments.workloads import PAPER_STAGE_SPLIT, make_repeated_seed_workload
from repro.graph.partition import partition_graph
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.serving.cache import DEFAULT_CACHE_BYTES, SubgraphCache
from repro.serving.engine import QueryEngine
from repro.serving.sharding import ShardRouter
from repro.utils.rng import RngLike

__all__ = [
    "ShardingRun",
    "ShardingStudy",
    "run_sharding_study",
    "format_sharding",
]


@dataclass(frozen=True)
class ShardingRun:
    """One engine configuration's measurements over the workload."""

    label: str
    strategy: str
    num_shards: int
    cache_enabled: bool
    num_queries: int
    wall_seconds: float
    throughput_qps: float
    mean_latency_seconds: float
    hit_rate: float
    per_shard_hit_rates: Tuple[float, ...]
    fallback_rate: float
    halo_overhead_bytes: int
    replication_factor: float
    speedup_vs_unsharded: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "label": self.label,
            "strategy": self.strategy,
            "num_shards": self.num_shards,
            "cache_enabled": self.cache_enabled,
            "num_queries": self.num_queries,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "mean_latency_seconds": self.mean_latency_seconds,
            "cache_hit_rate": self.hit_rate,
            "per_shard_hit_rates": list(self.per_shard_hit_rates),
            "cross_shard_fallback_rate": self.fallback_rate,
            "halo_overhead_bytes": self.halo_overhead_bytes,
            "replication_factor": self.replication_factor,
            "speedup_vs_unsharded": self.speedup_vs_unsharded,
        }


@dataclass(frozen=True)
class ShardingStudy:
    """The full strategy × shard-count sweep (plus the unsharded reference)."""

    dataset: str
    num_seeds: int
    repeat_factor: int
    k: int
    halo_depth: int
    unsharded_qps: float
    runs: Tuple[ShardingRun, ...]

    def by_label(self) -> Dict[str, ShardingRun]:
        """Runs keyed by configuration label."""
        return {run.label: run for run in self.runs}

    @property
    def best(self) -> ShardingRun:
        """The highest-throughput sharded run."""
        return max(self.runs, key=lambda run: run.throughput_qps)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "dataset": self.dataset,
            "num_seeds": self.num_seeds,
            "repeat_factor": self.repeat_factor,
            "k": self.k,
            "halo_depth": self.halo_depth,
            "unsharded_qps": self.unsharded_qps,
            "runs": [run.as_dict() for run in self.runs],
        }


def run_sharding_study(
    dataset: str = "G1",
    num_seeds: int = 6,
    repeat_factor: int = 3,
    shard_counts: Sequence[int] = (2, 4),
    strategies: Sequence[str] = ("hash", "range", "degree"),
    halo_depth: int = max(PAPER_STAGE_SPLIT),
    k: int = 100,
    selection_ratio: float = 0.02,
    cache: bool = True,
    rng: RngLike = 23,
) -> ShardingStudy:
    """Sweep shard counts × partitioners over a repeated-seed workload.

    Parameters
    ----------
    dataset:
        Dataset key of the host graph.
    num_seeds, repeat_factor:
        Workload shape (distinct hot seeds × queries per seed).
    shard_counts, strategies:
        The sweep grid.
    halo_depth:
        Halo radius of every partition; the default covers the paper's stage
        lengths, so the expected cross-shard fallback rate is zero.
    k, selection_ratio:
        Query and solver knobs (memory tracking off, as in E9).
    cache:
        Whether the router keeps per-shard caches.
    """
    config = MeLoPPRConfig(
        stage_lengths=PAPER_STAGE_SPLIT,
        selector=RatioSelector(selection_ratio),
        score_table_factor=10,
        track_memory=False,
    )
    graph, queries = make_repeated_seed_workload(dataset, num_seeds, repeat_factor, k, rng)

    # Unsharded serial reference: the scores every configuration must match.
    # Cache-matched to the sharded runs (one shared cache vs per-shard
    # caches), so speedup_vs_unsharded isolates the sharding layer instead of
    # re-measuring the cache win E9 already reports.
    reference_cache = SubgraphCache(DEFAULT_CACHE_BYTES) if cache else None
    with QueryEngine(MeLoPPRSolver(graph, config), cache=reference_cache) as engine:
        reference = engine.solve_batch(queries)
        unsharded_qps = engine.stats().throughput_qps
    reference_scores = [dict(result.scores.items()) for result in reference]

    runs: List[ShardingRun] = []
    for strategy in strategies:
        for num_shards in shard_counts:
            partition = partition_graph(
                graph, num_shards, strategy=strategy, halo_depth=halo_depth
            )
            # Split the reference's byte budget across the shard caches so
            # the aggregate capacity matches and the ratio isolates routing,
            # not extra cache capacity.
            router = ShardRouter(
                partition,
                cache_bytes=(
                    max(1, DEFAULT_CACHE_BYTES // num_shards) if cache else None
                ),
            )
            label = f"{strategy}-s{num_shards}"
            with QueryEngine(MeLoPPRSolver(graph, config), router=router) as engine:
                results = engine.solve_batch(queries)
                stats = engine.stats()
            for index, (got, want) in enumerate(zip(results, reference_scores)):
                if dict(got.scores.items()) != want:
                    raise AssertionError(
                        f"configuration {label} changed query {index}'s scores — "
                        "sharded serving must be bit-identical to the unsharded "
                        "path"
                    )
            router_stats = stats.router
            qps = stats.throughput_qps
            runs.append(
                ShardingRun(
                    label=label,
                    strategy=strategy,
                    num_shards=num_shards,
                    cache_enabled=cache,
                    num_queries=stats.queries_served,
                    wall_seconds=stats.wall_seconds,
                    throughput_qps=qps,
                    mean_latency_seconds=stats.mean_latency_seconds,
                    hit_rate=router_stats.hit_rate,
                    per_shard_hit_rates=tuple(router_stats.per_shard_hit_rates()),
                    fallback_rate=router_stats.fallback_rate,
                    halo_overhead_bytes=router_stats.halo_overhead_bytes,
                    replication_factor=partition.replication_factor(),
                    speedup_vs_unsharded=(
                        qps / unsharded_qps if unsharded_qps > 0 else 0.0
                    ),
                )
            )
    return ShardingStudy(
        dataset=dataset,
        num_seeds=num_seeds,
        repeat_factor=repeat_factor,
        k=k,
        halo_depth=halo_depth,
        unsharded_qps=unsharded_qps,
        runs=tuple(runs),
    )


def format_sharding(study: ShardingStudy) -> str:
    """Render the study as a text table."""
    headers = [
        "Configuration",
        "Shards",
        "QPS",
        "Mean lat (ms)",
        "Hit rate",
        "Fallback",
        "Halo (KB)",
        "Replication",
        "vs unsharded",
    ]
    rows = []
    for run in study.runs:
        rows.append(
            [
                run.label,
                run.num_shards,
                f"{run.throughput_qps:.1f}",
                f"{run.mean_latency_seconds * 1e3:.2f}",
                f"{run.hit_rate:.0%}",
                f"{run.fallback_rate:.0%}",
                f"{run.halo_overhead_bytes / 1024:.1f}",
                f"{run.replication_factor:.2f}x",
                format_ratio(run.speedup_vs_unsharded),
            ]
        )
    title = (
        f"E10 — sharded serving on {study.dataset} "
        f"({study.num_seeds} hot seeds x{study.repeat_factor}, "
        f"halo depth {study.halo_depth}, "
        f"unsharded baseline {study.unsharded_qps:.1f} qps)"
    )
    return format_table(headers, rows, title=title)
