"""Configuration of the MeLoPPR solver.

The paper fixes ``k = 200``, ``L = 6`` and ``l1 = l2 = 3`` for all
experiments (Sec. VI) and exposes two tuning knobs:

* the **next-stage node budget** (how many / what fraction of the stage-one
  residual nodes are expanded in stage two) — the latency/precision dial of
  Fig. 6 and Fig. 7, and
* the **global score table size factor** ``c`` (Sec. V-B) — the table keeps
  only the top ``c * k`` scores, trading a little precision for on-chip
  memory and CPU↔FPGA transfer volume.

:class:`MeLoPPRConfig` captures both plus the stage split itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.meloppr.selection import NextStageSelector, RatioSelector

__all__ = ["MeLoPPRConfig"]


@dataclass(frozen=True)
class MeLoPPRConfig:
    """Parameters of a MeLoPPR run.

    Attributes
    ----------
    stage_lengths:
        The decomposition ``L = l1 + l2 (+ l3 ...)``.  The paper uses
        ``(3, 3)``; more than two stages is supported (Sec. IV-B notes the
        decomposition "can be easily extended to more terms").
    selector:
        Strategy choosing which next-stage nodes are expanded at each stage
        boundary.  Defaults to the paper's ratio-based selection.
    score_table_factor:
        The ``c`` of Sec. V-B: the global score table keeps the top ``c * k``
        nodes.  ``None`` keeps an unbounded table (pure-software mode).
    track_memory:
        Whether the CPU solver measures its peak working set with
        ``tracemalloc``.
    residual_tolerance:
        Residual entries with absolute value at or below this threshold are
        never selected for the next stage (they cannot improve precision
        measurably but would cost a BFS each).
    """

    stage_lengths: Tuple[int, ...] = (3, 3)
    selector: NextStageSelector = field(default_factory=lambda: RatioSelector(0.02))
    score_table_factor: Optional[int] = 10
    track_memory: bool = True
    residual_tolerance: float = 1e-12

    def __post_init__(self) -> None:
        if not self.stage_lengths:
            raise ValueError("stage_lengths must contain at least one stage")
        if any(length <= 0 for length in self.stage_lengths):
            raise ValueError(
                f"every stage length must be > 0, got {self.stage_lengths}"
            )
        if self.score_table_factor is not None and self.score_table_factor <= 0:
            raise ValueError(
                f"score_table_factor must be > 0 or None, got {self.score_table_factor}"
            )
        if self.residual_tolerance < 0:
            raise ValueError("residual_tolerance must be >= 0")

    @property
    def total_length(self) -> int:
        """The full diffusion length ``L`` realised by all stages together."""
        return int(sum(self.stage_lengths))

    def score_table_capacity(self, k: int) -> Optional[int]:
        """Global score table capacity ``c * k`` for a query asking for ``k``.

        This is the single place the Sec. V-B bound is computed; the solver,
        the planner and the serving engine all call it so the capacity cannot
        drift between them.  ``None`` means an unbounded table.
        """
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        if self.score_table_factor is None:
            return None
        return int(self.score_table_factor) * int(k)

    @property
    def num_stages(self) -> int:
        """Number of stages."""
        return len(self.stage_lengths)

    @classmethod
    def paper_default(cls, selection_ratio: float = 0.02) -> "MeLoPPRConfig":
        """The configuration used throughout the paper's experiments.

        ``k = 200`` and ``alpha`` live on the query; this sets
        ``l1 = l2 = 3``, ``c = 10`` and a ratio-based next-stage selector.
        """
        return cls(
            stage_lengths=(3, 3),
            selector=RatioSelector(selection_ratio),
            score_table_factor=10,
        )

    def with_selector(self, selector: NextStageSelector) -> "MeLoPPRConfig":
        """Return a copy of this config with a different selector."""
        return MeLoPPRConfig(
            stage_lengths=self.stage_lengths,
            selector=selector,
            score_table_factor=self.score_table_factor,
            track_memory=self.track_memory,
            residual_tolerance=self.residual_tolerance,
        )

    def with_stage_lengths(self, stage_lengths: Sequence[int]) -> "MeLoPPRConfig":
        """Return a copy of this config with a different stage split."""
        return MeLoPPRConfig(
            stage_lengths=tuple(int(length) for length in stage_lengths),
            selector=self.selector,
            score_table_factor=self.score_table_factor,
            track_memory=self.track_memory,
            residual_tolerance=self.residual_tolerance,
        )
