"""Next-stage node selection strategies (the sparsity exploitation of Sec. IV-D).

After the stage-one diffusion, the residual vector ``S^r_l1`` tells how much
un-diffused probability mass sits at each node of ``G_l1(s)``.  Expanding
*all* of them recovers the exact length-``L`` diffusion but costs one BFS and
one diffusion per node; the paper observes that the residual vector is highly
sparse, so selecting only the largest-residual nodes retains most of the
precision at a fraction of the cost.

Four strategies are provided:

* :class:`RatioSelector` — the paper's knob: expand the top ``ratio`` fraction
  of candidate nodes (Fig. 6 sweeps this from 0 % to 30 %).
* :class:`CountSelector` — expand a fixed number of nodes.
* :class:`ThresholdSelector` — expand every node whose residual exceeds a
  threshold (an adaptive variant useful for latency SLOs).
* :class:`AllSelector` — expand everything (exact MeLoPPR; used by tests to
  verify the decomposition identity of Eq. 8).
"""

from __future__ import annotations

import abc
import math
from typing import List, Tuple

import numpy as np

__all__ = [
    "NextStageSelector",
    "RatioSelector",
    "CountSelector",
    "ThresholdSelector",
    "AllSelector",
]


class NextStageSelector(abc.ABC):
    """Strategy deciding which next-stage nodes to expand.

    ``select`` receives the candidate nodes (global ids) and their residual
    scores and returns the chosen subset ordered by descending residual, which
    is the order the scheduler dispatches them to processing elements.
    """

    #: Short name used in experiment tables.
    name: str = "selector"

    @abc.abstractmethod
    def select(self, nodes: np.ndarray, residuals: np.ndarray) -> np.ndarray:
        """Return the selected node ids, ordered by descending residual."""

    @staticmethod
    def _order_by_residual(nodes: np.ndarray, residuals: np.ndarray) -> np.ndarray:
        """Order ``nodes`` by descending residual, ties broken by node id."""
        nodes = np.asarray(nodes, dtype=np.int64)
        residuals = np.asarray(residuals, dtype=np.float64)
        if nodes.shape != residuals.shape:
            raise ValueError("nodes and residuals must have the same shape")
        order = np.lexsort((nodes, -residuals))
        return nodes[order]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RatioSelector(NextStageSelector):
    """Select the top ``ratio`` fraction of candidates (at least ``minimum``).

    Parameters
    ----------
    ratio:
        Fraction of the candidate set to expand, in ``[0, 1]``.  The paper's
        Fig. 6 shows ~80 % precision at 2 % and ~96 % at 20 %.
    minimum:
        Lower bound on the number of selected nodes whenever the candidate
        set is non-empty (defaults to 1 so stage two always runs).
    """

    name = "ratio"

    def __init__(self, ratio: float, minimum: int = 1) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {ratio}")
        if minimum < 0:
            raise ValueError(f"minimum must be >= 0, got {minimum}")
        self.ratio = float(ratio)
        self.minimum = int(minimum)

    def select(self, nodes: np.ndarray, residuals: np.ndarray) -> np.ndarray:
        ordered = self._order_by_residual(nodes, residuals)
        if ordered.size == 0:
            return ordered
        count = int(math.ceil(self.ratio * ordered.size))
        count = max(count, min(self.minimum, ordered.size))
        return ordered[:count]

    def __repr__(self) -> str:
        return f"RatioSelector(ratio={self.ratio}, minimum={self.minimum})"


class CountSelector(NextStageSelector):
    """Select a fixed number of highest-residual candidates."""

    name = "count"

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.count = int(count)

    def select(self, nodes: np.ndarray, residuals: np.ndarray) -> np.ndarray:
        ordered = self._order_by_residual(nodes, residuals)
        return ordered[: self.count]

    def __repr__(self) -> str:
        return f"CountSelector(count={self.count})"


class ThresholdSelector(NextStageSelector):
    """Select every candidate whose residual exceeds ``threshold``."""

    name = "threshold"

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = float(threshold)

    def select(self, nodes: np.ndarray, residuals: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        residuals = np.asarray(residuals, dtype=np.float64)
        mask = residuals > self.threshold
        return self._order_by_residual(nodes[mask], residuals[mask])

    def __repr__(self) -> str:
        return f"ThresholdSelector(threshold={self.threshold})"


class AllSelector(NextStageSelector):
    """Select every candidate (exact multi-stage MeLoPPR)."""

    name = "all"

    def select(self, nodes: np.ndarray, residuals: np.ndarray) -> np.ndarray:
        return self._order_by_residual(nodes, residuals)
