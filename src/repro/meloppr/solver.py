"""The multi-stage MeLoPPR solver (CPU reference implementation).

This is the paper's primary contribution, assembled from the pieces in this
package:

1. **Stage one** — extract ``G_l1(s)`` with a depth-``l1`` BFS, run a
   length-``l1`` diffusion on it, fold the accumulated scores into the global
   score table, and keep the residual scores.
2. **Selection** — choose the next-stage nodes from the residual vector using
   the configured :class:`~repro.meloppr.selection.NextStageSelector`
   (sparsity exploitation, Sec. IV-D).
3. **Stage two (and later)** — for every selected node ``v`` with residual
   mass ``r_v``: subtract the ``alpha^l1 * r_v`` correction at ``v`` (Eq. 6),
   extract ``G_l2(v)``, diffuse a unit vector for ``l2`` steps, scale by
   ``alpha^l1 * r_v`` and fold into the global table (Eq. 8, by linearity).
   Unselected nodes simply keep their residual contribution in place, which
   is the zero-cost "0-step diffusion" approximation — total probability mass
   is preserved no matter how few nodes are expanded.
4. **Answer** — the top-``k`` entries of the global score table.

The solver never materialises any data structure proportional to
``G_L(s)``; its working set is bounded by the largest single sub-graph, which
is the memory saving reported in Table II.

Per-sub-graph work records (:class:`StageTaskRecord`) are attached to the
result so the FPGA co-simulation (:mod:`repro.hardware.cosim`) can replay the
exact same computation on the modelled accelerator without recomputing the
algorithmic part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.diffusion.sparse_vector import SparseScoreVector
from repro.graph.bfs import extract_ego_subgraph
from repro.graph.csr import CSRGraph
from repro.memory.tracker import MemoryTracker
from repro.meloppr.aggregation import GlobalScoreTable
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.linear import split_residual
from repro.meloppr.stage import StagePlan
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.utils.timing import TimingBreakdown

__all__ = ["MeLoPPRSolver", "StageTaskRecord"]


@dataclass(frozen=True)
class StageTaskRecord:
    """Work record of one sub-graph diffusion inside a MeLoPPR query.

    These records are both the solver's own bookkeeping (memory modelling)
    and the input to the hardware co-simulation, which charges BFS time to
    the CPU and diffusion cycles to the FPGA per task.

    Attributes
    ----------
    stage_index:
        0 for the stage-one task, 1 for stage-two tasks, ...
    center_node:
        Global node id the sub-graph was extracted around.
    weight:
        Scale applied to this task's accumulated scores before aggregation.
    subgraph_nodes, subgraph_edges:
        Size of the extracted sub-graph ``G_l(center)``.
    bfs_edges_scanned:
        Adjacency entries the CPU touched during the BFS extraction.
    propagations:
        Adjacency entries the diffusion kernel touched (FPGA diffuser work).
    """

    stage_index: int
    center_node: int
    weight: float
    subgraph_nodes: int
    subgraph_edges: int
    bfs_edges_scanned: int
    propagations: int


class MeLoPPRSolver(PPRSolver):
    """Memory-efficient low-latency multi-stage PPR (the paper's algorithm).

    Parameters
    ----------
    graph:
        Host graph.
    config:
        Stage split, next-stage selection strategy and score-table bound.
        Defaults to the paper's configuration (``l1 = l2 = 3``, ``c = 10``,
        2 % ratio selection).
    """

    name = "meloppr-cpu"

    def __init__(self, graph: CSRGraph, config: Optional[MeLoPPRConfig] = None) -> None:
        super().__init__(graph)
        self._config = config if config is not None else MeLoPPRConfig.paper_default()

    @property
    def config(self) -> MeLoPPRConfig:
        """The solver configuration."""
        return self._config

    # ------------------------------------------------------------------
    def solve(self, query: PPRQuery) -> PPRResult:
        """Answer one PPR query with multi-stage decomposition."""
        config = self._config
        if config.total_length != query.length:
            # The stage split must realise exactly the requested diffusion
            # length; re-split while preserving the number of stages.
            plan_lengths = _resplit(query.length, config.stage_lengths)
        else:
            plan_lengths = config.stage_lengths
        plan = StagePlan.create(plan_lengths, query.alpha)

        timing = TimingBreakdown()
        tracker = MemoryTracker(enabled=config.track_memory)

        capacity = (
            None
            if config.score_table_factor is None
            else config.score_table_factor * query.k
        )
        table = GlobalScoreTable(capacity=capacity)
        tasks: List[StageTaskRecord] = []
        peak_subgraph_bytes = 0

        with tracker:
            # Work list for the current stage: (center node, task weight).
            work: List[Tuple[int, float]] = [(query.seed, 1.0)]
            for stage_index, stage_length in enumerate(plan.stage_lengths):
                is_last_stage = stage_index + 1 == plan.num_stages
                # Residual mass handed to the next stage, keyed by global node.
                next_candidates: Dict[int, float] = {}

                for center, weight in work:
                    with timing.measure("bfs"):
                        subgraph, bfs = extract_ego_subgraph(
                            self._graph, center, stage_length
                        )
                    with timing.measure("diffusion"):
                        initial = seed_vector(
                            subgraph.num_nodes, subgraph.to_local(center)
                        )
                        diffusion = graph_diffusion(
                            subgraph.graph, initial, stage_length, query.alpha
                        )
                    with timing.measure("aggregation"):
                        table.add_many(
                            subgraph.global_ids, weight * diffusion.accumulated
                        )
                    if not is_last_stage:
                        with timing.measure("selection"):
                            (locals_with_mass,) = np.nonzero(
                                diffusion.residual > config.residual_tolerance
                            )
                            carried_nodes = subgraph.global_ids[locals_with_mass]
                            carried_values = weight * diffusion.residual[locals_with_mass]
                            for node, value in zip(carried_nodes, carried_values):
                                node = int(node)
                                next_candidates[node] = (
                                    next_candidates.get(node, 0.0) + float(value)
                                )

                    tasks.append(
                        StageTaskRecord(
                            stage_index=stage_index,
                            center_node=center,
                            weight=weight,
                            subgraph_nodes=subgraph.num_nodes,
                            subgraph_edges=subgraph.num_edges,
                            bfs_edges_scanned=bfs.edges_scanned,
                            propagations=diffusion.propagations,
                        )
                    )
                    peak_subgraph_bytes = max(
                        peak_subgraph_bytes,
                        subgraph.graph.nbytes()
                        + diffusion.accumulated.nbytes
                        + diffusion.residual.nbytes,
                    )

                if is_last_stage:
                    break

                # Select the next-stage nodes from the merged candidate set.
                with timing.measure("selection"):
                    candidate_nodes = np.fromiter(
                        next_candidates.keys(), dtype=np.int64, count=len(next_candidates)
                    )
                    candidate_values = np.fromiter(
                        next_candidates.values(),
                        dtype=np.float64,
                        count=len(next_candidates),
                    )
                    selected = config.selector.select(candidate_nodes, candidate_values)

                # Build next work list; apply the Eq. 6 correction only for the
                # nodes whose residual is re-diffused (unselected nodes keep
                # their residual contribution, preserving probability mass).
                stage_alpha = query.alpha**stage_length
                next_work: List[Tuple[int, float]] = []
                with timing.measure("aggregation"):
                    for node in selected:
                        residual_mass = next_candidates[int(node)]
                        correction = stage_alpha * residual_mass
                        table.add(int(node), -correction)
                        next_work.append((int(node), correction))
                work = next_work
                if not work:
                    break

        scores = table.to_sparse_vector()
        scores.prune(0.0)

        modelled_bytes = peak_subgraph_bytes + table.nbytes()
        peak = tracker.peak_bytes if config.track_memory else modelled_bytes

        num_stage_two_tasks = sum(1 for task in tasks if task.stage_index > 0)
        return PPRResult(
            query=query,
            scores=scores,
            timing=timing,
            peak_memory_bytes=peak,
            metadata={
                "stage_lengths": tuple(plan.stage_lengths),
                "tasks": tasks,
                "num_tasks": len(tasks),
                "num_next_stage_tasks": num_stage_two_tasks,
                "max_subgraph_nodes": max(task.subgraph_nodes for task in tasks),
                "max_subgraph_edges": max(task.subgraph_edges for task in tasks),
                "modelled_bytes": modelled_bytes,
                "score_table_entries": table.num_entries,
                "score_table_evictions": table.total_evictions,
                "selector": repr(self._config.selector),
            },
        )


def _resplit(total_length: int, template: Tuple[int, ...]) -> Tuple[int, ...]:
    """Re-split ``total_length`` across the same number of stages as ``template``.

    Keeps the relative proportions of the template split as closely as
    possible; used when a query's ``length`` differs from the configured
    ``sum(stage_lengths)``.
    """
    from repro.meloppr.stage import split_length

    num_stages = len(template)
    if total_length < num_stages:
        num_stages = max(1, total_length)
    return split_length(total_length, num_stages)
