"""The multi-stage MeLoPPR solver (CPU reference implementation).

This is the paper's primary contribution, assembled from the pieces in this
package:

1. **Stage one** — extract ``G_l1(s)`` with a depth-``l1`` BFS, run a
   length-``l1`` diffusion on it, fold the accumulated scores into the global
   score table, and keep the residual scores.
2. **Selection** — choose the next-stage nodes from the residual vector using
   the configured :class:`~repro.meloppr.selection.NextStageSelector`
   (sparsity exploitation, Sec. IV-D).
3. **Stage two (and later)** — for every selected node ``v`` with residual
   mass ``r_v``: subtract the ``alpha^l1 * r_v`` correction at ``v`` (Eq. 6),
   extract ``G_l2(v)``, diffuse a unit vector for ``l2`` steps, scale by
   ``alpha^l1 * r_v`` and fold into the global table (Eq. 8, by linearity).
   Unselected nodes simply keep their residual contribution in place, which
   is the zero-cost "0-step diffusion" approximation — total probability mass
   is preserved no matter how few nodes are expanded.
4. **Answer** — the top-``k`` entries of the global score table.

The solver never materialises any data structure proportional to
``G_L(s)``; its working set is bounded by the largest single sub-graph, which
is the memory saving reported in Table II.

The stage loop itself lives in :mod:`repro.meloppr.planner`: ``solve`` builds
a :class:`~repro.meloppr.planner.MeLoPPRPlan` (the planner) and drives it with
the serial reference executor.  The serving engine (:mod:`repro.serving`)
drives the same plans with batching, a sub-graph cache and pluggable
backends — one algorithmic code path for both.

Per-sub-graph work records (:class:`StageTaskRecord`) are attached to the
result so the FPGA co-simulation (:mod:`repro.hardware.cosim`) can replay the
exact same computation on the modelled accelerator without recomputing the
algorithmic part.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.csr import CSRGraph
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.planner import MeLoPPRPlan, StageTaskRecord, execute_plan
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver

__all__ = ["MeLoPPRSolver", "StageTaskRecord"]


class MeLoPPRSolver(PPRSolver):
    """Memory-efficient low-latency multi-stage PPR (the paper's algorithm).

    Parameters
    ----------
    graph:
        Host graph.
    config:
        Stage split, next-stage selection strategy and score-table bound.
        Defaults to the paper's configuration (``l1 = l2 = 3``, ``c = 10``,
        2 % ratio selection).
    """

    name = "meloppr-cpu"

    def __init__(self, graph: CSRGraph, config: Optional[MeLoPPRConfig] = None) -> None:
        super().__init__(graph)
        self._config = config if config is not None else MeLoPPRConfig.paper_default()

    @property
    def config(self) -> MeLoPPRConfig:
        """The solver configuration."""
        return self._config

    # ------------------------------------------------------------------
    def plan(
        self, query: PPRQuery, track_memory: Optional[bool] = None
    ) -> MeLoPPRPlan:
        """Build the stage-task planner for one query (without executing it).

        The serving engine uses this to separate planning from execution;
        :meth:`solve` is exactly ``execute_plan(self.plan(query))``.
        ``track_memory`` overrides the config's tracemalloc switch (the
        engine disables it under concurrent backends, where the
        process-global trace cannot measure per-query peaks).
        """
        return MeLoPPRPlan(self._graph, self._config, query, track_memory=track_memory)

    def solve(self, query: PPRQuery) -> PPRResult:
        """Answer one PPR query with multi-stage decomposition."""
        return execute_plan(self.plan(query))
