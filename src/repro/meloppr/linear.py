"""Linear decomposition (Sec. IV-C, Eq. 7–8).

Graph diffusion is linear in its initial vector, so the stage-two diffusion of
the residual ``S^r_{l1}`` can be split into one diffusion per non-zero entry:

.. math::

    GD^{(l_2)}(S^r_{l_1}) = \\sum_{v \\in G_{l_1}(s)} GD^{(l_2)}(S^r_{l_1, v})

where ``S^r_{l1,v}`` zeroes every component except the one at ``v``.  Each of
those diffusions only needs the small sub-graph ``G_{l2}(v)``, which is what
makes MeLoPPR memory-efficient: no data structure proportional to
``G_L(s)`` is ever materialised.

This module provides the decomposition utilities (splitting a residual vector
into single-node components) plus a single-graph verification helper used by
the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.diffusion.diffusion import graph_diffusion
from repro.diffusion.transition import TransitionOperator
from repro.graph.csr import CSRGraph

__all__ = [
    "ResidualComponent",
    "split_residual",
    "linear_decomposed_diffusion",
]


@dataclass(frozen=True)
class ResidualComponent:
    """One term of the linear decomposition: node ``node`` with mass ``value``.

    The stage-two diffusion for this component is seeded with a one-hot
    vector at ``node`` scaled by ``value`` — equivalently, diffuse a unit
    vector and scale the result, which is how the solver shares sub-graph
    diffusions between components.
    """

    node: int
    value: float


def split_residual(
    nodes: np.ndarray,
    residuals: np.ndarray,
    tolerance: float = 0.0,
) -> List[ResidualComponent]:
    """Split a residual vector (as parallel arrays) into per-node components.

    Entries with ``|value| <= tolerance`` are dropped — they carry no
    probability mass worth another BFS + diffusion.

    Parameters
    ----------
    nodes:
        Node ids carrying residual mass.
    residuals:
        Residual values aligned with ``nodes``.
    tolerance:
        Absolute drop threshold.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    residuals = np.asarray(residuals, dtype=np.float64)
    if nodes.shape != residuals.shape:
        raise ValueError("nodes and residuals must have the same shape")
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    components = [
        ResidualComponent(int(node), float(value))
        for node, value in zip(nodes, residuals)
        if abs(value) > tolerance
    ]
    # Descending residual order: the order in which next-stage nodes are
    # considered for selection and dispatched to processing elements.
    components.sort(key=lambda component: (-component.value, component.node))
    return components


def linear_decomposed_diffusion(
    graph_or_operator: Union[CSRGraph, TransitionOperator],
    nodes: np.ndarray,
    residuals: np.ndarray,
    length: int,
    alpha: float,
    num_nodes: int | None = None,
) -> np.ndarray:
    """Evaluate the right-hand side of Eq. 7 on a single graph.

    Runs one diffusion per non-zero residual component and sums the results.
    Mathematically identical to diffusing the whole residual vector at once;
    the point of the decomposition is that *in the solver* each component
    diffusion runs on its own small sub-graph.  Tests compare this function
    against the direct diffusion to validate the identity.
    """
    operator = (
        graph_or_operator
        if isinstance(graph_or_operator, TransitionOperator)
        else TransitionOperator(graph_or_operator)
    )
    total_nodes = operator.num_nodes if num_nodes is None else int(num_nodes)
    result = np.zeros(total_nodes, dtype=np.float64)
    for component in split_residual(nodes, residuals):
        seed = np.zeros(total_nodes, dtype=np.float64)
        seed[component.node] = component.value
        diffusion = graph_diffusion(operator, seed, length, alpha)
        result += diffusion.accumulated
    return result
