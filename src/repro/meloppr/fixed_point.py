"""Fixed-point (integer) arithmetic model of the FPGA datapath (Sec. V-A).

Floating-point PPR scores are "highly inefficient on FPGA", so the paper's
accelerator represents scores as 32-bit integers:

* the seed node starts with a large integer ``Max = d * |G_L(s)|`` where ``d``
  is a degree-derived scale (the paper uses half the maximum degree of
  ``G_L(s)``), and
* the multiplication by the fractional decay ``alpha`` is approximated as
  ``alpha ~= alpha_p / 2**q`` with a 16-bit integer ``alpha_p`` and a
  ``q``-bit right shift (``q = 10`` in the paper), so no DSP divider is
  needed.

The paper reports that with ``d`` equal to the average degree the top-k
precision loss is below 4 %, and with ``d`` equal to the maximum degree it is
below 0.001 %.  :class:`FixedPointFormat` captures the representation;
:func:`quantize_alpha` and :func:`fixed_point_diffusion` implement the
integer datapath so the loss can be measured (experiment E6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.diffusion.kernels import DiffusionKernel
from repro.diffusion.transition import TransitionOperator
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "FixedPointFormat",
    "quantize_alpha",
    "fixed_point_diffusion",
    "FixedPointDiffusionResult",
]

#: Bit width of the integer score representation used on the FPGA.
SCORE_BITS = 32

#: Bit width of the quantised alpha numerator.
ALPHA_BITS = 16


def quantize_alpha(alpha: float, shift_bits: int = 10) -> Tuple[int, int]:
    """Quantise ``alpha`` as ``alpha_p / 2**shift_bits``.

    Returns ``(alpha_p, shift_bits)`` with ``alpha_p`` clamped to 16 bits.
    """
    alpha = check_probability(alpha, "alpha")
    shift_bits = check_positive_int(shift_bits, "shift_bits")
    numerator = int(round(alpha * (1 << shift_bits)))
    limit = (1 << ALPHA_BITS) - 1
    return min(numerator, limit), shift_bits


@dataclass(frozen=True)
class FixedPointFormat:
    """The integer score format of the FPGA datapath.

    Attributes
    ----------
    seed_value:
        The integer assigned to the seed node (``Max = d * |G_L(s)|``).
    alpha_numerator:
        Quantised alpha numerator ``alpha_p``.
    shift_bits:
        The shift amount ``q`` (division by ``2**q``).
    """

    seed_value: int
    alpha_numerator: int
    shift_bits: int

    def __post_init__(self) -> None:
        if self.seed_value <= 0:
            raise ValueError(f"seed_value must be > 0, got {self.seed_value}")
        if self.seed_value >= 2**SCORE_BITS:
            raise ValueError(
                f"seed_value {self.seed_value} does not fit in {SCORE_BITS} bits"
            )
        if not 0 <= self.alpha_numerator < 2**ALPHA_BITS:
            raise ValueError(
                f"alpha_numerator must fit in {ALPHA_BITS} bits, got {self.alpha_numerator}"
            )
        if self.shift_bits <= 0:
            raise ValueError(f"shift_bits must be > 0, got {self.shift_bits}")

    @property
    def alpha_effective(self) -> float:
        """The decay factor actually realised by the integer datapath."""
        return self.alpha_numerator / float(1 << self.shift_bits)

    @classmethod
    def for_subgraph(
        cls,
        alpha: float,
        subgraph_nodes: int,
        degree_scale: float,
        shift_bits: int = 10,
    ) -> "FixedPointFormat":
        """Build the format for one query, following the paper's recipe.

        ``seed_value = ceil(degree_scale * subgraph_nodes)`` where
        ``degree_scale`` is the ``d`` of Sec. V-A (average degree, half the
        maximum degree, or the maximum degree of ``G_L(s)``).
        """
        if subgraph_nodes <= 0:
            raise ValueError("subgraph_nodes must be > 0")
        if degree_scale <= 0:
            raise ValueError("degree_scale must be > 0")
        seed_value = int(np.ceil(degree_scale * subgraph_nodes))
        seed_value = max(seed_value, 1)
        seed_value = min(seed_value, 2**SCORE_BITS - 1)
        numerator, shift = quantize_alpha(alpha, shift_bits)
        return cls(seed_value=seed_value, alpha_numerator=numerator, shift_bits=shift)

    def scale_alpha(self, values: np.ndarray) -> np.ndarray:
        """Multiply integer ``values`` by alpha using the shift-based datapath."""
        values = np.asarray(values, dtype=np.int64)
        return (values * self.alpha_numerator) >> self.shift_bits

    def to_float(self, values: np.ndarray) -> np.ndarray:
        """Convert integer scores back to the [0, 1] probability scale."""
        return np.asarray(values, dtype=np.float64) / float(self.seed_value)


@dataclass(frozen=True)
class FixedPointDiffusionResult:
    """Output of :func:`fixed_point_diffusion` (integer and rescaled scores)."""

    accumulated_int: np.ndarray
    residual_int: np.ndarray
    accumulated: np.ndarray
    residual: np.ndarray
    format: FixedPointFormat


def fixed_point_diffusion(
    graph_or_operator: Union[CSRGraph, TransitionOperator],
    seed: int,
    length: int,
    fmt: FixedPointFormat,
    kernel: Union[str, DiffusionKernel, None] = None,
) -> FixedPointDiffusionResult:
    """Integer-datapath graph diffusion, mirroring the FPGA PE.

    The propagation divides each node's integer score by its degree with
    integer division (truncation) and the decay multiplication uses the
    shift-based :meth:`FixedPointFormat.scale_alpha`; both are the precision
    loss sources the paper quantifies.

    Parameters
    ----------
    graph_or_operator:
        The (sub-)graph to diffuse on.
    seed:
        Local node id receiving the initial ``seed_value``.
    length:
        Number of propagation steps.
    fmt:
        The integer format (seed magnitude and quantised alpha).
    kernel:
        Propagation kernel (see :mod:`repro.diffusion.kernels`).  The
        integer scatter is exact under any summation order, so every kernel
        yields identical results here too.
    """
    if isinstance(graph_or_operator, TransitionOperator):
        operator = graph_or_operator
        if kernel is not None:
            operator = operator.with_kernel(kernel)
    else:
        operator = TransitionOperator.for_graph(graph_or_operator, kernel)
    graph = operator.graph
    num_nodes = graph.num_nodes
    if not 0 <= seed < num_nodes:
        raise ValueError(f"seed {seed} out of range for {num_nodes} nodes")
    if length < 0:
        raise ValueError("length must be >= 0")

    degrees = graph.degrees().astype(np.int64)
    initial = np.zeros(num_nodes, dtype=np.int64)
    initial[seed] = fmt.seed_value

    one_minus_alpha_numerator = (1 << fmt.shift_bits) - fmt.alpha_numerator

    residual = initial.copy()
    accumulated = np.zeros(num_nodes, dtype=np.int64)
    alpha_power = np.int64(1 << fmt.shift_bits)  # alpha^step in q-bit fixed point
    for _ in range(length):
        # accumulated += (1 - alpha) * alpha^step * residual  (all fixed point)
        term = (residual * alpha_power) >> fmt.shift_bits
        accumulated += (term * one_minus_alpha_numerator) >> fmt.shift_bits
        # Propagate: each node pushes floor(score / degree) to every neighbour.
        per_neighbor = np.where(degrees > 0, residual // np.maximum(degrees, 1), 0)
        residual = operator.propagate_int(per_neighbor)
        alpha_power = (alpha_power * fmt.alpha_numerator) >> fmt.shift_bits
    accumulated += (residual * alpha_power) >> fmt.shift_bits

    return FixedPointDiffusionResult(
        accumulated_int=accumulated,
        residual_int=residual,
        accumulated=fmt.to_float(accumulated),
        residual=fmt.to_float(residual),
        format=fmt,
    )
