"""Planner / executor decomposition of a MeLoPPR query.

:class:`~repro.meloppr.solver.MeLoPPRSolver.solve` used to run the whole
multi-stage loop inline: extract an ego sub-graph, diffuse, fold the scores,
select the next-stage nodes, repeat.  The serving engine
(:mod:`repro.serving`) needs those pieces separated so that batching,
sub-graph caching and alternative execution backends (thread pools, the
modelled FPGA) can all share one algorithmic code path:

* :class:`MeLoPPRPlan` is the **planner** — a stateful object that, stage by
  stage, publishes the pending :class:`StageTask` list (pure descriptions of
  "extract ``G_l(center)``, diffuse, fold with this weight"), folds the
  resulting scores into the global table, applies the Eq. 6 residual
  correction and selects the next stage's tasks.  It performs no graph
  traversal itself.
* :func:`execute_stage_task` is the smallest **executor** unit: it runs the
  BFS extraction and the diffusion for a single task.  The extraction step is
  pluggable (``extract=``) which is where the serving engine wires in its
  :class:`~repro.serving.cache.SubgraphCache`.
* :func:`execute_plan` is the reference serial executor driving a plan to
  completion; ``MeLoPPRSolver.solve`` is now exactly
  ``execute_plan(self.plan(query))``.

The numerical behaviour (floating-point operation order, selection, score
table updates) is identical to the former inline loop, so planner-based
execution returns bit-identical scores to the historical solver.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import (
    Callable,
    ContextManager,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.diffusion.diffusion import DiffusionResult, graph_diffusion, seed_vector
from repro.diffusion.kernels import DiffusionKernel
from repro.graph.bfs import BFSResult, extract_ego_subgraph
from repro.graph.csr import CSRGraph
from repro.graph.subgraph import Subgraph
from repro.memory.tracker import MemoryTracker
from repro.meloppr.aggregation import GlobalScoreTable, ScoreTableSnapshot
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.stage import StagePlan, split_length
from repro.ppr.base import PPRQuery, PPRResult
from repro.utils.timing import TimingBreakdown

__all__ = [
    "StageTask",
    "StageTaskOutcome",
    "StageTaskRecord",
    "StageOneState",
    "MeLoPPRPlan",
    "ExtractFn",
    "default_extract",
    "execute_stage_task",
    "execute_plan",
]


@dataclass(frozen=True)
class StageTaskRecord:
    """Work record of one sub-graph diffusion inside a MeLoPPR query.

    These records are both the solver's own bookkeeping (memory modelling)
    and the input to the hardware co-simulation, which charges BFS time to
    the CPU and diffusion cycles to the FPGA per task.

    Attributes
    ----------
    stage_index:
        0 for the stage-one task, 1 for stage-two tasks, ...
    center_node:
        Global node id the sub-graph was extracted around.
    weight:
        Scale applied to this task's accumulated scores before aggregation.
    subgraph_nodes, subgraph_edges:
        Size of the extracted sub-graph ``G_l(center)``.
    bfs_edges_scanned:
        Adjacency entries the CPU touched during the BFS extraction.
    propagations:
        Adjacency entries the diffusion kernel touched (FPGA diffuser work).
    """

    stage_index: int
    center_node: int
    weight: float
    subgraph_nodes: int
    subgraph_edges: int
    bfs_edges_scanned: int
    propagations: int


@dataclass(frozen=True)
class StageTask:
    """A pure description of one sub-graph diffusion to execute.

    Attributes
    ----------
    stage_index:
        Which stage of the decomposition the task belongs to.
    center:
        Global node id to extract the ego sub-graph around.
    length:
        BFS depth and diffusion length ``l`` for this stage.
    weight:
        Scale applied to the accumulated scores when folding (``alpha`` powers
        times residual mass, per Eq. 8).
    alpha:
        Decay factor of the diffusion.
    """

    stage_index: int
    center: int
    length: int
    weight: float
    alpha: float


@dataclass(frozen=True)
class StageTaskOutcome:
    """What an executor produced for one :class:`StageTask`.

    Attributes
    ----------
    task:
        The executed task.
    subgraph:
        The extracted (or cache-served) ego sub-graph.
    bfs:
        BFS bookkeeping of the extraction.  For a cache hit this is the
        *original* extraction's record — the modelled BFS cost of the task is
        unchanged, only the wall-clock cost disappears.
    diffusion:
        The diffusion output (always computed fresh; only extraction caches).
    cache_hit:
        Whether the extraction was served from a sub-graph cache.
    """

    task: StageTask
    subgraph: Subgraph
    bfs: BFSResult
    diffusion: DiffusionResult
    cache_hit: bool = False


@dataclass(frozen=True)
class StageOneState:
    """The folded outcome of a query's first stage — a plan resume point.

    Everything :meth:`MeLoPPRPlan.from_stage_one_table` needs to rebuild a
    plan *as if* stage one had just completed: the score table after folding
    the stage-one diffusion and applying the Eq. 6 corrections, the selected
    next-stage work list, the stage-one task records and the modelled-memory
    bookkeeping.  Stage one is a pure function of
    ``(graph, seed, stage split, alpha, table capacity, selector)``, so a
    cached state replayed through a fresh plan yields **bit-identical**
    scores — the serving layer's cross-query result cache
    (:class:`repro.serving.result_cache.ScoreTableCache`) stores these.

    The dataclass is deeply immutable (tuples of primitives and frozen
    records), so one cached instance can resume any number of plans on any
    number of threads concurrently.
    """

    stage_lengths: Tuple[int, ...]
    alpha: float
    table: ScoreTableSnapshot
    next_work: Tuple[Tuple[int, float], ...]
    records: Tuple[StageTaskRecord, ...]
    cache_hits: int
    cache_misses: int
    peak_subgraph_bytes: int
    done: bool


#: Extraction hook signature: ``(graph, center, depth) -> (subgraph, bfs, hit)``.
ExtractFn = Callable[[CSRGraph, int, int], Tuple[Subgraph, BFSResult, bool]]


def default_extract(graph: CSRGraph, center: int, depth: int) -> Tuple[Subgraph, BFSResult, bool]:
    """The cache-less extraction hook: always extract fresh."""
    subgraph, bfs = extract_ego_subgraph(graph, center, depth)
    return subgraph, bfs, False


def _resplit(total_length: int, template: Tuple[int, ...]) -> Tuple[int, ...]:
    """Re-split ``total_length`` across the same number of stages as ``template``.

    Keeps the relative proportions of the template split as closely as
    possible; used when a query's ``length`` differs from the configured
    ``sum(stage_lengths)``.  Degenerate lengths collapse to fewer stages: a
    length-1 query becomes the single stage ``(1,)`` and a length-0 query the
    single zero-step stage ``(0,)`` (a 0-step diffusion returns the seed
    vector itself, so the query's answer is the seed node).
    """
    if total_length == 0:
        return (0,)
    num_stages = len(template)
    if total_length < num_stages:
        num_stages = max(1, total_length)
    return split_length(total_length, num_stages)


def _make_stage_plan(stage_lengths: Tuple[int, ...], alpha: float) -> StagePlan:
    """Build a :class:`StagePlan`, tolerating the degenerate ``(0,)`` split."""
    if stage_lengths == (0,):
        # StagePlan.create rejects zero-length stages (they are meaningless
        # mid-decomposition), but the single zero-step stage of a length-0
        # query is well-defined: weight 1, no residual hand-off.
        return StagePlan(stage_lengths=(0,), alpha=float(alpha), weights=(1.0,))
    return StagePlan.create(stage_lengths, alpha)


class MeLoPPRPlan:
    """The stateful planner of one MeLoPPR query.

    The plan walks the stage decomposition: it publishes the pending
    :class:`StageTask` list for the current stage (:attr:`pending_tasks`),
    the executor runs those tasks however it likes (serially, through a
    sub-graph cache, on modelled hardware) and hands the
    :class:`StageTaskOutcome` list back via :meth:`complete_stage`, at which
    point the plan folds scores, applies the residual correction and selects
    the next stage's work.  When :attr:`done`, :meth:`finish` assembles the
    :class:`~repro.ppr.base.PPRResult`.

    Outcomes must be returned in task order — aggregation order affects the
    bounded score table, and keeping it deterministic is what makes engine
    results reproducible across backends.

    Parameters
    ----------
    graph, config, query:
        What to solve and how.
    track_memory:
        Overrides ``config.track_memory`` when not ``None``.  The engine
        passes ``False`` under concurrent backends: ``tracemalloc`` is
        process-global, so two plans measuring at once would corrupt each
        other's peaks; with tracking off, ``peak_memory_bytes`` falls back
        to the (deterministic) modelled working set.

    Notes
    -----
    Memory tracking starts lazily at the first :meth:`complete_stage` call
    and stops in :meth:`close` (called automatically on the last stage, by
    :func:`execute_plan` on error, and as a ``__del__`` backstop).  Building
    a plan and inspecting :attr:`pending_tasks` is therefore free: it never
    touches the process-global trace or its serialisation lock.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: MeLoPPRConfig,
        query: PPRQuery,
        track_memory: Optional[bool] = None,
    ) -> None:
        self._graph = graph
        self._config = config
        self._query = query
        if config.total_length != query.length:
            # The stage split must realise exactly the requested diffusion
            # length; re-split while preserving the number of stages.
            plan_lengths = _resplit(query.length, config.stage_lengths)
        else:
            plan_lengths = config.stage_lengths
        self._stage_plan = _make_stage_plan(plan_lengths, query.alpha)

        self.timing = TimingBreakdown()
        self._track_memory = (
            config.track_memory if track_memory is None else bool(track_memory)
        )
        self._tracker = MemoryTracker(enabled=self._track_memory)
        self._tracker_open = False
        self._tracker_owner = 0

        self._table = GlobalScoreTable(capacity=config.score_table_capacity(query.k))
        self._records: List[StageTaskRecord] = []
        self._peak_subgraph_bytes = 0
        self._cache_hits = 0
        self._cache_misses = 0

        self._stage_index = 0
        self._stages_completed = 0
        self._resumed = False
        self._work: List[Tuple[int, float]] = [(query.seed, 1.0)]
        self._done = False

    # ------------------------------------------------------------------
    @classmethod
    def from_stage_one_table(
        cls,
        graph: CSRGraph,
        config: MeLoPPRConfig,
        query: PPRQuery,
        state: StageOneState,
        track_memory: Optional[bool] = None,
    ) -> "MeLoPPRPlan":
        """Build a plan resuming *after* stage one from a cached state.

        The returned plan's :attr:`pending_tasks` are the stage-two tasks the
        original plan would have published (or the plan is already
        :attr:`done` for single-stage decompositions), and driving it to
        completion produces scores bit-identical to executing the query from
        scratch — stage one's fold, correction and selection are replayed
        from ``state`` instead of recomputed.

        Raises ``ValueError`` when ``state`` does not describe this exact
        ``(query, config, graph-independent plan shape)``: the realised stage
        split, alpha and score-table capacity must all match, because a
        table folded under different parameters is a different computation.
        Callers caching states key them accordingly (see
        :func:`repro.serving.result_cache.stage_one_cache_key`, which also
        keys on the graph's fingerprint — this constructor cannot tell two
        topologies apart and trusts the caller on that axis).
        """
        plan = cls(graph, config, query, track_memory=track_memory)
        realised = tuple(plan._stage_plan.stage_lengths)
        if state.stage_lengths != realised:
            raise ValueError(
                f"stage-one state was folded under stage split "
                f"{state.stage_lengths}, but this query realises {realised}"
            )
        if state.alpha != query.alpha:
            raise ValueError(
                f"stage-one state was folded with alpha={state.alpha}, "
                f"query has alpha={query.alpha}"
            )
        capacity = config.score_table_capacity(query.k)
        if state.table.capacity != capacity:
            raise ValueError(
                f"stage-one state's table capacity {state.table.capacity} "
                f"does not match this query's {capacity}"
            )
        plan._table = GlobalScoreTable.from_snapshot(state.table)
        plan._records = list(state.records)
        plan._cache_hits = state.cache_hits
        plan._cache_misses = state.cache_misses
        plan._peak_subgraph_bytes = state.peak_subgraph_bytes
        plan._stage_index = 1
        plan._stages_completed = 1
        plan._resumed = True
        plan._work = [(int(node), float(weight)) for node, weight in state.next_work]
        if state.done or not plan._work:
            plan._done = True
            plan._work = []
        return plan

    # ------------------------------------------------------------------
    @property
    def query(self) -> PPRQuery:
        """The query being planned."""
        return self._query

    @property
    def graph(self) -> CSRGraph:
        """The host graph tasks are extracted from."""
        return self._graph

    @property
    def config(self) -> MeLoPPRConfig:
        """The solver configuration the plan was built under."""
        return self._config

    @property
    def resumed(self) -> bool:
        """Whether this plan was restored from a cached stage-one state."""
        return self._resumed

    @property
    def stage_plan(self) -> StagePlan:
        """The realised stage decomposition."""
        return self._stage_plan

    @property
    def done(self) -> bool:
        """Whether every stage has completed."""
        return self._done

    @property
    def pending_tasks(self) -> Tuple[StageTask, ...]:
        """The tasks of the current stage (empty once :attr:`done`)."""
        if self._done:
            return ()
        length = self._stage_plan.stage_lengths[self._stage_index]
        return tuple(
            StageTask(
                stage_index=self._stage_index,
                center=center,
                length=length,
                weight=weight,
                alpha=self._query.alpha,
            )
            for center, weight in self._work
        )

    # ------------------------------------------------------------------
    def complete_stage(self, outcomes: Iterable[StageTaskOutcome]) -> None:
        """Fold a finished stage's outcomes and plan the next stage.

        ``outcomes`` must correspond one-to-one, in order, to the
        :attr:`pending_tasks` published for the current stage.  It may be a
        lazy iterable: each outcome is folded as soon as it is produced and
        then dropped, which is what keeps the serial executor's working set
        bounded by a single sub-graph (the paper's memory claim).
        """
        if self._done:
            raise RuntimeError("plan is already complete")
        # Start the memory trace on first execution (not on inspection of
        # pending_tasks): with a lazy ``outcomes`` iterable the extraction
        # and diffusion allocations happen inside the fold loop below, so
        # they are covered.  MemoryTracker serialises enabled sections on a
        # process-global lock, so the trace must only span actual execution,
        # and a plan must be executed and closed on one thread (execute_plan
        # guarantees this).
        if not self._tracker_open:
            self._tracker.__enter__()
            self._tracker_open = True
            self._tracker_owner = threading.get_ident()
        expected = len(self._work)
        config = self._config
        stage_length = self._stage_plan.stage_lengths[self._stage_index]
        is_last_stage = self._stage_index + 1 == self._stage_plan.num_stages
        # Residual mass handed to the next stage, keyed by global node.
        next_candidates: Dict[int, float] = {}

        folded = 0
        for outcome in outcomes:
            folded += 1
            task, subgraph, diffusion = outcome.task, outcome.subgraph, outcome.diffusion
            with self.timing.measure("aggregation"):
                self._table.add_many(
                    subgraph.global_ids, task.weight * diffusion.accumulated
                )
            if not is_last_stage:
                with self.timing.measure("selection"):
                    (locals_with_mass,) = np.nonzero(
                        diffusion.residual > config.residual_tolerance
                    )
                    carried_nodes = subgraph.global_ids[locals_with_mass]
                    carried_values = task.weight * diffusion.residual[locals_with_mass]
                    for node, value in zip(carried_nodes, carried_values):
                        node = int(node)
                        next_candidates[node] = (
                            next_candidates.get(node, 0.0) + float(value)
                        )

            self._records.append(
                StageTaskRecord(
                    stage_index=task.stage_index,
                    center_node=task.center,
                    weight=task.weight,
                    subgraph_nodes=subgraph.num_nodes,
                    subgraph_edges=subgraph.num_edges,
                    bfs_edges_scanned=outcome.bfs.edges_scanned,
                    propagations=diffusion.propagations,
                )
            )
            if outcome.cache_hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1
            self._peak_subgraph_bytes = max(
                self._peak_subgraph_bytes,
                subgraph.graph.nbytes()
                + diffusion.accumulated.nbytes
                + diffusion.residual.nbytes,
            )

        if folded != expected:
            raise ValueError(
                f"stage {self._stage_index} expected {expected} outcomes, "
                f"got {folded}"
            )
        self._stages_completed += 1

        if is_last_stage:
            self._finish_planning()
            return

        # Select the next-stage nodes from the merged candidate set.
        with self.timing.measure("selection"):
            candidate_nodes = np.fromiter(
                next_candidates.keys(), dtype=np.int64, count=len(next_candidates)
            )
            candidate_values = np.fromiter(
                next_candidates.values(),
                dtype=np.float64,
                count=len(next_candidates),
            )
            selected = config.selector.select(candidate_nodes, candidate_values)

        # Build next work list; apply the Eq. 6 correction only for the
        # nodes whose residual is re-diffused (unselected nodes keep
        # their residual contribution, preserving probability mass).
        stage_alpha = self._query.alpha**stage_length
        next_work: List[Tuple[int, float]] = []
        with self.timing.measure("aggregation"):
            for node in selected:
                residual_mass = next_candidates[int(node)]
                correction = stage_alpha * residual_mass
                self._table.add(int(node), -correction)
                next_work.append((int(node), correction))
        self._work = next_work
        self._stage_index += 1
        if not self._work:
            self._finish_planning()

    def stage_one_state(self) -> StageOneState:
        """Snapshot the plan's state right after its first stage completed.

        Valid exactly when one stage has been folded and the plan started
        from scratch (a resumed plan refuses — its snapshot would be a copy
        of the state it was built from).  The engine's result cache calls
        this immediately after the first :meth:`complete_stage` returns,
        before any stage-two outcome mutates the table.
        """
        if self._resumed:
            raise RuntimeError(
                "plan was resumed from a cached stage-one state; snapshot "
                "the original execution instead"
            )
        if self._stages_completed != 1:
            raise RuntimeError(
                f"stage-one state is only defined right after the first "
                f"stage completes ({self._stages_completed} stages done)"
            )
        return StageOneState(
            stage_lengths=tuple(self._stage_plan.stage_lengths),
            alpha=float(self._query.alpha),
            table=self._table.snapshot(),
            next_work=tuple(
                (int(node), float(weight)) for node, weight in self._work
            ),
            records=tuple(self._records),
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            peak_subgraph_bytes=self._peak_subgraph_bytes,
            done=self._done,
        )

    def _finish_planning(self) -> None:
        """Mark the plan complete and stop the memory tracker."""
        self._done = True
        self._work = []
        self.close()

    def close(self) -> None:
        """Release the memory tracker (idempotent; called on abandon too).

        Must run on the thread that executed :meth:`complete_stage` — the
        tracker's serialisation lock is re-entrant and thread-owned.  A
        cross-thread close is a no-op rather than a corruption.
        """
        if self._tracker_open:
            if threading.get_ident() != self._tracker_owner:
                return
            self._tracker.__exit__(None, None, None)
            self._tracker_open = False

    def __del__(self) -> None:  # backstop for abandoned plans
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def finish(self) -> PPRResult:
        """Assemble the final :class:`~repro.ppr.base.PPRResult`."""
        if not self._done:
            raise RuntimeError("plan still has pending stages")
        table = self._table
        scores = table.to_sparse_vector()
        scores.prune(0.0)

        modelled_bytes = self._peak_subgraph_bytes + table.nbytes()
        peak = self._tracker.peak_bytes if self._track_memory else modelled_bytes
        records = self._records
        num_next_stage = sum(1 for record in records if record.stage_index > 0)
        return PPRResult(
            query=self._query,
            scores=scores,
            timing=self.timing,
            peak_memory_bytes=peak,
            metadata={
                "stage_lengths": tuple(self._stage_plan.stage_lengths),
                "tasks": records,
                "num_tasks": len(records),
                "num_next_stage_tasks": num_next_stage,
                "max_subgraph_nodes": max(record.subgraph_nodes for record in records),
                "max_subgraph_edges": max(record.subgraph_edges for record in records),
                "modelled_bytes": modelled_bytes,
                "score_table_entries": table.num_entries,
                "score_table_evictions": table.total_evictions,
                "selector": repr(self._config.selector),
                "cache_hits": self._cache_hits,
                "cache_misses": self._cache_misses,
            },
        )


# ----------------------------------------------------------------------
def execute_stage_task(
    graph: CSRGraph,
    task: StageTask,
    extract: Optional[ExtractFn] = None,
    timing: Optional[TimingBreakdown] = None,
    kernel: Union[str, DiffusionKernel, None] = None,
) -> StageTaskOutcome:
    """Run one stage task: extract (or fetch) the sub-graph and diffuse.

    Parameters
    ----------
    graph:
        Host graph.
    task:
        The task description.
    extract:
        Extraction hook; defaults to a fresh BFS extraction.  The serving
        engine passes its cache's hook here.
    timing:
        Breakdown receiving the ``bfs`` and ``diffusion`` wall-clock buckets
        (typically the owning plan's :attr:`MeLoPPRPlan.timing`).
    kernel:
        Diffusion kernel selection (see :mod:`repro.diffusion.kernels`);
        scores are bit-identical for every kernel.  The diffusion reuses the
        operator memoised on the extracted sub-graph, so a cached extraction
        never rebuilds operator structure per task.
    """
    if extract is None:
        extract = default_extract
    if timing is None:
        timing = TimingBreakdown()
    with timing.measure("bfs"):
        subgraph, bfs, cache_hit = extract(graph, task.center, task.length)
    with timing.measure("diffusion"):
        initial = seed_vector(subgraph.num_nodes, subgraph.to_local(task.center))
        diffusion = graph_diffusion(
            subgraph.graph, initial, task.length, task.alpha, kernel=kernel
        )
    return StageTaskOutcome(
        task=task,
        subgraph=subgraph,
        bfs=bfs,
        diffusion=diffusion,
        cache_hit=cache_hit,
    )


def execute_plan(
    plan: MeLoPPRPlan,
    extract: Optional[ExtractFn] = None,
    after_stage: Optional[Callable[[MeLoPPRPlan], None]] = None,
    kernel: Union[str, DiffusionKernel, None] = None,
    span: Optional[Callable[..., ContextManager]] = None,
) -> PPRResult:
    """Drive a plan to completion with the serial reference executor.

    ``after_stage`` (optional) is invoked with the plan after each completed
    stage — the serving engine's in-process path reuses this exact loop and
    hooks its cross-query result cache there (snapshotting
    :meth:`MeLoPPRPlan.stage_one_state` after the first stage), so there is
    one serial drive loop in the library, not two hand-synchronised copies.
    ``kernel`` selects the (bit-exact) diffusion kernel for every task.
    ``span`` (optional) is a tracing hook — a callable returning a context
    manager, opened around each stage as ``span("engine.stage", stage=...,
    num_tasks=...)`` (see :mod:`repro.serving.tracing`); the untraced path
    pays a single ``is None`` check per stage.
    """
    try:
        while not plan.done:
            tasks = plan.pending_tasks
            outcomes = (
                execute_stage_task(
                    plan.graph,
                    task,
                    extract=extract,
                    timing=plan.timing,
                    kernel=kernel,
                )
                for task in tasks
            )
            if span is None:
                plan.complete_stage(outcomes)
            else:
                with span(
                    "engine.stage",
                    stage=tasks[0].stage_index,
                    num_tasks=len(tasks),
                ):
                    plan.complete_stage(outcomes)
            if after_stage is not None:
                after_stage(plan)
    finally:
        plan.close()
    return plan.finish()
