"""MeLoPPR core: stage/linear decomposition, selection, aggregation, solver."""

from repro.meloppr.aggregation import GlobalScoreTable
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.fixed_point import (
    FixedPointDiffusionResult,
    FixedPointFormat,
    fixed_point_diffusion,
    quantize_alpha,
)
from repro.meloppr.linear import (
    ResidualComponent,
    linear_decomposed_diffusion,
    split_residual,
)
from repro.meloppr.selection import (
    AllSelector,
    CountSelector,
    NextStageSelector,
    RatioSelector,
    ThresholdSelector,
)
from repro.meloppr.planner import (
    MeLoPPRPlan,
    StageTask,
    StageTaskOutcome,
    execute_plan,
    execute_stage_task,
)
from repro.meloppr.solver import MeLoPPRSolver, StageTaskRecord
from repro.meloppr.stage import (
    StagePlan,
    multi_stage_diffusion,
    split_length,
    stage_weights,
    two_stage_diffusion,
)

__all__ = [
    "GlobalScoreTable",
    "MeLoPPRConfig",
    "FixedPointDiffusionResult",
    "FixedPointFormat",
    "fixed_point_diffusion",
    "quantize_alpha",
    "ResidualComponent",
    "linear_decomposed_diffusion",
    "split_residual",
    "AllSelector",
    "CountSelector",
    "NextStageSelector",
    "RatioSelector",
    "ThresholdSelector",
    "MeLoPPRPlan",
    "StageTask",
    "StageTaskOutcome",
    "execute_plan",
    "execute_stage_task",
    "MeLoPPRSolver",
    "StageTaskRecord",
    "StagePlan",
    "multi_stage_diffusion",
    "split_length",
    "stage_weights",
    "two_stage_diffusion",
]
