"""Stage decomposition (Sec. IV-B, Eq. 3–6).

The paper rewrites a length-``L`` graph diffusion as two consecutive shorter
diffusions.  With ``L = l1 + l2``:

.. math::

    GD^{(L)}(S_0) = GD^{(l_1)}(S_0)
                    + \\alpha^{l_1} \\, GD^{(l_2)}(W^{l_1} S_0)
                    - \\alpha^{l_1} \\, W^{l_1} S_0

``W^{l_1} S_0`` is exactly the *residual* vector returned by the stage-one
diffusion, so the identity chains naturally: run stage one, keep its
accumulated scores, subtract ``alpha^l1`` times its residual, and add
``alpha^l1`` times the accumulated scores of a stage-two diffusion seeded with
that residual.

This module provides the identity both as a *verification* helper operating
on one graph (used by tests and the ablation study) and as the bookkeeping
:class:`StagePlan` the multi-stage solver uses to weight each stage's
contribution.  For more than two stages the recurrence is applied repeatedly:
stage ``i`` contributes with weight ``alpha ** (l_1 + ... + l_{i-1})``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.diffusion.diffusion import DiffusionResult, graph_diffusion
from repro.diffusion.transition import TransitionOperator
from repro.graph.csr import CSRGraph

__all__ = [
    "StagePlan",
    "stage_weights",
    "two_stage_diffusion",
    "multi_stage_diffusion",
    "split_length",
]


def split_length(total_length: int, num_stages: int) -> Tuple[int, ...]:
    """Split ``total_length`` into ``num_stages`` near-equal stage lengths.

    The paper uses the balanced split ``l1 = l2 = L / 2``; this helper
    generalises it (earlier stages receive the remainder).

    >>> split_length(6, 2)
    (3, 3)
    >>> split_length(7, 2)
    (4, 3)
    >>> split_length(6, 3)
    (2, 2, 2)
    """
    if total_length <= 0:
        raise ValueError(f"total_length must be > 0, got {total_length}")
    if num_stages <= 0:
        raise ValueError(f"num_stages must be > 0, got {num_stages}")
    if num_stages > total_length:
        raise ValueError(
            f"cannot split a length-{total_length} diffusion into {num_stages} stages"
        )
    base = total_length // num_stages
    remainder = total_length % num_stages
    return tuple(base + (1 if i < remainder else 0) for i in range(num_stages))


def stage_weights(stage_lengths: Sequence[int], alpha: float) -> List[float]:
    """Weight ``alpha ** (sum of previous stage lengths)`` for each stage.

    Stage one always has weight 1; stage two ``alpha^l1``; stage three
    ``alpha^(l1+l2)`` and so on.  These are the coefficients in front of each
    ``GD`` term when Eq. 6 is applied recursively.
    """
    if not stage_lengths:
        raise ValueError("stage_lengths must be non-empty")
    weights: List[float] = []
    consumed = 0
    for length in stage_lengths:
        if length <= 0:
            raise ValueError(f"stage lengths must be > 0, got {stage_lengths}")
        weights.append(alpha**consumed)
        consumed += int(length)
    return weights


@dataclass(frozen=True)
class StagePlan:
    """The per-stage bookkeeping of a multi-stage MeLoPPR run.

    Attributes
    ----------
    stage_lengths:
        The decomposition ``(l1, l2, ...)``.
    alpha:
        Decay factor.
    weights:
        ``weights[i]`` multiplies stage ``i``'s accumulated scores (and the
        residual correction it hands to stage ``i + 1``).
    """

    stage_lengths: Tuple[int, ...]
    alpha: float
    weights: Tuple[float, ...]

    @classmethod
    def create(cls, stage_lengths: Sequence[int], alpha: float) -> "StagePlan":
        """Build a plan from stage lengths and the decay factor."""
        lengths = tuple(int(length) for length in stage_lengths)
        return cls(
            stage_lengths=lengths,
            alpha=float(alpha),
            weights=tuple(stage_weights(lengths, alpha)),
        )

    @property
    def total_length(self) -> int:
        """The reconstructed full diffusion length ``L``."""
        return int(sum(self.stage_lengths))

    @property
    def num_stages(self) -> int:
        """Number of stages."""
        return len(self.stage_lengths)

    def residual_correction(self, stage_index: int) -> float:
        """Coefficient of the ``- alpha^{l_1+..+l_i} W^{l_1+..+l_i} S_0`` term.

        When stage ``stage_index`` hands its residual to the next stage, the
        accumulated total must subtract the residual weighted by
        ``weights[stage_index] * alpha ** stage_lengths[stage_index]`` —
        the ``- alpha^{l1} W^{l1} S0`` term of Eq. 6 generalised to later
        stages.
        """
        if not 0 <= stage_index < self.num_stages:
            raise IndexError(f"stage_index {stage_index} out of range")
        return self.weights[stage_index] * (self.alpha ** self.stage_lengths[stage_index])


def two_stage_diffusion(
    graph_or_operator: Union[CSRGraph, TransitionOperator],
    initial: np.ndarray,
    l1: int,
    l2: int,
    alpha: float,
) -> np.ndarray:
    """Evaluate the right-hand side of Eq. 6 on a single graph.

    This is the *verification* form of stage decomposition: both stages run
    on the same graph, so the result must equal ``GD(l1 + l2)(S0)`` exactly
    (up to floating-point rounding).  The solver uses the sub-graph form
    instead; tests compare the two.
    """
    operator = (
        graph_or_operator
        if isinstance(graph_or_operator, TransitionOperator)
        else TransitionOperator(graph_or_operator)
    )
    stage_one = graph_diffusion(operator, initial, l1, alpha)
    stage_two = graph_diffusion(operator, stage_one.residual, l2, alpha)
    weight = alpha**l1
    return stage_one.accumulated + weight * stage_two.accumulated - weight * stage_one.residual


def multi_stage_diffusion(
    graph_or_operator: Union[CSRGraph, TransitionOperator],
    initial: np.ndarray,
    stage_lengths: Sequence[int],
    alpha: float,
) -> np.ndarray:
    """Evaluate the stage decomposition for an arbitrary number of stages.

    Repeatedly applies Eq. 6: the residual of each stage seeds the next, each
    stage's accumulated scores enter with weight ``alpha ** (previous
    lengths)``, and each hand-off subtracts the correspondingly weighted
    residual.  On a single graph the result equals ``GD(sum(lengths))(S0)``.
    """
    operator = (
        graph_or_operator
        if isinstance(graph_or_operator, TransitionOperator)
        else TransitionOperator(graph_or_operator)
    )
    plan = StagePlan.create(stage_lengths, alpha)
    total = np.zeros_like(np.asarray(initial, dtype=np.float64))
    current_seed = np.asarray(initial, dtype=np.float64)
    for index, length in enumerate(plan.stage_lengths):
        result = graph_diffusion(operator, current_seed, length, alpha)
        total += plan.weights[index] * result.accumulated
        if index + 1 < plan.num_stages:
            total -= plan.residual_correction(index) * result.residual
            current_seed = result.residual
    return total
