"""Global score aggregation with a bounded top-``c*k`` table (Sec. V-B).

After every sub-graph diffusion, the accumulated scores must be folded into
the global PPR vector ``S_L`` (the summation of Eq. 8).  Keeping the whole
vector costs ``O(G_L(s))`` memory and, in the co-designed system, a
CPU↔FPGA transfer per diffusion.  Since only the top-``k`` ranking matters,
the paper keeps a fixed-size table of the ``c * k`` best scores in FPGA BRAM
("localized score aggregation").  The experiments show ``c >= 8`` loses less
than 0.2 % precision while ``c < 4`` loses more than 3 %; the paper settles on
``c = 10``.

:class:`GlobalScoreTable` implements that bounded table; an unbounded mode
(``capacity=None``) is provided for the pure-software solver and for
measuring the precision loss attributable to the bound (the E7 study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.diffusion.sparse_vector import SparseScoreVector

__all__ = ["GlobalScoreTable", "ScoreTableSnapshot"]


@dataclass(frozen=True)
class ScoreTableSnapshot:
    """Immutable copy of a :class:`GlobalScoreTable`'s full state.

    Captures everything :meth:`GlobalScoreTable.from_snapshot` needs to
    rebuild a table that behaves **bit-identically** to the original from
    that point on: the stored and evicted entries *in insertion order* (the
    eviction scan is order-independent, but preserving order keeps the
    restored table indistinguishable), the capacity/eviction mode, and the
    bookkeeping counters.  The serving layer caches these snapshots to resume
    multi-stage plans past their first stage (cross-query score-table reuse).
    """

    capacity: Optional[int]
    evictions_are_final: bool
    scores: Tuple[Tuple[int, float], ...]
    evicted: Tuple[Tuple[int, float], ...]
    total_updates: int
    total_evictions: int

    @property
    def num_entries(self) -> int:
        """Stored entries at snapshot time."""
        return len(self.scores)


class GlobalScoreTable:
    """Accumulates node scores, optionally bounded to the top ``capacity`` nodes.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept (``c * k`` in the paper).  ``None``
        keeps every touched node.
    evictions_are_final:
        The hardware table cannot resurrect an evicted node: if a node is
        evicted and later receives more score, the earlier contribution is
        lost.  This models the BRAM table faithfully and is the source of the
        small precision loss measured in Sec. V-B.  Setting this to false
        gives an idealised table that remembers evicted totals (used to
        isolate the effect in the E7 study).
    """

    def __init__(
        self, capacity: Optional[int] = None, evictions_are_final: bool = True
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be > 0 or None, got {capacity}")
        self._capacity = capacity
        self._evictions_are_final = bool(evictions_are_final)
        self._scores: Dict[int, float] = {}
        self._evicted: Dict[int, float] = {}
        self._total_updates = 0
        self._total_evictions = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> Optional[int]:
        """Maximum number of entries kept (``None`` = unbounded)."""
        return self._capacity

    @property
    def num_entries(self) -> int:
        """Current number of stored entries."""
        return len(self._scores)

    @property
    def total_updates(self) -> int:
        """Number of score contributions accepted so far."""
        return self._total_updates

    @property
    def total_evictions(self) -> int:
        """Number of entries evicted due to the capacity bound."""
        return self._total_evictions

    # ------------------------------------------------------------------
    def add(self, node: int, score: float) -> None:
        """Accumulate ``score`` onto ``node``, evicting the minimum if full."""
        self._total_updates += 1
        node = int(node)
        if node in self._scores:
            self._scores[node] += score
            return
        previous = 0.0
        if not self._evictions_are_final:
            previous = self._evicted.pop(node, 0.0)
        self._scores[node] = previous + score
        if self._capacity is not None and len(self._scores) > self._capacity:
            self._evict_minimum()

    def add_many(self, nodes: Iterable[int], scores: Iterable[float]) -> None:
        """Accumulate many ``(node, score)`` contributions."""
        for node, score in zip(nodes, scores):
            self.add(int(node), float(score))

    def add_sparse(self, vector: SparseScoreVector, scale: float = 1.0) -> None:
        """Accumulate ``scale *`` every entry of a sparse vector."""
        for node, value in vector.items():
            self.add(node, scale * value)

    def _evict_minimum(self) -> None:
        """Drop the entry with the smallest score (ties: largest node id)."""
        victim = min(self._scores.items(), key=lambda item: (item[1], -item[0]))[0]
        value = self._scores.pop(victim)
        self._total_evictions += 1
        if not self._evictions_are_final:
            self._evicted[victim] = self._evicted.get(victim, 0.0) + value

    # ------------------------------------------------------------------
    def snapshot(self) -> ScoreTableSnapshot:
        """Freeze the table's full state into a :class:`ScoreTableSnapshot`."""
        return ScoreTableSnapshot(
            capacity=self._capacity,
            evictions_are_final=self._evictions_are_final,
            scores=tuple(self._scores.items()),
            evicted=tuple(self._evicted.items()),
            total_updates=self._total_updates,
            total_evictions=self._total_evictions,
        )

    @classmethod
    def from_snapshot(cls, snapshot: ScoreTableSnapshot) -> "GlobalScoreTable":
        """Rebuild a table whose future behaviour is bit-identical.

        The restored table holds the same entries in the same insertion
        order, the same evicted-mass ledger and the same counters, so any
        sequence of :meth:`add` calls produces exactly the folds, evictions
        and final ranking the original table would have produced.
        """
        table = cls(
            capacity=snapshot.capacity,
            evictions_are_final=snapshot.evictions_are_final,
        )
        table._scores = dict(snapshot.scores)
        table._evicted = dict(snapshot.evicted)
        table._total_updates = snapshot.total_updates
        table._total_evictions = snapshot.total_evictions
        return table

    # ------------------------------------------------------------------
    def get(self, node: int, default: float = 0.0) -> float:
        """Current score of ``node`` (``default`` if not stored)."""
        return self._scores.get(int(node), default)

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """Top-``k`` (node, score) pairs, descending score, ties by node id."""
        if k <= 0:
            return []
        ordered = sorted(self._scores.items(), key=lambda item: (-item[1], item[0]))
        return ordered[:k]

    def top_k_nodes(self, k: int) -> List[int]:
        """Node ids of :meth:`top_k`."""
        return [node for node, _ in self.top_k(k)]

    def to_sparse_vector(self) -> SparseScoreVector:
        """Export the table as a :class:`SparseScoreVector`."""
        return SparseScoreVector(dict(self._scores))

    def nbytes(self) -> int:
        """Modelled storage: 4-byte node id + 4-byte score per entry.

        This matches the paper's 32-bit integer score representation on the
        FPGA (Sec. V-A).
        """
        return 8 * len(self._scores)

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, node: int) -> bool:
        return int(node) in self._scores

    def __repr__(self) -> str:
        bound = "unbounded" if self._capacity is None else f"capacity={self._capacity}"
        return f"GlobalScoreTable({bound}, num_entries={len(self._scores)})"
