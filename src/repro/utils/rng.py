"""Deterministic random-number handling.

Every stochastic component of the library (graph generators, seed sampling,
Monte Carlo walks) accepts either an integer seed, an existing
``numpy.random.Generator`` or ``None``.  :func:`ensure_rng` normalises the
three forms so call sites never touch global NumPy state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]

#: Seed used when the caller passes ``None``.  Fixed so that "no seed" still
#: produces reproducible experiments, which the benchmark harness relies on.
DEFAULT_SEED = 20210421


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed form.

    Parameters
    ----------
    rng:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise TypeError(
        "rng must be None, an int seed or a numpy.random.Generator, "
        f"got {type(rng).__name__}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Split one generator into ``count`` independent child generators.

    Used when an experiment fans out over seeds/graphs so that each unit of
    work is reproducible independently of execution order.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def sample_without_replacement(
    rng: RngLike, population: int, count: int
) -> np.ndarray:
    """Sample ``count`` distinct integers from ``range(population)``."""
    if count > population:
        raise ValueError(
            f"cannot sample {count} items from a population of {population}"
        )
    generator = ensure_rng(rng)
    return generator.choice(population, size=count, replace=False)
