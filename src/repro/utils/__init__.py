"""Shared utilities: validation helpers, RNG handling, timing."""

from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch, TimingBreakdown
from repro.utils.validation import (
    check_fraction,
    check_node_id,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "Stopwatch",
    "TimingBreakdown",
    "check_fraction",
    "check_node_id",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
