"""Wall-clock timing helpers used by the CPU-side measurements.

The FPGA side of the reproduction uses a cycle-accurate analytical model
(:mod:`repro.hardware`), but the CPU side (BFS extraction, NetworkX baseline,
MeLoPPR-CPU) is measured with real wall-clock time, exactly as the paper does
on the laptop platform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


class Stopwatch:
    """A simple re-startable stopwatch based on ``time.perf_counter``.

    Example
    -------
    >>> watch = Stopwatch()
    >>> watch.start()
    >>> _ = sum(range(1000))
    >>> elapsed = watch.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch, keeping accumulated time."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the total accumulated seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Reset accumulated time to zero."""
        self._start = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Accumulated seconds, including the running interval if active."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running


@dataclass
class TimingBreakdown:
    """Named timing buckets, e.g. ``bfs``, ``diffusion``, ``aggregation``.

    The experiment harness uses one breakdown per query so that the BFS
    fraction reported in Fig. 7 can be computed.
    """

    seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, value: float) -> None:
        """Accumulate ``value`` seconds into bucket ``name``."""
        if value < 0:
            raise ValueError(f"negative duration for {name!r}: {value}")
        self.seconds[name] = self.seconds.get(name, 0.0) + value

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager that times its body into bucket ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    @property
    def total(self) -> float:
        """Sum of all buckets."""
        return sum(self.seconds.values())

    def fraction(self, name: str) -> float:
        """Fraction of the total spent in bucket ``name`` (0 if empty)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.seconds.get(name, 0.0) / total

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        """Return a new breakdown with bucket-wise sums of ``self`` and ``other``."""
        merged = TimingBreakdown(dict(self.seconds))
        for name, value in other.seconds.items():
            merged.add(name, value)
        return merged
