"""Small argument-validation helpers shared across the library.

These helpers raise ``ValueError``/``TypeError`` with consistent messages so
that every public entry point reports bad arguments the same way.  They are
deliberately tiny: validation failures should read like plain English.
"""

from __future__ import annotations

import numbers
from typing import Any


def check_positive(value: Any, name: str) -> float:
    """Return ``value`` if it is a strictly positive real number.

    Parameters
    ----------
    value:
        The value to check.
    name:
        The argument name used in the error message.

    Raises
    ------
    TypeError
        If ``value`` is not a real number.
    ValueError
        If ``value`` is not strictly positive.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(value: Any, name: str) -> float:
    """Return ``value`` if it is a non-negative real number."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(value: Any, name: str) -> float:
    """Return ``value`` if it lies in the closed interval ``[0, 1]``."""
    value = check_non_negative(value, name)
    if value > 1:
        raise ValueError(f"{name} must be <= 1, got {value!r}")
    return value


def check_fraction(value: Any, name: str) -> float:
    """Return ``value`` if it lies in the half-open interval ``(0, 1]``."""
    value = check_probability(value, name)
    if value == 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_node_id(node: Any, num_nodes: int, name: str = "node") -> int:
    """Return ``node`` as an ``int`` if it is a valid node index.

    Node indices are contiguous integers in ``[0, num_nodes)``.
    """
    if isinstance(node, bool) or not isinstance(node, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(node).__name__}")
    node = int(node)
    if node < 0 or node >= num_nodes:
        raise ValueError(
            f"{name} {node} is out of range for a graph with {num_nodes} nodes"
        )
    return node


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` if it is a strictly positive integer."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Return ``value`` if it is a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return int(value)
