"""A minimal sparse score vector keyed by node id.

The global PPR vector ``S_L`` is extremely sparse for local queries (Fig. 6
bottom: >90 % of entries are near zero), so the library carries score vectors
as ``{node: score}``-style containers backed by NumPy arrays instead of dense
vectors over the whole host graph.  This is also the structure the FPGA
implementation stores in its score tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

__all__ = ["SparseScoreVector"]


class SparseScoreVector:
    """A sparse mapping from node id to floating-point score.

    The container supports the small set of operations the solvers need:
    accumulation (``add``), scaling, top-k selection and conversion to/from
    dense vectors.  Zero entries created by cancellation are kept until
    :meth:`prune` is called.
    """

    __slots__ = ("_scores",)

    def __init__(self, scores: Dict[int, float] | None = None) -> None:
        self._scores: Dict[int, float] = dict(scores) if scores else {}

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, nodes: np.ndarray, values: np.ndarray) -> "SparseScoreVector":
        """Build from parallel ``nodes`` / ``values`` arrays."""
        nodes = np.asarray(nodes)
        values = np.asarray(values, dtype=np.float64)
        if nodes.shape != values.shape:
            raise ValueError("nodes and values must have the same shape")
        vector = cls()
        for node, value in zip(nodes, values):
            vector.add(int(node), float(value))
        return vector

    @classmethod
    def from_dense(cls, dense: np.ndarray, tolerance: float = 0.0) -> "SparseScoreVector":
        """Build from a dense vector, keeping entries with ``|value| > tolerance``."""
        dense = np.asarray(dense, dtype=np.float64)
        (nonzero,) = np.nonzero(np.abs(dense) > tolerance)
        return cls({int(node): float(dense[node]) for node in nonzero})

    def copy(self) -> "SparseScoreVector":
        """Return a shallow copy."""
        return SparseScoreVector(self._scores)

    # ------------------------------------------------------------------
    def add(self, node: int, value: float) -> None:
        """Accumulate ``value`` onto ``node``."""
        self._scores[node] = self._scores.get(node, 0.0) + value

    def add_vector(self, other: "SparseScoreVector", scale: float = 1.0) -> None:
        """Accumulate ``scale * other`` into this vector in place."""
        for node, value in other.items():
            self.add(node, scale * value)

    def scale(self, factor: float) -> None:
        """Multiply every entry by ``factor`` in place."""
        for node in self._scores:
            self._scores[node] *= factor

    def prune(self, tolerance: float = 0.0) -> None:
        """Drop entries with ``|value| <= tolerance``."""
        self._scores = {
            node: value for node, value in self._scores.items() if abs(value) > tolerance
        }

    # ------------------------------------------------------------------
    def get(self, node: int, default: float = 0.0) -> float:
        """Score of ``node`` (``default`` when absent)."""
        return self._scores.get(node, default)

    def items(self) -> Iterable[Tuple[int, float]]:
        """Iterate over ``(node, score)`` pairs."""
        return self._scores.items()

    def nodes(self) -> np.ndarray:
        """Array of nodes with stored entries."""
        return np.fromiter(self._scores.keys(), dtype=np.int64, count=len(self._scores))

    def values(self) -> np.ndarray:
        """Array of stored scores, aligned with :meth:`nodes`."""
        return np.fromiter(self._scores.values(), dtype=np.float64, count=len(self._scores))

    def sum(self) -> float:
        """Sum of all stored scores."""
        return float(sum(self._scores.values()))

    def top_k(self, k: int) -> list[Tuple[int, float]]:
        """Return the ``k`` highest-scoring ``(node, score)`` pairs.

        Ties are broken by ascending node id so results are deterministic.
        """
        if k <= 0:
            return []
        ordered = sorted(self._scores.items(), key=lambda item: (-item[1], item[0]))
        return ordered[:k]

    def top_k_nodes(self, k: int) -> list[int]:
        """Return only the node ids of :meth:`top_k`."""
        return [node for node, _ in self.top_k(k)]

    def to_dense(self, num_nodes: int) -> np.ndarray:
        """Return a dense vector of length ``num_nodes``."""
        dense = np.zeros(num_nodes, dtype=np.float64)
        for node, value in self._scores.items():
            if node >= num_nodes or node < 0:
                raise ValueError(
                    f"node {node} does not fit in a dense vector of length {num_nodes}"
                )
            dense[node] = value
        return dense

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes (8-byte key + 8-byte value)."""
        return 16 * len(self._scores)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, node: int) -> bool:
        return node in self._scores

    def __iter__(self) -> Iterator[int]:
        return iter(self._scores)

    def __repr__(self) -> str:
        return f"SparseScoreVector(num_entries={len(self._scores)}, sum={self.sum():.6f})"
