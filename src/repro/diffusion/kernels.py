"""Pluggable diffusion kernels: the propagation step at native speed.

The inner loop of every experiment in this repository is one propagation of
the random-walk operator ``W = A D^-1`` over a CSR graph (Eq. 1 / Fig. 3(b)
of the paper).  This module factors that step out of
:class:`~repro.diffusion.transition.TransitionOperator` into interchangeable
**kernels** behind a small registry, so the serving stack can pick the
fastest implementation available without ever changing a score:

``reference``
    The historical scatter: gather neighbour contributions and accumulate
    them with ``np.add.at`` over a (now precomputed) row-id array.  Slow but
    transparently equal to the textbook definition — the spec every other
    kernel is tested against.
``csr``
    One scipy CSR matrix–vector product per step over a precomputed matrix
    whose data is ``1/deg(v)`` at entry ``(u, v)``.  scipy's C loop
    accumulates each row sequentially in storage order — the same order as
    the reference scatter — so results are **bit-identical**, just ~2-3x
    faster.
``frontier``
    Direction-optimising: while the set of non-zero scores is sparse (the
    first iterations of a one-hot PPR seed — the regime the paper's FPGA
    diffuser exploits), gather only over the frontier's adjacency slices and
    scatter with ``np.bincount``; past a density threshold it switches to
    the dense ``csr`` product.  Bit-identical when neighbour lists are
    sorted ascending (every graph built by this library; verified once per
    structure, with a dense fallback otherwise).
``numba``
    Optional JIT-compiled per-row loop (``fastmath`` off, sequential row
    accumulation — bit-identical by construction).  Enabled only when the
    :data:`NUMBA_ENV_VAR` feature flag is set *and* numba imports; a missing
    numba silently degrades to the ``frontier`` kernel.
``auto``
    The fastest bit-exact kernel available: ``numba`` when the flag is on
    and the import works, else ``frontier``.

Bit-exactness is the load-bearing contract: caches, shards, process pools
and the differential test suites all assert scores equal to the serial
reference, so a kernel may only change *how* the sum is computed, never the
floating-point accumulation order within a row.  Integer propagation
(:meth:`DiffusionKernel.propagate_int`, the fixed-point FPGA datapath) is
order-independent, so those paths only need exact integer arithmetic.

Per-graph precomputation (row ids, the CSR matrices, the sorted-rows check)
lives in :class:`GraphStructure`, built once per topology and shared through
a fingerprint-keyed LRU (:func:`structure_for`), so repeated diffusions over
a cached sub-graph never rebuild operator structure.
"""

from __future__ import annotations

import abc
import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

import numpy as np
from scipy import sparse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = [
    "DENSE_FRONTIER_FRACTION",
    "KERNEL_ENV_VAR",
    "NUMBA_ENV_VAR",
    "DiffusionKernel",
    "GraphStructure",
    "ReferenceKernel",
    "CSRKernel",
    "FrontierKernel",
    "NumbaKernel",
    "available_kernels",
    "default_kernel_name",
    "make_kernel",
    "numba_available",
    "numba_enabled",
    "register_kernel",
    "resolve_kernel_name",
    "structure_for",
]

#: Environment variable selecting the library-wide default kernel.
KERNEL_ENV_VAR = "REPRO_DIFFUSION_KERNEL"

#: Feature flag: ``auto`` only considers the numba kernel when this is set
#: (JIT warm-up is a poor default for short-lived processes).
NUMBA_ENV_VAR = "REPRO_ENABLE_NUMBA"

#: Frontier density (non-zero fraction) above which the frontier kernel
#: switches to the dense CSR product.  Past this point the slice-gather
#: bookkeeping costs more than the zeros it skips.
DENSE_FRONTIER_FRACTION = 0.25

#: Truthy spellings accepted by the feature-flag environment variable.
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _slice_positions(starts: np.ndarray, counts: np.ndarray, total: int) -> np.ndarray:
    """Indices into ``indices`` covering the CSR slices ``[starts, starts+counts)``.

    The vectorised replacement for a per-node Python loop over
    ``indices[indptr[v]:indptr[v+1]]``: one ``arange`` shifted per slice.
    """
    offsets = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)


class GraphStructure:
    """Precomputed per-topology operator structure shared by every kernel.

    Holds the CSR arrays plus everything a kernel would otherwise rebuild on
    each propagation: degrees, inverse degrees, the reference scatter's
    row-id array, the scipy matrices of ``W`` (float) and ``A`` (int), and
    the sorted-rows flag the frontier kernel's exactness argument needs.
    All derived fields are lazy — a structure only pays for what its kernel
    touches.
    """

    __slots__ = (
        "indptr",
        "indices",
        "num_nodes",
        "degrees",
        "inverse_degrees",
        "_row_ids",
        "_matrix",
        "_int_matrix",
        "_rows_sorted",
    )

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices)
        self.num_nodes = int(self.indptr.size - 1)
        self.degrees = np.diff(self.indptr)
        float_degrees = self.degrees.astype(np.float64)
        with np.errstate(divide="ignore"):
            self.inverse_degrees = np.where(
                float_degrees > 0, 1.0 / float_degrees, 0.0
            )
        self._row_ids: Optional[np.ndarray] = None
        self._matrix: Optional[sparse.csr_matrix] = None
        self._int_matrix: Optional[sparse.csr_matrix] = None
        self._rows_sorted: Optional[bool] = None

    # ------------------------------------------------------------------
    @property
    def row_ids(self) -> np.ndarray:
        """Row id of every adjacency entry (the reference scatter's target)."""
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.num_nodes, dtype=np.intp), self.degrees
            )
        return self._row_ids

    def _index_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR index arrays for the scipy matrices (narrowest safe dtype)."""
        dtype = np.int32 if self.indices.size < np.iinfo(np.int32).max else np.int64
        return self.indices.astype(dtype), self.indptr.astype(dtype)

    @property
    def matrix(self) -> sparse.csr_matrix:
        """``W = A D^-1`` as scipy CSR (data ``1/deg(v)`` at entry ``(u, v)``)."""
        if self._matrix is None:
            indices, indptr = self._index_arrays()
            self._matrix = sparse.csr_matrix(
                (self.inverse_degrees[self.indices], indices, indptr),
                shape=(self.num_nodes, self.num_nodes),
            )
        return self._matrix

    @property
    def int_matrix(self) -> sparse.csr_matrix:
        """The unweighted adjacency as int64 CSR (exact integer matvec)."""
        if self._int_matrix is None:
            indices, indptr = self._index_arrays()
            self._int_matrix = sparse.csr_matrix(
                (np.ones(self.indices.size, dtype=np.int64), indices, indptr),
                shape=(self.num_nodes, self.num_nodes),
            )
        return self._int_matrix

    @property
    def rows_sorted(self) -> bool:
        """Whether every neighbour list is sorted ascending.

        The frontier kernel's sparse gather sums a row's non-zero
        contributions in ascending neighbour order; that matches the dense
        kernels' storage-order sums (bitwise — dropped terms are exact
        zeros) only when the stored rows are themselves ascending.
        """
        if self._rows_sorted is None:
            indices = self.indices
            if indices.size < 2:
                self._rows_sorted = True
            else:
                within_row = np.diff(indices) >= 0
                boundaries = self.indptr[1:-1]
                boundaries = boundaries[
                    (boundaries > 0) & (boundaries < indices.size)
                ]
                if boundaries.size:
                    within_row[boundaries - 1] = True
                self._rows_sorted = bool(within_row.all())
        return self._rows_sorted

    # ------------------------------------------------------------------
    def touched(self, scores: np.ndarray) -> int:
        """Adjacency entries one propagation of ``scores`` reads.

        A where-reduction over the degree array — no compacted fancy-index
        copy per step, which is what the old per-step
        ``degrees[scores != 0].sum()`` allocated.
        """
        return int(
            np.add.reduce(self.degrees, where=scores != 0.0, initial=0)
        )

    def __repr__(self) -> str:
        return (
            f"GraphStructure(num_nodes={self.num_nodes}, "
            f"num_entries={self.indices.size})"
        )


# ----------------------------------------------------------------------
# Structure cache (fingerprint-keyed LRU).
# ----------------------------------------------------------------------
_STRUCTURE_CACHE_SIZE = 64
_structure_lock = threading.Lock()
_structures: "OrderedDict[str, GraphStructure]" = OrderedDict()


def structure_for(graph: "CSRGraph") -> GraphStructure:
    """The shared :class:`GraphStructure` of ``graph``'s topology.

    Keyed by :meth:`~repro.graph.csr.CSRGraph.fingerprint`, so two extractions
    of the same ego sub-graph — or a sub-graph re-extracted after a cache
    eviction — share one structure (and its lazily built matrices) instead of
    rebuilding it.  Bounded LRU; thread-safe.
    """
    key = graph.fingerprint()
    with _structure_lock:
        structure = _structures.get(key)
        if structure is not None:
            _structures.move_to_end(key)
            return structure
    structure = GraphStructure(graph.indptr, graph.indices)
    with _structure_lock:
        existing = _structures.get(key)
        if existing is not None:
            _structures.move_to_end(key)
            return existing
        _structures[key] = structure
        while len(_structures) > _STRUCTURE_CACHE_SIZE:
            _structures.popitem(last=False)
    return structure


# ----------------------------------------------------------------------
# Kernels.
# ----------------------------------------------------------------------
class DiffusionKernel(abc.ABC):
    """One propagation step ``W @ scores`` over a :class:`GraphStructure`.

    Every implementation must be **bit-identical** to
    :class:`ReferenceKernel` on float scores (same accumulation order within
    each row, up to exact-zero terms) and exactly equal on integer
    propagation — the differential suite in
    ``tests/test_diffusion_kernels.py`` enforces this for every registered
    kernel.  Kernels are stateless (all per-graph state lives on the
    structure), so one instance serves every graph and thread.
    """

    #: Registry name; also what ``resolve_kernel_name`` reports.
    name: str = "kernel"

    @abc.abstractmethod
    def apply(self, structure: GraphStructure, scores: np.ndarray) -> np.ndarray:
        """Return ``W @ scores`` (float64, dense in and out)."""

    def apply_counted(
        self, structure: GraphStructure, scores: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """``(W @ scores, adjacency entries touched)`` in one call.

        The count equals ``sum(degree(v) for v with scores[v] != 0)`` — the
        paper's propagation work metric.  Kernels that already know the
        frontier override this to get the count for free.
        """
        return self.apply(structure, scores), structure.touched(scores)

    @abc.abstractmethod
    def propagate_int(
        self, structure: GraphStructure, values: np.ndarray
    ) -> np.ndarray:
        """Scatter integer per-source contributions: ``A @ values`` (int64).

        The fixed-point datapath computes ``values[v] = score[v] // deg(v)``
        itself; this is only the exact integer row-sum, where summation
        order cannot matter.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ReferenceKernel(DiffusionKernel):
    """The textbook gather + ``np.add.at`` scatter (the exactness spec)."""

    name = "reference"

    def apply(self, structure: GraphStructure, scores: np.ndarray) -> np.ndarray:
        contribution = scores * structure.inverse_degrees
        result = np.zeros(structure.num_nodes, dtype=np.float64)
        np.add.at(result, structure.row_ids, contribution[structure.indices])
        return result

    def propagate_int(
        self, structure: GraphStructure, values: np.ndarray
    ) -> np.ndarray:
        result = np.zeros(structure.num_nodes, dtype=np.int64)
        np.add.at(result, structure.row_ids, values[structure.indices])
        return result


class CSRKernel(DiffusionKernel):
    """One scipy CSR matvec per step (sequential row accumulation in C)."""

    name = "csr"

    def apply(self, structure: GraphStructure, scores: np.ndarray) -> np.ndarray:
        # scipy's csr_matvec accumulates each row left to right in storage
        # order — the same order np.add.at visits the sorted row ids — and
        # data[jj] * scores[v] is the commuted form of the reference's
        # (scores * inverse_degrees)[v], so the result is bit-identical.
        return structure.matrix @ scores

    def propagate_int(
        self, structure: GraphStructure, values: np.ndarray
    ) -> np.ndarray:
        return structure.int_matrix @ values


class FrontierKernel(DiffusionKernel):
    """Direction-optimising kernel: sparse slice-gather, dense matvec.

    While few scores are non-zero, only the frontier's adjacency slices are
    gathered (a batched ``indptr`` slicing — no Python loop) and scattered
    with ``np.bincount``, which also accumulates sequentially in input
    order; each target row therefore receives its non-zero contributions in
    ascending source order, matching the dense sum bitwise whenever
    neighbour lists are sorted (checked once per structure — unsorted rows
    fall back to the dense product, trading speed, never exactness).  Past
    :data:`DENSE_FRONTIER_FRACTION` density it delegates to the ``csr``
    matvec.
    """

    name = "frontier"

    def __init__(self, dense_fraction: float = DENSE_FRONTIER_FRACTION) -> None:
        if not 0.0 < dense_fraction <= 1.0:
            raise ValueError(
                f"dense_fraction must be in (0, 1], got {dense_fraction}"
            )
        self.dense_fraction = dense_fraction

    def apply(self, structure: GraphStructure, scores: np.ndarray) -> np.ndarray:
        return self.apply_counted(structure, scores)[0]

    def apply_counted(
        self, structure: GraphStructure, scores: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        frontier = np.flatnonzero(scores)
        if frontier.size == 0:
            return np.zeros(structure.num_nodes, dtype=np.float64), 0
        counts = structure.degrees[frontier]
        touched = int(counts.sum())
        if (
            not structure.rows_sorted
            or frontier.size > self.dense_fraction * structure.num_nodes
        ):
            return structure.matrix @ scores, touched
        if touched == 0:
            return np.zeros(structure.num_nodes, dtype=np.float64), 0
        positions = _slice_positions(structure.indptr[frontier], counts, touched)
        weights = np.repeat(
            scores[frontier] * structure.inverse_degrees[frontier], counts
        )
        result = np.bincount(
            structure.indices[positions],
            weights=weights,
            minlength=structure.num_nodes,
        )
        return result, touched

    def propagate_int(
        self, structure: GraphStructure, values: np.ndarray
    ) -> np.ndarray:
        frontier = np.flatnonzero(values)
        result = np.zeros(structure.num_nodes, dtype=np.int64)
        if frontier.size == 0:
            return result
        # Integer addition is exact in any order, so no sorted-rows guard.
        if frontier.size > self.dense_fraction * structure.num_nodes:
            return structure.int_matrix @ values
        counts = structure.degrees[frontier]
        total = int(counts.sum())
        if total == 0:
            return result
        positions = _slice_positions(structure.indptr[frontier], counts, total)
        np.add.at(
            result,
            structure.indices[positions],
            np.repeat(values[frontier], counts),
        )
        return result

    def __repr__(self) -> str:
        return f"FrontierKernel(dense_fraction={self.dense_fraction})"


# ----------------------------------------------------------------------
# Optional numba JIT kernel.
# ----------------------------------------------------------------------
def _import_numba():
    """Import hook — a single seam the fallback tests monkeypatch."""
    import numba

    return numba


_numba_probe: Optional[bool] = None
_numba_impl: Optional[Tuple[Callable, Callable]] = None


def numba_available() -> bool:
    """Whether numba imports in this environment (probed once, memoised)."""
    global _numba_probe
    if _numba_probe is None:
        try:
            _import_numba()
        except Exception:
            _numba_probe = False
        else:
            _numba_probe = True
    return _numba_probe


def numba_enabled() -> bool:
    """Whether the :data:`NUMBA_ENV_VAR` feature flag opts into the JIT."""
    return os.environ.get(NUMBA_ENV_VAR, "").strip().lower() in _TRUTHY


def _build_numba_impl() -> Tuple[Callable, Callable]:
    """Compile (lazily, once) the sequential per-row matvec loops."""
    global _numba_impl
    if _numba_impl is None:
        numba = _import_numba()

        # fastmath stays OFF: it licenses reassociation, which would break
        # the bit-exactness contract.  The plain sequential loop accumulates
        # each row in storage order, exactly like the reference scatter.
        @numba.njit(cache=False, fastmath=False)
        def matvec_float(indptr, indices, contribution, out):
            for row in range(out.shape[0]):
                acc = 0.0
                for position in range(indptr[row], indptr[row + 1]):
                    acc += contribution[indices[position]]
                out[row] = acc

        @numba.njit(cache=False, fastmath=False)
        def matvec_int(indptr, indices, values, out):
            for row in range(out.shape[0]):
                acc = np.int64(0)
                for position in range(indptr[row], indptr[row + 1]):
                    acc += values[indices[position]]
                out[row] = acc

        _numba_impl = (matvec_float, matvec_int)
    return _numba_impl


class NumbaKernel(DiffusionKernel):
    """JIT-compiled per-row loop; degrades to ``frontier`` without numba.

    Explicitly requesting ``make_kernel("numba")`` on a machine without
    numba must not crash an otherwise working configuration (a config file
    shared across heterogeneous hosts), so the kernel silently serves the
    frontier implementation instead; :attr:`jit_enabled` reports which path
    is live.
    """

    name = "numba"

    def __init__(self) -> None:
        self._fallback = FrontierKernel()
        self._impl: Optional[Tuple[Callable, Callable]] = None
        if numba_available():
            self._impl = _build_numba_impl()

    @property
    def jit_enabled(self) -> bool:
        """``True`` when the JIT compiled; ``False`` on the fallback path."""
        return self._impl is not None

    def apply(self, structure: GraphStructure, scores: np.ndarray) -> np.ndarray:
        if self._impl is None:
            return self._fallback.apply(structure, scores)
        contribution = scores * structure.inverse_degrees
        out = np.empty(structure.num_nodes, dtype=np.float64)
        self._impl[0](structure.indptr, structure.indices, contribution, out)
        return out

    def apply_counted(
        self, structure: GraphStructure, scores: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        if self._impl is None:
            return self._fallback.apply_counted(structure, scores)
        return self.apply(structure, scores), structure.touched(scores)

    def propagate_int(
        self, structure: GraphStructure, values: np.ndarray
    ) -> np.ndarray:
        if self._impl is None:
            return self._fallback.propagate_int(structure, values)
        out = np.empty(structure.num_nodes, dtype=np.int64)
        self._impl[1](structure.indptr, structure.indices, values, out)
        return out

    def __repr__(self) -> str:
        return f"NumbaKernel(jit_enabled={self.jit_enabled})"


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
_registry: Dict[str, Callable[[], DiffusionKernel]] = {}
_instances: Dict[str, DiffusionKernel] = {}
_registry_lock = threading.Lock()


def register_kernel(
    name: str, factory: Callable[[], DiffusionKernel], replace: bool = False
) -> None:
    """Register a kernel factory under ``name`` (case-insensitive).

    ``"auto"`` is reserved (it resolves to a registered kernel).  Pass
    ``replace=True`` to override an existing registration — useful for
    experiments plugging in instrumented kernels.
    """
    key = name.strip().lower()
    if not key or key == "auto":
        raise ValueError(f"kernel name {name!r} is reserved")
    with _registry_lock:
        if key in _registry and not replace:
            raise ValueError(f"kernel {key!r} is already registered")
        _registry[key] = factory
        _instances.pop(key, None)


def available_kernels() -> Tuple[str, ...]:
    """Sorted names of every registered kernel (``auto`` excluded)."""
    with _registry_lock:
        return tuple(sorted(_registry))


def default_kernel_name() -> str:
    """The library-wide default kernel spec (:data:`KERNEL_ENV_VAR` or ``auto``)."""
    env = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
    return env or "auto"


def _auto_kernel_name() -> str:
    """What ``auto`` resolves to: the fastest bit-exact kernel available."""
    if numba_enabled() and numba_available():
        return "numba"
    return "frontier"


def resolve_kernel_name(
    spec: Union[str, DiffusionKernel, None] = None
) -> str:
    """Resolve a kernel spec to a concrete registered name.

    ``None`` means the environment default; ``"auto"`` (from either source)
    resolves to :func:`_auto_kernel_name`.  The returned name is what the
    process-pool backend ships to its workers, so resolution happens once,
    parent-side.
    """
    if isinstance(spec, DiffusionKernel):
        return spec.name
    name = (spec if spec is not None else default_kernel_name()).strip().lower()
    if name == "auto":
        name = _auto_kernel_name()
    with _registry_lock:
        if name not in _registry:
            known = ", ".join(sorted(_registry))
            raise ValueError(
                f"unknown diffusion kernel {name!r}; choose from "
                f"{known} or 'auto'"
            )
    return name


def make_kernel(
    spec: Union[str, DiffusionKernel, None] = None
) -> DiffusionKernel:
    """Build (or fetch the shared instance of) a kernel from a spec.

    Accepts a registered name, ``"auto"``, ``None`` (environment default) or
    a :class:`DiffusionKernel` instance (passed through unchanged).  Named
    kernels are stateless, so one shared instance per name is returned.
    """
    if isinstance(spec, DiffusionKernel):
        return spec
    name = resolve_kernel_name(spec)
    with _registry_lock:
        kernel = _instances.get(name)
        if kernel is None:
            kernel = _registry[name]()
            _instances[name] = kernel
    return kernel


register_kernel("reference", ReferenceKernel)
register_kernel("csr", CSRKernel)
register_kernel("frontier", FrontierKernel)
register_kernel("numba", NumbaKernel)
