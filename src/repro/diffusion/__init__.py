"""Diffusion substrate: the transition operator and graph-diffusion kernel."""

from repro.diffusion.diffusion import (
    DEFAULT_ALPHA,
    DiffusionResult,
    diffusion_work,
    graph_diffusion,
    seed_vector,
)
from repro.diffusion.sparse_vector import SparseScoreVector
from repro.diffusion.transition import TransitionOperator

__all__ = [
    "DEFAULT_ALPHA",
    "DiffusionResult",
    "diffusion_work",
    "graph_diffusion",
    "seed_vector",
    "SparseScoreVector",
    "TransitionOperator",
]
