"""The random-walk transition operator ``W = A D^-1``.

Graph diffusion (Eq. 1 of the paper) repeatedly applies the column-stochastic
random-walk matrix ``W = A D^-1`` to a score vector.  This module provides
that operator over :class:`~repro.graph.csr.CSRGraph`; the actual propagation
arithmetic is delegated to a pluggable
:class:`~repro.diffusion.kernels.DiffusionKernel` (bit-identical across
implementations — see :mod:`repro.diffusion.kernels`), while the per-graph
precomputation (degrees, row ids, CSR matrices) is built once per topology
and shared via :func:`~repro.diffusion.kernels.structure_for`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from scipy import sparse

from repro.diffusion.kernels import (
    DiffusionKernel,
    GraphStructure,
    _slice_positions,
    make_kernel,
    resolve_kernel_name,
    structure_for,
)
from repro.graph.csr import CSRGraph

__all__ = ["TransitionOperator"]


class TransitionOperator:
    """Applies ``W = A D^-1`` (and its sparse variant) to score vectors.

    Parameters
    ----------
    graph:
        The graph whose random-walk matrix to apply.
    kernel:
        Propagation kernel: a registered name (``"reference"``, ``"csr"``,
        ``"frontier"``, ``"numba"``), ``"auto"``, a
        :class:`~repro.diffusion.kernels.DiffusionKernel` instance, or
        ``None`` for the environment default.  All kernels produce
        bit-identical scores; the choice is purely a speed knob.

    Notes
    -----
    ``W[u, v] = 1 / degree(v)`` when ``(u, v)`` is an edge.  Applying ``W`` to
    a score vector ``S`` spreads each node's score equally over its
    neighbours — the *propagation* step (``pg1``, ``pg2`` … in Fig. 1).
    Isolated nodes keep a column of zeros, i.e. their score evaporates, which
    matches the paper's treatment (a walk at a dangling node terminates).

    Construction is cheap for a repeated topology: the operator structure is
    fetched from a fingerprint-keyed cache, and :meth:`for_graph` memoises
    whole operators on the graph object itself — so a cached ego sub-graph
    (serving caches, process-pool workers) carries its operator along and a
    stage task never rebuilds ``O(E)`` arrays per diffusion.
    """

    def __init__(
        self,
        graph: CSRGraph,
        kernel: Union[str, DiffusionKernel, None] = None,
    ) -> None:
        self._graph = graph
        self._structure = structure_for(graph)
        self._kernel = make_kernel(kernel)
        self._inverse_degrees = self._structure.inverse_degrees

    # ------------------------------------------------------------------
    @classmethod
    def for_graph(
        cls,
        graph: CSRGraph,
        kernel: Union[str, DiffusionKernel, None] = None,
    ) -> "TransitionOperator":
        """The memoised operator of ``graph`` for the resolved kernel.

        Stored on the graph object (one entry per kernel name), so repeated
        diffusions over the same — typically cached — sub-graph reuse one
        operator instead of rebuilding it per stage task.  The memo never
        pickles with the graph; a worker process rebuilds it on first use
        from its own (shared-memory) arrays.
        """
        name = resolve_kernel_name(kernel)
        memo = graph._operator_memo
        if memo is None:
            memo = {}
            graph._operator_memo = memo
        operator = memo.get(name)
        if operator is None:
            operator = cls(
                graph, kernel if isinstance(kernel, DiffusionKernel) else name
            )
            memo[name] = operator
        return operator

    def with_kernel(
        self, kernel: Union[str, DiffusionKernel, None]
    ) -> "TransitionOperator":
        """This operator with a different kernel (structure shared)."""
        resolved = make_kernel(kernel)
        if resolved is self._kernel:
            return self
        return type(self).for_graph(self._graph, resolved)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The underlying graph."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes of the underlying graph."""
        return self._graph.num_nodes

    @property
    def kernel(self) -> DiffusionKernel:
        """The propagation kernel in use."""
        return self._kernel

    @property
    def structure(self) -> GraphStructure:
        """The shared per-topology operator structure."""
        return self._structure

    # ------------------------------------------------------------------
    def _check_scores(self, scores: np.ndarray, dtype) -> np.ndarray:
        scores = np.asarray(scores, dtype=dtype)
        if scores.shape != (self.num_nodes,):
            raise ValueError(
                f"scores must have shape ({self.num_nodes},), got {scores.shape}"
            )
        return scores

    def apply(self, scores: np.ndarray) -> np.ndarray:
        """Return ``W @ scores`` for a dense score vector."""
        return self._kernel.apply(
            self._structure, self._check_scores(scores, np.float64)
        )

    def apply_counted(self, scores: np.ndarray) -> tuple[np.ndarray, int]:
        """Return ``(W @ scores, adjacency entries touched)``.

        The count is the propagation-work metric of the paper (the sum of
        the degrees of the non-zero entries); frontier-style kernels report
        it as a by-product of the gather, so callers never pay a separate
        mask-and-sum pass per step.
        """
        return self._kernel.apply_counted(
            self._structure, self._check_scores(scores, np.float64)
        )

    def propagate_int(self, values: np.ndarray) -> np.ndarray:
        """Exact integer scatter ``A @ values`` (the fixed-point datapath)."""
        return self._kernel.propagate_int(
            self._structure, self._check_scores(values, np.int64)
        )

    def apply_sparse(self, nodes: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``W`` to a sparse vector given as ``(nodes, values)``.

        Only the non-zero entries are propagated — this is the kernel the
        FPGA diffuser runs, where the frontier of non-zero scores is small in
        the first iterations.  The gather is a batched ``indptr`` slicing
        over the active entries (no per-node Python loop), preserving the
        historical semantics exactly: entries are expanded in input order
        and summed per target in that same order.

        Returns
        -------
        (nodes, values):
            The non-zero pattern of the result, with unique, sorted nodes.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if nodes.shape != values.shape:
            raise ValueError("nodes and values must have the same shape")
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        if nodes.size == 0:
            return empty
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise ValueError(
                f"nodes contain ids outside [0, {self.num_nodes})"
            )
        structure = self._structure
        keep = (values != 0.0) & (structure.degrees[nodes] > 0)
        active = nodes[keep]
        if active.size == 0:
            return empty
        active_values = values[keep]
        counts = structure.degrees[active]
        total = int(counts.sum())
        positions = _slice_positions(structure.indptr[active], counts, total)
        all_nodes = structure.indices[positions].astype(np.int64)
        all_values = np.repeat(
            active_values * structure.inverse_degrees[active], counts
        )
        unique, inverse = np.unique(all_nodes, return_inverse=True)
        summed = np.zeros(unique.size, dtype=np.float64)
        np.add.at(summed, inverse, all_values)
        return unique, summed

    def matrix(self) -> sparse.csr_matrix:
        """Return ``W`` as an explicit scipy CSR matrix (used by tests)."""
        adjacency = self._graph.to_scipy()
        return adjacency @ sparse.diags(self._inverse_degrees)

    def apply_power(self, scores: np.ndarray, power: int) -> np.ndarray:
        """Return ``W^power @ scores``."""
        if power < 0:
            raise ValueError(f"power must be >= 0, got {power}")
        result = self._check_scores(scores, np.float64).copy()
        for _ in range(power):
            result = self._kernel.apply(self._structure, result)
        return result

    def __repr__(self) -> str:
        return (
            f"TransitionOperator(graph={self._graph!r}, "
            f"kernel={self._kernel.name!r})"
        )
