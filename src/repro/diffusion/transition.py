"""The random-walk transition operator ``W = A D^-1``.

Graph diffusion (Eq. 1 of the paper) repeatedly applies the column-stochastic
random-walk matrix ``W = A D^-1`` to a score vector.  This module provides
that operator over :class:`~repro.graph.csr.CSRGraph` without materialising a
second sparse matrix: the CSR adjacency arrays are reused directly, which is
exactly how the FPGA sub-graph table of the paper stores neighbour lists.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.graph.csr import CSRGraph

__all__ = ["TransitionOperator"]


class TransitionOperator:
    """Applies ``W = A D^-1`` (and its sparse variant) to score vectors.

    Parameters
    ----------
    graph:
        The graph whose random-walk matrix to apply.

    Notes
    -----
    ``W[u, v] = 1 / degree(v)`` when ``(u, v)`` is an edge.  Applying ``W`` to
    a score vector ``S`` spreads each node's score equally over its
    neighbours — the *propagation* step (``pg1``, ``pg2`` … in Fig. 1).
    Isolated nodes keep a column of zeros, i.e. their score evaporates, which
    matches the paper's treatment (a walk at a dangling node terminates).
    """

    def __init__(self, graph: CSRGraph) -> None:
        self._graph = graph
        degrees = graph.degrees().astype(np.float64)
        with np.errstate(divide="ignore"):
            inverse = np.where(degrees > 0, 1.0 / degrees, 0.0)
        self._inverse_degrees = inverse

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The underlying graph."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes of the underlying graph."""
        return self._graph.num_nodes

    # ------------------------------------------------------------------
    def apply(self, scores: np.ndarray) -> np.ndarray:
        """Return ``W @ scores`` for a dense score vector.

        The implementation is a scatter over the CSR structure: each node
        ``v`` pushes ``scores[v] / degree(v)`` to every neighbour.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (self.num_nodes,):
            raise ValueError(
                f"scores must have shape ({self.num_nodes},), got {scores.shape}"
            )
        contribution = scores * self._inverse_degrees
        # Each adjacency entry (v -> neighbor) receives contribution[v]; for
        # the undirected CSR this is symmetric, so we can gather instead of
        # scatter: result[u] = sum over neighbors v of contribution[v].
        graph = self._graph
        gathered = contribution[graph.indices]
        result = np.zeros(self.num_nodes, dtype=np.float64)
        np.add.at(result, np.repeat(np.arange(self.num_nodes), graph.degrees()), gathered)
        return result

    def apply_sparse(self, nodes: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``W`` to a sparse vector given as ``(nodes, values)``.

        Only the non-zero entries are propagated — this is the kernel the
        FPGA diffuser runs, where the frontier of non-zero scores is small in
        the first iterations.

        Returns
        -------
        (nodes, values):
            The non-zero pattern of the result, with unique, sorted nodes.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if nodes.shape != values.shape:
            raise ValueError("nodes and values must have the same shape")
        graph = self._graph
        out_nodes: list[np.ndarray] = []
        out_values: list[np.ndarray] = []
        for node, value in zip(nodes, values):
            if value == 0.0:
                continue
            neighbors = graph.neighbors(int(node))
            if neighbors.size == 0:
                continue
            out_nodes.append(neighbors.astype(np.int64))
            out_values.append(
                np.full(neighbors.size, value * self._inverse_degrees[node])
            )
        if not out_nodes:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        all_nodes = np.concatenate(out_nodes)
        all_values = np.concatenate(out_values)
        unique, inverse = np.unique(all_nodes, return_inverse=True)
        summed = np.zeros(unique.size, dtype=np.float64)
        np.add.at(summed, inverse, all_values)
        return unique, summed

    def matrix(self) -> sparse.csr_matrix:
        """Return ``W`` as an explicit scipy CSR matrix (used by tests)."""
        adjacency = self._graph.to_scipy()
        return adjacency @ sparse.diags(self._inverse_degrees)

    def apply_power(self, scores: np.ndarray, power: int) -> np.ndarray:
        """Return ``W^power @ scores``."""
        if power < 0:
            raise ValueError(f"power must be >= 0, got {power}")
        result = np.asarray(scores, dtype=np.float64).copy()
        for _ in range(power):
            result = self.apply(result)
        return result
