"""Graph diffusion ``GD(l)(S0)`` — the computational core of the paper.

Eq. (1) of the paper defines graph diffusion of length ``l`` as

.. math::

    S_l = (1 - \\alpha) \\sum_{k=0}^{l-1} \\alpha^k W^k S_0
          + \\alpha^l W^l S_0,

computed iteratively as ``S_{k+1} = (1 - alpha) * S_0 + alpha * W * S_k``.

Fig. 3(b) shows that one diffusion simultaneously produces two outputs:

* the **accumulated scores** ``pi_a = S_l`` — these are folded into the global
  PPR score table, and
* the **residual scores** ``pi_r = W^l S_0`` — these seed the next stage of
  MeLoPPR (the stage decomposition of Eq. 6 subtracts ``alpha^l1 * pi_r`` and
  re-diffuses it).

:func:`graph_diffusion` therefore always returns both vectors.  The same
kernel is reused by the single-stage baseline, the multi-stage CPU solver and
the FPGA processing-element model (which additionally counts cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.diffusion.kernels import DiffusionKernel
from repro.diffusion.transition import TransitionOperator
from repro.graph.csr import CSRGraph
from repro.utils.validation import (
    check_node_id,
    check_non_negative_int,
    check_probability,
)

__all__ = ["DiffusionResult", "graph_diffusion", "seed_vector", "diffusion_work", "DEFAULT_ALPHA"]

#: Decay factor used throughout the paper's experiments (standard PPR value).
DEFAULT_ALPHA = 0.85


@dataclass(frozen=True)
class DiffusionResult:
    """Output of one graph diffusion ``GD(l)(S0)``.

    Attributes
    ----------
    accumulated:
        Dense vector ``pi_a = S_l`` over the diffusion graph's nodes.
    residual:
        Dense vector ``pi_r = W^l S_0`` over the diffusion graph's nodes.
    length:
        Number of propagation steps ``l``.
    alpha:
        Decay factor used.
    propagations:
        Total number of adjacency entries touched across all iterations — the
        work metric the cycle model charges the FPGA diffuser for.
    """

    accumulated: np.ndarray
    residual: np.ndarray
    length: int
    alpha: float
    propagations: int

    @property
    def num_nodes(self) -> int:
        """Length of the score vectors."""
        return int(self.accumulated.size)

    def score_mass(self) -> float:
        """Total accumulated score mass (stays 1 on a graph with no dangling loss)."""
        return float(self.accumulated.sum())


def seed_vector(num_nodes: int, seed: int, value: float = 1.0) -> np.ndarray:
    """Return the initial vector ``S0``: all zeros except ``value`` at ``seed``."""
    seed = check_node_id(seed, num_nodes, "seed")
    vector = np.zeros(num_nodes, dtype=np.float64)
    vector[seed] = value
    return vector


def graph_diffusion(
    graph_or_operator: Union[CSRGraph, TransitionOperator],
    initial: np.ndarray,
    length: int,
    alpha: float = DEFAULT_ALPHA,
    kernel: Union[str, DiffusionKernel, None] = None,
) -> DiffusionResult:
    """Compute ``GD(length)(initial)`` on a graph.

    Parameters
    ----------
    graph_or_operator:
        Either a :class:`CSRGraph` (the memoised
        :meth:`TransitionOperator.for_graph` operator is used, so repeated
        diffusions over a cached sub-graph share one operator) or a
        pre-built operator.
    initial:
        Dense initial vector ``S0`` over the graph's nodes.  For PPR this is a
        one-hot vector at the seed node (:func:`seed_vector`), but the stage
        decomposition also diffuses arbitrary residual vectors.
    length:
        Number of propagation steps ``l >= 0``.
    alpha:
        Decay factor in ``[0, 1]``.
    kernel:
        Propagation kernel selection (see :mod:`repro.diffusion.kernels`);
        ``None`` keeps the operator's kernel (or the environment default).
        Every kernel yields bit-identical scores.

    Returns
    -------
    DiffusionResult
        Accumulated scores ``S_l``, residual scores ``W^l S0`` and work
        counters.

    Notes
    -----
    The closed form of Eq. 1 is evaluated with a single propagation chain:
    with ``r_k = W^k S0``,

    ``S_l = (1 - alpha) * sum_{k=0}^{l-1} alpha^k r_k + alpha^l r_l``

    so each iteration applies ``W`` once and folds the weighted term into the
    accumulator, exactly the dataflow of Fig. 3(b).  ``length == 0`` returns
    ``accumulated == residual == initial``, which makes the
    stage-decomposition identity of Eq. 6 hold for degenerate splits.
    """
    if isinstance(graph_or_operator, TransitionOperator):
        operator = graph_or_operator
        if kernel is not None:
            operator = operator.with_kernel(kernel)
    else:
        operator = TransitionOperator.for_graph(graph_or_operator, kernel)
    length = check_non_negative_int(length, "length")
    alpha = check_probability(alpha, "alpha")

    initial = np.asarray(initial, dtype=np.float64)
    if initial.shape != (operator.num_nodes,):
        raise ValueError(
            f"initial must have shape ({operator.num_nodes},), got {initial.shape}"
        )

    # The loop talks to the kernel directly (shape validated once above):
    # apply_counted returns the propagation-work count as a by-product, so
    # no per-step mask + fancy-index pass over the degree array is needed.
    structure = operator.structure
    step_kernel = operator.kernel
    residual = initial.copy()
    accumulated = np.zeros_like(initial)
    propagations = 0
    for step in range(length):
        accumulated += (1.0 - alpha) * (alpha**step) * residual
        residual, touched = step_kernel.apply_counted(structure, residual)
        propagations += touched
    accumulated += (alpha**length) * residual

    return DiffusionResult(
        accumulated=accumulated,
        residual=residual,
        length=length,
        alpha=alpha,
        propagations=propagations,
    )


def diffusion_work(graph: CSRGraph, length: int) -> int:
    """Upper bound on adjacency entries touched by a length-``length`` diffusion.

    Each iteration touches every edge twice in the dense regime, so the bound
    is ``2 * |E| * length``.  Used by quick capacity checks in the hardware
    model before a sub-graph is committed to a processing element.
    """
    length = check_non_negative_int(length, "length")
    return 2 * graph.num_edges * length
