"""Memory measurement substrate (tracemalloc tracking and reporting)."""

from repro.memory.report import (
    MemorySummary,
    bytes_to_megabytes,
    reduction_factor,
    summarize_bytes,
)
from repro.memory.tracker import MemoryTracker

__all__ = [
    "MemorySummary",
    "bytes_to_megabytes",
    "reduction_factor",
    "summarize_bytes",
    "MemoryTracker",
]
