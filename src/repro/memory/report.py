"""Memory usage summaries and reduction factors (Table II bookkeeping)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["MemorySummary", "summarize_bytes", "reduction_factor", "bytes_to_megabytes"]


def bytes_to_megabytes(value: float) -> float:
    """Convert bytes to binary megabytes (the unit used in Table II)."""
    return value / (1024.0 * 1024.0)


@dataclass(frozen=True)
class MemorySummary:
    """Min / max / mean of a set of per-query memory measurements, in bytes."""

    minimum: float
    maximum: float
    mean: float
    count: int

    @property
    def minimum_mb(self) -> float:
        """Minimum in megabytes."""
        return bytes_to_megabytes(self.minimum)

    @property
    def maximum_mb(self) -> float:
        """Maximum in megabytes."""
        return bytes_to_megabytes(self.maximum)

    @property
    def mean_mb(self) -> float:
        """Mean in megabytes."""
        return bytes_to_megabytes(self.mean)


def summarize_bytes(values: Sequence[float]) -> MemorySummary:
    """Summarise a sequence of byte counts."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return MemorySummary(0.0, 0.0, 0.0, 0)
    return MemorySummary(
        minimum=float(array.min()),
        maximum=float(array.max()),
        mean=float(array.mean()),
        count=int(array.size),
    )


def reduction_factor(baseline_bytes: float, optimized_bytes: float) -> float:
    """Memory reduction factor ``baseline / optimized``.

    A value above 1 means the optimised implementation uses less memory.
    Returns ``inf`` when the optimised implementation reports zero bytes
    (Table II prints "0.000 MB" for the smallest FPGA sub-graphs).
    """
    if baseline_bytes < 0 or optimized_bytes < 0:
        raise ValueError("byte counts must be non-negative")
    if optimized_bytes == 0:
        return float("inf")
    return baseline_bytes / optimized_bytes
