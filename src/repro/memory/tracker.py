"""Peak-memory measurement with ``tracemalloc``.

Sec. VI-B of the paper: "For pure CPU implementation, the memory usage is
captured by the tracemalloc built-in module in Python."  This module wraps
``tracemalloc`` as a context manager so that every solver can report the peak
number of bytes allocated while answering a query, which feeds the Table II
comparison.
"""

from __future__ import annotations

import threading
import tracemalloc
from typing import Optional

__all__ = ["MemoryTracker"]


class MemoryTracker:
    """Context manager capturing peak allocated bytes inside its body.

    Parameters
    ----------
    enabled:
        When false the tracker is a no-op (``peak_bytes`` stays 0), which lets
        latency benchmarks opt out of the tracing overhead.

    Notes
    -----
    ``tracemalloc`` maintains a single global trace.  Nested trackers are
    supported: if tracing is already running when the tracker starts, the
    tracker snapshots the current peak, resets it, and restores tracing state
    on exit without stopping the outer trace.

    Because the trace is process-global, concurrent tracked sections cannot
    be attributed to their threads; enabled trackers therefore serialise on a
    shared re-entrant lock held for the lifetime of the ``with`` block.  Code
    that wants parallelism (e.g. the serving engine's thread-pool backend)
    should disable tracking instead of measuring concurrently.
    """

    #: Serialises all enabled tracked sections (tracemalloc is global state).
    _global_lock = threading.RLock()

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._was_tracing = False
        self._peak_bytes = 0
        self._current_at_start = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this tracker measures anything."""
        return self._enabled

    @property
    def peak_bytes(self) -> int:
        """Peak bytes allocated inside the ``with`` block (0 when disabled)."""
        return self._peak_bytes

    @property
    def peak_megabytes(self) -> float:
        """Peak allocation in binary megabytes."""
        return self._peak_bytes / (1024.0 * 1024.0)

    # ------------------------------------------------------------------
    def __enter__(self) -> "MemoryTracker":
        if not self._enabled:
            return self
        MemoryTracker._global_lock.acquire()
        self._was_tracing = tracemalloc.is_tracing()
        if not self._was_tracing:
            tracemalloc.start()
        current, _ = tracemalloc.get_traced_memory()
        self._current_at_start = current
        tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if not self._enabled:
            return
        try:
            _, peak = tracemalloc.get_traced_memory()
            # Report the growth above the allocation level at entry so nested
            # and repeated measurements are comparable.
            self._peak_bytes = max(0, peak - self._current_at_start)
            if not self._was_tracing:
                tracemalloc.stop()
        finally:
            MemoryTracker._global_lock.release()
