"""repro — a reproduction of MeLoPPR (DAC 2021).

MeLoPPR is a memory-efficient, low-latency personalised-PageRank (PPR)
software/hardware co-design.  This package provides:

* :mod:`repro.graph` — the graph substrate (CSR graphs, generators, the six
  paper-dataset stand-ins, BFS sub-graph extraction);
* :mod:`repro.diffusion` — the graph-diffusion kernel ``GD(l)(S0)``;
* :mod:`repro.ppr` — PPR solver interfaces, baselines and quality metrics;
* :mod:`repro.meloppr` — the MeLoPPR algorithm (stage/linear decomposition,
  sparsity-driven selection, bounded score aggregation, fixed-point model);
* :mod:`repro.hardware` — the FPGA accelerator model and CPU+FPGA co-sim;
* :mod:`repro.memory` — memory measurement (tracemalloc) and reporting;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart
----------
>>> from repro.graph import load_dataset
>>> from repro.meloppr import MeLoPPRSolver, MeLoPPRConfig
>>> graph = load_dataset("G1")                      # citeseer stand-in
>>> solver = MeLoPPRSolver(graph, MeLoPPRConfig.paper_default())
>>> result = solver.solve_seed(seed=0, k=20)
>>> len(result.top_k_nodes(5))
5
"""

from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery, PPRResult
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine

__version__ = "0.1.0"

__all__ = [
    "MeLoPPRConfig",
    "MeLoPPRSolver",
    "PPRQuery",
    "PPRResult",
    "QueryEngine",
    "SubgraphCache",
    "__version__",
]
