"""Delta-overlay graphs: streaming edge updates over an immutable CSR base.

Production graphs mutate — recommender and fraud graphs see a steady stream
of edge insertions and deletions — but :class:`~repro.graph.csr.CSRGraph` is
immutable by design (every kernel, cache and shard relies on that).
:class:`DeltaGraph` bridges the two worlds: it overlays insert/delete logs on
a base CSR, serves merged neighbour reads in ``O(degree + delta)``, and
produces a fresh, fully canonical :class:`CSRGraph` on :meth:`compact` —
bit-identical (same arrays, same fingerprint) to a from-scratch rebuild of
the same edge set, which is what makes every differential churn test in the
suite possible.

Two further pieces support **surgical cache invalidation** in the serving
layer (see :meth:`repro.serving.engine.QueryEngine.apply_update`):

* **Incremental region fingerprints** — node ids are grouped into fixed-size
  blocks and each block carries a lazily computed digest of its (merged)
  adjacency rows.  An update touching node ``v`` invalidates only the digest
  of ``v``'s block; the global :meth:`DeltaGraph.fingerprint` is derived from
  the region digests, so change detection after an update pays for the
  touched regions only.
* **Conservative reach bounds** — :func:`min_hop_distances` runs a
  multi-source BFS from the update's touched endpoints, and
  :func:`update_distance_bound` takes the element-wise minimum over the old
  *and* new topology (a deletion shrinks reach on the new graph but not the
  old one; an insertion the reverse).  A cached artefact derived from the
  depth-``d`` ego ball of ``center`` is provably unaffected by the update
  whenever ``bound[center] > d``: no touched endpoint lies inside the ball
  on either topology, so the extraction — and everything computed from it —
  is byte-for-byte identical on the new graph.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.graph.bfs import expand_frontier
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_node_id

__all__ = [
    "DEFAULT_REGION_SIZE",
    "EdgeOp",
    "DeltaGraph",
    "normalize_edge_ops",
    "min_hop_distances",
    "update_distance_bound",
]

#: Default node-id block size of the incremental region fingerprints.
DEFAULT_REGION_SIZE = 1024

#: One canonical edge operation: ``(kind, u, v)`` with ``kind`` in
#: ``{"insert", "delete"}`` and ``u < v``.
EdgeOp = Tuple[str, int, int]

_EDGE_OP_KINDS = ("insert", "delete")


def _check_endpoint(value: object, index: int, name: str, num_nodes: int) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(
            f"edge op {index}: {name} must be an integer node id, got {value!r}"
        )
    node = int(value)
    if not 0 <= node < num_nodes:
        raise ValueError(
            f"edge op {index}: {name}={node} outside [0, {num_nodes})"
        )
    return node


def normalize_edge_ops(
    ops: Iterable[Union[EdgeOp, Dict[str, object]]], num_nodes: int
) -> List[EdgeOp]:
    """Canonicalise one update batch into validated ``(kind, u, v)`` tuples.

    Accepts ``("insert", u, v)`` tuples or ``{"op": "insert", "u": u,
    "v": v}`` dicts (the wire form of ``POST /admin/update`` and the TCP
    ``update`` op).  Endpoints are range-checked, self-loops rejected and
    each pair ordered ``u < v``; the batch must be non-empty.  All errors
    raise ``ValueError`` *before* anything is applied, so an update either
    validates whole or changes nothing — the same all-or-nothing contract as
    :func:`repro.serving.frontend.ops.apply_reload`.
    """
    if isinstance(ops, (str, bytes, dict)):
        raise ValueError(
            f"update ops must be a list of edge ops, got {type(ops).__name__}"
        )
    normalized: List[EdgeOp] = []
    for index, op in enumerate(ops):
        if isinstance(op, dict):
            missing = [key for key in ("op", "u", "v") if key not in op]
            if missing:
                raise ValueError(f"edge op {index} is missing key(s) {missing}")
            kind, u, v = op["op"], op["u"], op["v"]
        else:
            try:
                kind, u, v = op
            except (TypeError, ValueError):
                raise ValueError(
                    f"edge op {index} must be (op, u, v) or "
                    f"{{'op', 'u', 'v'}}, got {op!r}"
                ) from None
        if kind not in _EDGE_OP_KINDS:
            raise ValueError(
                f"edge op {index}: unknown op {kind!r} "
                f"(expected one of {list(_EDGE_OP_KINDS)})"
            )
        u = _check_endpoint(u, index, "u", num_nodes)
        v = _check_endpoint(v, index, "v", num_nodes)
        if u == v:
            raise ValueError(f"edge op {index}: self-loop ({u}, {v}) not allowed")
        normalized.append((str(kind), min(u, v), max(u, v)))
    if not normalized:
        raise ValueError("update batch must contain at least one edge op")
    return normalized


class DeltaGraph:
    """A mutable edge-update overlay on an immutable base :class:`CSRGraph`.

    Parameters
    ----------
    base:
        The frozen base topology.  Never mutated — the overlay records
        insertions and deletions beside it.
    region_size:
        Node-id block size of the incremental region fingerprints.
    name:
        Name carried onto :meth:`compact`'s output (defaults to the base
        graph's name, so shard and extraction labels stay stable across
        updates).

    Notes
    -----
    The overlay keeps graphs **simple and undirected**: inserting an edge
    that already exists, deleting one that does not, and self-loops all
    raise ``ValueError`` — so the insert/delete logs stay canonical (an
    insert log entry is never a base edge, a delete log entry always is)
    and ``num_edges`` is exact.  Not thread-safe; the serving engine applies
    updates under its write barrier.
    """

    def __init__(
        self,
        base: CSRGraph,
        region_size: int = DEFAULT_REGION_SIZE,
        name: Optional[str] = None,
    ) -> None:
        if region_size <= 0:
            raise ValueError(f"region_size must be > 0, got {region_size}")
        self._base = base
        self._region_size = int(region_size)
        self._name = base.name if name is None else str(name)
        # node -> neighbour set; _inserts holds only non-base edges and
        # _deletes only base edges (both sides of every edge are recorded).
        self._inserts: Dict[int, Set[int]] = {}
        self._deletes: Dict[int, Set[int]] = {}
        self._touched: Set[int] = set()
        self._num_edges = base.num_edges
        num_regions = -(-base.num_nodes // self._region_size)
        self._region_digests: List[Optional[str]] = [None] * num_regions
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def base(self) -> CSRGraph:
        """The immutable base graph under the overlay."""
        return self._base

    @property
    def name(self) -> str:
        """Graph name (carried onto compacted graphs)."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes (edge updates never change the node set)."""
        return self._base.num_nodes

    @property
    def num_edges(self) -> int:
        """Current number of undirected edges (base + inserts - deletes)."""
        return self._num_edges

    @property
    def region_size(self) -> int:
        """Node-id block size of the region fingerprints."""
        return self._region_size

    @property
    def num_regions(self) -> int:
        """Number of node-id blocks."""
        return len(self._region_digests)

    @property
    def delta_edges(self) -> int:
        """Number of overlay edges (pending inserts + pending deletes)."""
        inserted = sum(len(row) for row in self._inserts.values()) // 2
        deleted = sum(len(row) for row in self._deletes.values()) // 2
        return inserted + deleted

    def touched_nodes(self) -> np.ndarray:
        """Sorted ids of every node an update has touched since construction.

        Includes endpoints of ops that later cancelled out (an insert
        followed by a delete of the same edge): the set is a conservative
        input for invalidation bounds, never an exact topology diff.
        """
        return np.asarray(sorted(self._touched), dtype=np.int64)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _touch(self, node: int) -> None:
        self._touched.add(node)
        self._region_digests[node // self._region_size] = None
        self._fingerprint = None

    def _log_add(self, log: Dict[int, Set[int]], u: int, v: int) -> None:
        log.setdefault(u, set()).add(v)
        log.setdefault(v, set()).add(u)

    def _log_discard(self, log: Dict[int, Set[int]], u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            row = log[a]
            row.discard(b)
            if not row:
                del log[a]

    def insert_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``(u, v)``; it must not already exist."""
        u = check_node_id(u, self.num_nodes, "u")
        v = check_node_id(v, self.num_nodes, "v")
        if u == v:
            raise ValueError(f"self-loop ({u}, {v}) not allowed")
        if self.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already exists")
        if v in self._deletes.get(u, ()):
            # Re-inserting a deleted base edge cancels the delete log entry.
            self._log_discard(self._deletes, u, v)
        else:
            self._log_add(self._inserts, u, v)
        self._num_edges += 1
        self._touch(u)
        self._touch(v)

    def delete_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``(u, v)``; it must currently exist."""
        u = check_node_id(u, self.num_nodes, "u")
        v = check_node_id(v, self.num_nodes, "v")
        if not self.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) does not exist")
        if v in self._inserts.get(u, ()):
            # Deleting a pending insert cancels the insert log entry.
            self._log_discard(self._inserts, u, v)
        else:
            self._log_add(self._deletes, u, v)
        self._num_edges -= 1
        self._touch(u)
        self._touch(v)

    def apply(self, ops: Sequence[EdgeOp]) -> None:
        """Apply a batch of canonical edge ops (see :func:`normalize_edge_ops`)."""
        for kind, u, v in ops:
            if kind == "insert":
                self.insert_edge(u, v)
            else:
                self.delete_edge(u, v)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``(u, v)`` exists in the overlaid view."""
        u = check_node_id(u, self.num_nodes, "u")
        v = check_node_id(v, self.num_nodes, "v")
        if v in self._inserts.get(u, ()):
            return True
        if v in self._deletes.get(u, ()):
            return False
        return self._base.has_edge(u, v)

    def degree(self, node: int) -> int:
        """Degree of ``node`` in the overlaid view (O(1))."""
        node = check_node_id(node, self.num_nodes)
        return (
            self._base.degree(node)
            + len(self._inserts.get(node, ()))
            - len(self._deletes.get(node, ()))
        )

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbour ids of ``node``, base row merged with the deltas.

        Costs ``O(degree + delta)``; nodes with no overlay entries return the
        base CSR row directly (a zero-copy ``int32`` view — touched rows come
        back ``int64``).
        """
        node = check_node_id(node, self.num_nodes)
        row = self._base.neighbors(node)
        inserted = self._inserts.get(node)
        deleted = self._deletes.get(node)
        if not inserted and not deleted:
            return row
        merged = row.astype(np.int64)
        if deleted:
            drop = np.fromiter(deleted, dtype=np.int64, count=len(deleted))
            merged = np.setdiff1d(merged, drop, assume_unique=True)
        if inserted:
            add = np.fromiter(inserted, dtype=np.int64, count=len(inserted))
            merged = np.union1d(merged, add)
        return merged

    # ------------------------------------------------------------------
    # Fingerprints
    # ------------------------------------------------------------------
    def region_fingerprint(self, block: int) -> str:
        """Digest of one node-id block's adjacency rows (hex, 32 chars).

        The digest covers the *merged* view (each row canonicalised to
        sorted ``int64`` with a length prefix), so it depends only on the
        current topology — never on how the overlay got there.  Digests are
        memoised per block and invalidated only when an update touches a
        node inside the block, which is what makes change detection after a
        small update cheap on a large graph.
        """
        if not 0 <= block < self.num_regions:
            raise ValueError(
                f"block must be in [0, {self.num_regions}), got {block}"
            )
        digest = self._region_digests[block]
        if digest is None:
            hasher = hashlib.blake2b(digest_size=16)
            start = block * self._region_size
            end = min(self.num_nodes, start + self._region_size)
            for node in range(start, end):
                row = np.ascontiguousarray(self.neighbors(node), dtype=np.int64)
                hasher.update(np.int64(row.size).tobytes())
                hasher.update(row.tobytes())
            digest = hasher.hexdigest()
            self._region_digests[block] = digest
        return digest

    def fingerprint(self) -> str:
        """Global digest derived from the region digests (hex, 32 chars).

        Topology-determined like :meth:`CSRGraph.fingerprint` but computed
        under a different (incremental) scheme, so the two are **not**
        comparable across classes — the serving layer keys its caches on the
        compacted CSR's fingerprint and uses this one for cheap overlay-side
        change detection.
        """
        if self._fingerprint is None:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(np.int64(self.num_nodes).tobytes())
            hasher.update(np.int64(self._region_size).tobytes())
            for block in range(self.num_regions):
                hasher.update(bytes.fromhex(self.region_fingerprint(block)))
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> CSRGraph:
        """Fold the overlay into a fresh, canonical :class:`CSRGraph`.

        The result is bit-identical (arrays and fingerprint) to rebuilding
        the current edge set from scratch: rows stay sorted ascending, every
        edge stored twice.  With an empty overlay the new graph *reuses* the
        base's immutable buffers — it is still a distinct object, so
        per-object derived state (the ``TransitionOperator`` memo) starts
        empty and fingerprint-keyed state is shared safely.  ``self`` is not
        consumed; keep updating it or start a new overlay on the result.
        """
        base = self._base
        if not self._inserts and not self._deletes:
            return CSRGraph(base.indptr, base.indices, name=self._name)
        num_nodes = self.num_nodes
        degrees = np.diff(base.indptr).copy()
        delta_nodes = sorted(set(self._inserts) | set(self._deletes))
        for node in delta_nodes:
            degrees[node] += len(self._inserts.get(node, ())) - len(
                self._deletes.get(node, ())
            )
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        previous = 0  # first node of the next untouched run
        for node in delta_nodes:
            if node > previous:
                span = base.indices[base.indptr[previous] : base.indptr[node]]
                indices[indptr[previous] : indptr[previous] + span.size] = span
            indices[indptr[node] : indptr[node + 1]] = self.neighbors(node)
            previous = node + 1
        if previous < num_nodes:
            span = base.indices[base.indptr[previous] :]
            indices[indptr[previous] :] = span
        return CSRGraph(indptr, indices, name=self._name)

    def __repr__(self) -> str:
        return (
            f"DeltaGraph(base={self._base.name!r}, num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, delta_edges={self.delta_edges})"
        )


# ----------------------------------------------------------------------
# Reach bounds for surgical invalidation
# ----------------------------------------------------------------------
def min_hop_distances(
    graph: CSRGraph, sources: Union[np.ndarray, Sequence[int]], radius: int
) -> np.ndarray:
    """Hop distance from the nearest source, capped: ``radius + 1`` = farther.

    A multi-source BFS over ``graph`` (one :func:`expand_frontier` ring per
    level, the same visit machinery every extraction uses).  Distances above
    ``radius`` are not resolved — callers only ever compare against depths
    ``<= radius``.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    num_nodes = graph.num_nodes
    distances = np.full(num_nodes, radius + 1, dtype=np.int64)
    sources = np.unique(np.asarray(sources, dtype=np.int64))
    if sources.size == 0:
        return distances
    if sources[0] < 0 or sources[-1] >= num_nodes:
        raise ValueError("sources contain node ids outside [0, num_nodes)")
    visited = np.zeros(num_nodes, dtype=bool)
    visited[sources] = True
    distances[sources] = 0
    frontier = sources
    for level in range(1, radius + 1):
        if frontier.size == 0:
            break
        frontier, _ = expand_frontier(graph.indptr, graph.indices, frontier, visited)
        distances[frontier] = level
    return distances


def update_distance_bound(
    old_graph: CSRGraph,
    new_graph: CSRGraph,
    touched: Union[np.ndarray, Sequence[int]],
    radius: int,
) -> np.ndarray:
    """Conservative per-node distance to an update's touched endpoints.

    The element-wise minimum of :func:`min_hop_distances` over the **old and
    new** topology: a deleted edge keeps nodes close on the old graph, an
    inserted one on the new, and a cached depth-``d`` artefact centred on
    ``c`` is invalidated exactly when ``bound[c] <= d``.  Why that bound is
    safe: a depth-``d`` extraction from ``c`` reads only the adjacency rows
    of nodes strictly inside the ball plus the edges among ball members, and
    an update only changes the rows of its touched endpoints — so if no
    touched endpoint lies within ``d`` hops of ``c`` on either topology, the
    extraction (hence any diffusion, fold or selection computed from it) is
    byte-identical before and after the update.
    """
    return np.minimum(
        min_hop_distances(old_graph, touched, radius),
        min_hop_distances(new_graph, touched, radius),
    )
