"""Synthetic graph generators.

The paper evaluates on six SNAP graphs.  Those datasets cannot be downloaded
in this offline environment, so :mod:`repro.graph.datasets` builds stand-ins
from the generators in this module.  The generators are deterministic given a
seed and produce graphs whose degree distributions match the structural
regimes of the originals:

* citation networks (citeseer, cora, pubmed) — sparse, low average degree,
  mild skew → :func:`citation_graph`;
* co-purchase / co-authorship / social networks (com-amazon, com-dblp,
  com-youtube) — heavy-tailed degree distribution with community structure →
  :func:`community_graph` (power-law cluster style).

Classic generators (Barabási–Albert, Watts–Strogatz, Erdős–Rényi, stochastic
block model, configuration model) are also provided for tests and examples.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "stochastic_block_model",
    "configuration_model_graph",
    "powerlaw_cluster_graph",
    "citation_graph",
    "community_graph",
]


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    rng: RngLike = None,
    name: str = "erdos-renyi",
) -> CSRGraph:
    """G(n, p) random graph.

    Edges are sampled by drawing the expected number of edges and rejecting
    duplicates, which is accurate for the sparse regime used here.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edge_probability = check_probability(edge_probability, "edge_probability")
    generator = ensure_rng(rng)
    max_edges = num_nodes * (num_nodes - 1) // 2
    expected = int(round(max_edges * edge_probability))
    builder = GraphBuilder(num_nodes=num_nodes)
    if expected > 0 and num_nodes > 1:
        sources = generator.integers(0, num_nodes, size=2 * expected + 16)
        targets = generator.integers(0, num_nodes, size=2 * expected + 16)
        keep = sources != targets
        edges = np.column_stack([sources[keep], targets[keep]])[:expected]
        builder.add_edges(edges)
    return builder.build(name=name)


def barabasi_albert_graph(
    num_nodes: int,
    attachment: int,
    rng: RngLike = None,
    name: str = "barabasi-albert",
) -> CSRGraph:
    """Barabási–Albert preferential-attachment graph.

    Each new node attaches to ``attachment`` existing nodes chosen with
    probability proportional to their degree (implemented with the standard
    repeated-nodes trick).
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    attachment = check_positive_int(attachment, "attachment")
    if attachment >= num_nodes:
        raise ValueError("attachment must be smaller than num_nodes")
    generator = ensure_rng(rng)
    builder = GraphBuilder(num_nodes=num_nodes)

    # Start from a star over the first `attachment + 1` nodes.
    repeated: list[int] = []
    for node in range(1, attachment + 1):
        builder.add_edge(0, node)
        repeated.extend([0, node])

    for node in range(attachment + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < attachment:
            pick = repeated[int(generator.integers(0, len(repeated)))]
            targets.add(pick)
        for target in targets:
            builder.add_edge(node, target)
            repeated.extend([node, target])
    return builder.build(name=name)


def watts_strogatz_graph(
    num_nodes: int,
    nearest_neighbors: int,
    rewire_probability: float,
    rng: RngLike = None,
    name: str = "watts-strogatz",
) -> CSRGraph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring)."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    nearest_neighbors = check_positive_int(nearest_neighbors, "nearest_neighbors")
    rewire_probability = check_probability(rewire_probability, "rewire_probability")
    if nearest_neighbors >= num_nodes:
        raise ValueError("nearest_neighbors must be smaller than num_nodes")
    generator = ensure_rng(rng)
    builder = GraphBuilder(num_nodes=num_nodes)
    half = max(nearest_neighbors // 2, 1)
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            target = (node + offset) % num_nodes
            if generator.random() < rewire_probability:
                target = int(generator.integers(0, num_nodes))
                if target == node:
                    target = (node + offset) % num_nodes
            builder.add_edge(node, target)
    return builder.build(name=name)


def stochastic_block_model(
    block_sizes: Sequence[int],
    within_probability: float,
    between_probability: float,
    rng: RngLike = None,
    name: str = "sbm",
) -> CSRGraph:
    """Stochastic block model with uniform within/between edge probabilities.

    Node ids are assigned block by block, so the block label of node ``v`` is
    recoverable as ``numpy.repeat(numpy.arange(len(block_sizes)), block_sizes)[v]``.
    """
    if not block_sizes:
        raise ValueError("block_sizes must be non-empty")
    within_probability = check_probability(within_probability, "within_probability")
    between_probability = check_probability(between_probability, "between_probability")
    generator = ensure_rng(rng)
    num_nodes = int(sum(block_sizes))
    builder = GraphBuilder(num_nodes=num_nodes)

    # Sample edges block-pair by block-pair using expected counts.
    offsets = np.concatenate([[0], np.cumsum(block_sizes)])
    for i in range(len(block_sizes)):
        for j in range(i, len(block_sizes)):
            probability = within_probability if i == j else between_probability
            if probability == 0:
                continue
            size_i, size_j = block_sizes[i], block_sizes[j]
            pairs = size_i * size_j if i != j else size_i * (size_i - 1) // 2
            expected = int(round(pairs * probability))
            if expected == 0:
                continue
            sources = offsets[i] + generator.integers(0, size_i, size=expected)
            targets = offsets[j] + generator.integers(0, size_j, size=expected)
            keep = sources != targets
            builder.add_edges(np.column_stack([sources[keep], targets[keep]]))
    return builder.build(name=name)


def configuration_model_graph(
    degree_sequence: Sequence[int],
    rng: RngLike = None,
    name: str = "configuration-model",
) -> CSRGraph:
    """Configuration-model graph for an arbitrary degree sequence.

    Stubs are paired uniformly at random; self-loops and multi-edges produced
    by the pairing are dropped, so realised degrees can be slightly lower than
    requested (standard behaviour for simple-graph projections).
    """
    degrees = np.asarray(list(degree_sequence), dtype=np.int64)
    if degrees.size == 0:
        raise ValueError("degree_sequence must be non-empty")
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    if degrees.sum() % 2 == 1:
        degrees = degrees.copy()
        degrees[int(np.argmax(degrees))] += 1
    generator = ensure_rng(rng)
    stubs = np.repeat(np.arange(degrees.size), degrees)
    generator.shuffle(stubs)
    half = stubs.size // 2
    edges = np.column_stack([stubs[:half], stubs[half : 2 * half]])
    builder = GraphBuilder(num_nodes=int(degrees.size))
    builder.add_edges(edges)
    return builder.build(name=name)


def powerlaw_cluster_graph(
    num_nodes: int,
    attachment: int,
    triangle_probability: float,
    rng: RngLike = None,
    name: str = "powerlaw-cluster",
) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triangle is closed with probability ``triangle_probability``, giving the
    community-like clustering seen in social and co-purchase networks.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    attachment = check_positive_int(attachment, "attachment")
    triangle_probability = check_probability(triangle_probability, "triangle_probability")
    if attachment >= num_nodes:
        raise ValueError("attachment must be smaller than num_nodes")
    generator = ensure_rng(rng)
    builder = GraphBuilder(num_nodes=num_nodes)
    repeated: list[int] = []
    neighbors: list[list[int]] = [[] for _ in range(num_nodes)]

    def _connect(u: int, v: int) -> None:
        builder.add_edge(u, v)
        repeated.extend([u, v])
        neighbors[u].append(v)
        neighbors[v].append(u)

    for node in range(1, attachment + 1):
        _connect(0, node)

    for node in range(attachment + 1, num_nodes):
        added: set[int] = set()
        target = repeated[int(generator.integers(0, len(repeated)))]
        _connect(node, target)
        added.add(target)
        while len(added) < attachment:
            if neighbors[target] and generator.random() < triangle_probability:
                candidate = neighbors[target][
                    int(generator.integers(0, len(neighbors[target])))
                ]
            else:
                candidate = repeated[int(generator.integers(0, len(repeated)))]
            if candidate == node or candidate in added:
                candidate = repeated[int(generator.integers(0, len(repeated)))]
                if candidate == node or candidate in added:
                    continue
            _connect(node, candidate)
            added.add(candidate)
            target = candidate
    return builder.build(name=name)


def citation_graph(
    num_nodes: int,
    average_degree: float,
    rng: RngLike = None,
    name: str = "citation",
) -> CSRGraph:
    """Citation-network-like graph (citeseer / cora / pubmed regime).

    Citation graphs are sparse (average degree 2–5), mildly skewed and contain
    many low-degree leaves.  We model them as a union of a random tree-like
    backbone (every paper cites at least one earlier paper) and extra
    preferential citations.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    if average_degree <= 0:
        raise ValueError("average_degree must be > 0")
    generator = ensure_rng(rng)
    builder = GraphBuilder(num_nodes=num_nodes)
    repeated: list[int] = [0]

    extra_probability = max(0.0, (average_degree - 2.0) / 2.0)
    for node in range(1, num_nodes):
        # Backbone citation: mostly recent papers, occasionally a classic
        # picked preferentially.
        if generator.random() < 0.5:
            target = int(generator.integers(max(0, node - 50), node))
        else:
            target = repeated[int(generator.integers(0, len(repeated)))]
        builder.add_edge(node, target)
        repeated.extend([node, target])
        # Extra citations with small probability, keeping the graph sparse.
        extra = generator.poisson(extra_probability)
        for _ in range(int(extra)):
            target = repeated[int(generator.integers(0, len(repeated)))]
            if target != node:
                builder.add_edge(node, target)
                repeated.extend([node, target])
    return builder.build(name=name)


def community_graph(
    num_nodes: int,
    average_degree: float,
    triangle_probability: float = 0.6,
    rng: RngLike = None,
    name: str = "community",
) -> CSRGraph:
    """Social / co-purchase style graph (com-amazon, com-dblp, com-youtube).

    A Holme–Kim power-law cluster graph whose attachment parameter is derived
    from the requested average degree.  Produces heavy-tailed degrees with
    local clustering, the regime where the paper observes the largest memory
    savings.
    """
    attachment = max(1, int(round(average_degree / 2.0)))
    return powerlaw_cluster_graph(
        num_nodes=num_nodes,
        attachment=attachment,
        triangle_probability=triangle_probability,
        rng=rng,
        name=name,
    )
