"""Host-graph partitioning for sharded serving.

MeLoPPR's memory story is that a stage task only ever touches a small
``(center, depth)`` ego sub-graph — the host graph itself never needs to live
in one memory.  This module makes that operational: it splits the node set
into shards and builds, per shard, an induced CSR sub-graph over the shard's
*owned* nodes plus a **halo** of every node within ``halo_depth`` hops of
them.  A depth-``l`` ego extraction centred on an owned node then completes
entirely shard-locally whenever ``l <= halo_depth``: the whole depth-``l``
ball (nodes *and* the edges between them) is guaranteed to be present in the
shard sub-graph, so the extraction — and therefore the diffusion it feeds —
is bit-identical to one performed on the full host graph.

Shard sub-graphs keep their global ids sorted ascending.  That is what makes
the bit-identity hold all the way down: BFS discovers nodes level by level
and sorts each level by node id, so "sorted by local id" and "sorted by
global id" coincide, the visit order matches the host-graph extraction, and
the relabelled ego CSR comes out with identical arrays.

Three partitioners ship:

* ``hash`` — multiplicative-hash assignment; stateless and uniform, the
  default for unknown workloads.
* ``range`` — contiguous node-id ranges; preserves any locality already
  present in the id ordering (e.g. generator or crawl order) and minimises
  the node→shard map's entropy.
* ``degree`` — greedy degree-balanced (LPT) assignment; equalises the summed
  degree per shard so one hub-heavy shard does not serve most of the traffic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.graph.bfs import expand_frontier
from repro.graph.csr import CSRGraph
from repro.graph.subgraph import Subgraph
from repro.utils.validation import check_node_id

__all__ = [
    "DEFAULT_HALO_DEPTH",
    "PARTITIONERS",
    "GraphShard",
    "GraphPartition",
    "hash_partition",
    "hash_shard_of",
    "range_partition",
    "degree_balanced_partition",
    "partition_graph",
    "patch_partition",
]

#: Default halo depth — the paper's stage lengths are ``l1 = l2 = 3``, so a
#: depth-3 halo makes every stage task of the paper configuration shard-local.
DEFAULT_HALO_DEPTH = 3

#: Knuth's multiplicative hash constant (fits node ids without int64 overflow).
_HASH_MULTIPLIER = 2654435761


def hash_partition(graph: CSRGraph, num_shards: int) -> np.ndarray:
    """Assign nodes to shards by multiplicative (Fibonacci) hash of the id.

    The shard is taken from the product's *high* bits: reducing the raw
    product modulo a power-of-two shard count would use only its low bits,
    where an odd multiplier is the identity — i.e. it would silently
    degenerate to ``node % num_shards``.
    """
    nodes = np.arange(graph.num_nodes, dtype=np.int64)
    return ((nodes * _HASH_MULTIPLIER) >> 16) % num_shards


def hash_shard_of(node: int, num_shards: int) -> int:
    """Scalar form of :func:`hash_partition`'s assignment.

    The replica router uses this to map a query seed to its owning shard
    *without* loading the graph; it must therefore stay bit-for-bit the same
    function as the vectorised assignment above, or the router would send
    seeds to replicas that are not their shard's primary.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be > 0, got {num_shards}")
    return int(((int(node) * _HASH_MULTIPLIER) >> 16) % num_shards)


def range_partition(graph: CSRGraph, num_shards: int) -> np.ndarray:
    """Assign contiguous, near-equal node-id ranges to consecutive shards."""
    bounds = np.linspace(0, graph.num_nodes, num_shards + 1)
    assignments = np.searchsorted(bounds, np.arange(graph.num_nodes), side="right") - 1
    return np.clip(assignments, 0, num_shards - 1).astype(np.int64)


def degree_balanced_partition(graph: CSRGraph, num_shards: int) -> np.ndarray:
    """Greedy LPT assignment balancing summed degree (plus one, so isolated
    nodes still spread by count) across shards.

    Nodes are placed highest-degree first onto the currently lightest shard;
    ties break towards the lowest shard id, keeping the result deterministic.
    """
    degrees = graph.degrees()
    order = np.argsort(-degrees, kind="stable")
    assignments = np.empty(graph.num_nodes, dtype=np.int64)
    heap: List[Tuple[int, int]] = [(0, shard) for shard in range(num_shards)]
    heapq.heapify(heap)
    for node in order:
        load, shard = heapq.heappop(heap)
        assignments[node] = shard
        heapq.heappush(heap, (load + int(degrees[node]) + 1, shard))
    return assignments


PARTITIONERS: Dict[str, Callable[[CSRGraph, int], np.ndarray]] = {
    "hash": hash_partition,
    "range": range_partition,
    "degree": degree_balanced_partition,
}


def _expand_with_halo(graph: CSRGraph, owned: np.ndarray, halo_depth: int) -> np.ndarray:
    """Owned nodes plus every node within ``halo_depth`` hops of them (sorted).

    A multi-source BFS: ``owned`` is the whole level-0 frontier, and each
    :func:`~repro.graph.bfs.expand_frontier` call adds the next hop ring.
    """
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[owned] = True
    frontier = owned
    for _ in range(halo_depth):
        if frontier.size == 0:
            break
        frontier, _ = expand_frontier(graph.indptr, graph.indices, frontier, visited)
    return np.nonzero(visited)[0].astype(np.int64)


@dataclass(frozen=True)
class GraphShard:
    """One shard: the owned nodes and the halo-extended induced sub-graph.

    Attributes
    ----------
    shard_id:
        Index of the shard in its :class:`GraphPartition`.
    owned:
        Sorted global ids of the nodes this shard owns (disjoint across
        shards; their union is the full node set).
    subgraph:
        Induced sub-graph over ``owned`` plus the halo, global ids sorted
        ascending.  Ego extractions of depth ``<= halo_depth`` centred on an
        owned node complete inside this sub-graph, bit-identically to the
        host-graph extraction.
    owned_local_mask:
        Boolean mask over the sub-graph's local ids; ``True`` where the local
        node is owned (``False`` marks halo replicas).
    """

    shard_id: int
    owned: np.ndarray
    subgraph: Subgraph
    owned_local_mask: np.ndarray

    @property
    def num_owned(self) -> int:
        """Number of nodes this shard owns."""
        return int(self.owned.size)

    @property
    def num_halo(self) -> int:
        """Number of halo replicas (present but owned elsewhere)."""
        return int(self.subgraph.num_nodes - self.owned.size)

    def owns(self, node: int) -> bool:
        """Whether the shard owns the global node ``node``."""
        position = np.searchsorted(self.owned, int(node))
        return bool(position < self.owned.size and self.owned[position] == node)

    def nbytes(self) -> int:
        """Bytes retained by this shard (CSR arrays + global-id map)."""
        return int(self.subgraph.graph.nbytes() + self.subgraph.global_ids.nbytes)

    def halo_bytes(self) -> int:
        """Bytes attributable to halo replication (halo rows + id entries)."""
        graph = self.subgraph.graph
        halo_mask = ~self.owned_local_mask
        halo_row_entries = int(graph.degrees()[halo_mask].sum())
        num_halo = int(halo_mask.sum())
        return int(
            halo_row_entries * graph.indices.itemsize
            + num_halo * (graph.indptr.itemsize + self.subgraph.global_ids.itemsize)
        )

    def __repr__(self) -> str:
        return (
            f"GraphShard(shard_id={self.shard_id}, owned={self.num_owned}, "
            f"halo={self.num_halo})"
        )


@dataclass(frozen=True)
class GraphPartition:
    """A host graph split into shards with halo-extended sub-graphs.

    Attributes
    ----------
    host:
        The partitioned host graph.
    strategy:
        Name of the partitioner that produced the assignment.
    halo_depth:
        Hop radius of the halo around each shard's owned set.  Extractions of
        depth ``<= halo_depth`` are shard-local (:meth:`covers_depth`).
    assignments:
        ``assignments[node]`` is the owning shard of ``node``.
    shards:
        The per-shard data, indexed by shard id.
    """

    host: CSRGraph
    strategy: str
    halo_depth: int
    assignments: np.ndarray
    shards: Tuple[GraphShard, ...]

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard_of(self, node: int) -> int:
        """Owning shard id of a global node."""
        node = check_node_id(node, self.host.num_nodes)
        return int(self.assignments[node])

    def shard_for(self, node: int) -> GraphShard:
        """Owning shard of a global node."""
        return self.shards[self.shard_of(node)]

    def covers_depth(self, depth: int) -> bool:
        """Whether depth-``depth`` extractions complete shard-locally."""
        return depth <= self.halo_depth

    # ------------------------------------------------------------------
    def total_nbytes(self) -> int:
        """Bytes retained across all shard sub-graphs."""
        return sum(shard.nbytes() for shard in self.shards)

    def halo_overhead_bytes(self) -> int:
        """Bytes spent on halo replication across all shards."""
        return sum(shard.halo_bytes() for shard in self.shards)

    def replication_factor(self) -> float:
        """Total shard-resident nodes over host nodes (1.0 = no replication)."""
        if self.host.num_nodes == 0:
            return 1.0
        total = sum(shard.subgraph.num_nodes for shard in self.shards)
        return total / self.host.num_nodes

    def owned_balance(self) -> float:
        """Largest owned-node count over the ideal even share (1.0 = perfect)."""
        if self.host.num_nodes == 0:
            return 1.0
        mean = self.host.num_nodes / self.num_shards
        return max(shard.num_owned for shard in self.shards) / mean

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        return {
            "strategy": self.strategy,
            "num_shards": self.num_shards,
            "halo_depth": self.halo_depth,
            "num_nodes": self.host.num_nodes,
            "num_edges": self.host.num_edges,
            "total_nbytes": self.total_nbytes(),
            "halo_overhead_bytes": self.halo_overhead_bytes(),
            "replication_factor": self.replication_factor(),
            "owned_balance": self.owned_balance(),
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "num_owned": shard.num_owned,
                    "num_halo": shard.num_halo,
                    "num_edges": shard.subgraph.num_edges,
                    "nbytes": shard.nbytes(),
                    "halo_bytes": shard.halo_bytes(),
                }
                for shard in self.shards
            ],
        }

    def __repr__(self) -> str:
        return (
            f"GraphPartition(host={self.host.name!r}, strategy={self.strategy!r}, "
            f"num_shards={self.num_shards}, halo_depth={self.halo_depth})"
        )


def partition_graph(
    graph: CSRGraph,
    num_shards: int,
    strategy: str = "hash",
    halo_depth: int = DEFAULT_HALO_DEPTH,
) -> GraphPartition:
    """Partition ``graph`` into ``num_shards`` halo-extended shards.

    Parameters
    ----------
    graph:
        The host graph.
    num_shards:
        Number of shards (``>= 1``; shards may end up empty when the graph is
        smaller than the shard count).
    strategy:
        Partitioner name — one of :data:`PARTITIONERS`
        (``"hash"``, ``"range"``, ``"degree"``).
    halo_depth:
        Hop radius of the halo; extraction depths up to this complete
        shard-locally.  Larger halos trade replicated bytes for locality.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if halo_depth < 0:
        raise ValueError(f"halo_depth must be >= 0, got {halo_depth}")
    partitioner = PARTITIONERS.get(strategy)
    if partitioner is None:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"choose from {sorted(PARTITIONERS)}"
        )
    assignments = np.asarray(partitioner(graph, num_shards), dtype=np.int64)
    if assignments.shape != (graph.num_nodes,):
        raise ValueError(
            f"partitioner {strategy!r} returned assignment of shape "
            f"{assignments.shape}, expected ({graph.num_nodes},)"
        )
    if assignments.size and (assignments.min() < 0 or assignments.max() >= num_shards):
        raise ValueError(
            f"partitioner {strategy!r} assigned shards outside [0, {num_shards})"
        )

    shards = []
    for shard_id in range(num_shards):
        owned = np.nonzero(assignments == shard_id)[0].astype(np.int64)
        members = _expand_with_halo(graph, owned, halo_depth)
        subgraph = Subgraph.induced(
            graph, members, name=f"{graph.name}:shard{shard_id}"
        )
        owned_local_mask = np.isin(members, owned, assume_unique=True)
        shards.append(
            GraphShard(
                shard_id=shard_id,
                owned=owned,
                subgraph=subgraph,
                owned_local_mask=owned_local_mask,
            )
        )
    return GraphPartition(
        host=graph,
        strategy=strategy,
        halo_depth=int(halo_depth),
        assignments=assignments,
        shards=tuple(shards),
    )


def _build_shard(
    graph: CSRGraph, shard_id: int, owned: np.ndarray, halo_depth: int
) -> GraphShard:
    """Materialise one shard (halo expansion + induced sub-graph) on ``graph``."""
    members = _expand_with_halo(graph, owned, halo_depth)
    subgraph = Subgraph.induced(graph, members, name=f"{graph.name}:shard{shard_id}")
    owned_local_mask = np.isin(members, owned, assume_unique=True)
    return GraphShard(
        shard_id=shard_id,
        owned=owned,
        subgraph=subgraph,
        owned_local_mask=owned_local_mask,
    )


def patch_partition(
    partition: GraphPartition, new_graph: CSRGraph, distances: np.ndarray
) -> Tuple[GraphPartition, Tuple[int, ...]]:
    """Incrementally re-partition after an edge update; returns
    ``(patched partition, rebuilt shard ids)``.

    ``distances[node]`` is a conservative hop distance to the nearest
    endpoint the update touched, minimised over the old **and** new topology
    (:func:`repro.graph.delta.update_distance_bound`).  Node assignments are
    kept — edge ops never change the node set, and every shipped partitioner
    assigns by node id or by pre-update degree, which routing must keep
    stable for cached state to survive.  A shard is re-extracted only when
    some owned node is within ``halo_depth`` of a touched endpoint: any
    change to the shard's membership (halo ring) or induced edges requires a
    touched endpoint within ``halo_depth`` of the owned set on one of the
    two topologies, so an unaffected shard's halo-extended sub-graph is
    byte-identical on ``new_graph`` and its :class:`GraphShard` is reused
    as-is.
    """
    host = partition.host
    if new_graph.num_nodes != host.num_nodes:
        raise ValueError(
            f"edge updates cannot change the node set: partition hosts "
            f"{host.num_nodes} nodes, new graph has {new_graph.num_nodes}"
        )
    shards: List[GraphShard] = []
    rebuilt: List[int] = []
    for shard in partition.shards:
        affected = (
            shard.owned.size > 0
            and int(distances[shard.owned].min()) <= partition.halo_depth
        )
        if affected:
            shards.append(
                _build_shard(
                    new_graph, shard.shard_id, shard.owned, partition.halo_depth
                )
            )
            rebuilt.append(shard.shard_id)
        else:
            shards.append(shard)
    patched = replace(partition, host=new_graph, shards=tuple(shards))
    return patched, tuple(rebuilt)
