"""Stand-ins for the six SNAP graphs used in the paper (Table II).

The paper evaluates on:

=====  ============  =========  =========
Id     Name          |V|        |E|
=====  ============  =========  =========
G1     citeseer      3,327      4,676
G2     cora          2,708      5,278
G3     pubmed        19,717     44,327
G4     com-amazon    334,863    925,872
G5     com-dblp      317,080    1,049,866
G6     com-youtube   1,134,890  2,987,624
=====  ============  =========  =========

SNAP downloads are unavailable offline, so this module generates synthetic
stand-ins with the same node counts and average degrees for G1–G3 and scaled
versions of G4–G6 (the full graphs would make the Python test suite take
hours; the *shape* of every reported trend depends on average degree and
degree-tail behaviour, which the scaled stand-ins preserve).  The scale factor
can be overridden per call for users who want the full sizes.

Every stand-in is deterministic: the generator seed is derived from the
dataset name.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.generators import citation_graph, community_graph

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "dataset_names",
    "load_dataset",
    "load_paper_suite",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one paper dataset and how its stand-in is generated.

    Attributes
    ----------
    key:
        Short id used in the paper (``"G1"`` .. ``"G6"``).
    name:
        Dataset name (``"citeseer"`` etc.).
    num_nodes, num_edges:
        The sizes reported in Table II of the paper.
    family:
        ``"citation"`` or ``"community"``; selects the generator.
    default_scale:
        Default down-scaling factor applied to ``num_nodes`` when the stand-in
        is generated (1.0 keeps the paper's size).
    """

    key: str
    name: str
    num_nodes: int
    num_edges: int
    family: str
    default_scale: float = 1.0

    @property
    def average_degree(self) -> float:
        """Average degree ``2|E| / |V|`` of the original dataset."""
        return 2.0 * self.num_edges / self.num_nodes

    def scaled_num_nodes(self, scale: Optional[float] = None) -> int:
        """Node count of the stand-in for a given (or the default) scale."""
        factor = self.default_scale if scale is None else scale
        if factor <= 0 or factor > 1:
            raise ValueError(f"scale must be in (0, 1], got {factor}")
        return max(64, int(round(self.num_nodes * factor)))


#: The six datasets of Table II, in paper order.  G4–G6 default to scaled
#: stand-ins (see module docstring).
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "G1": DatasetSpec("G1", "citeseer", 3_327, 4_676, "citation", 1.0),
    "G2": DatasetSpec("G2", "cora", 2_708, 5_278, "citation", 1.0),
    "G3": DatasetSpec("G3", "pubmed", 19_717, 44_327, "citation", 1.0),
    "G4": DatasetSpec("G4", "com-amazon", 334_863, 925_872, "community", 0.06),
    "G5": DatasetSpec("G5", "com-dblp", 317_080, 1_049_866, "community", 0.06),
    "G6": DatasetSpec("G6", "com-youtube", 1_134_890, 2_987_624, "community", 0.02),
}

#: Lookup by dataset name as well as by key.
_BY_NAME = {spec.name: spec for spec in PAPER_DATASETS.values()}


def dataset_names() -> Tuple[str, ...]:
    """Return the dataset keys in paper order (``G1`` .. ``G6``)."""
    return tuple(PAPER_DATASETS)


def _seed_for(name: str) -> int:
    """Stable per-dataset seed derived from the dataset name."""
    return zlib.crc32(name.encode("utf-8")) & 0x7FFFFFFF


def get_spec(dataset: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for a key (``"G1"``) or name (``"cora"``)."""
    if dataset in PAPER_DATASETS:
        return PAPER_DATASETS[dataset]
    if dataset in _BY_NAME:
        return _BY_NAME[dataset]
    raise KeyError(
        f"unknown dataset {dataset!r}; expected one of "
        f"{sorted(PAPER_DATASETS) + sorted(_BY_NAME)}"
    )


def load_dataset(dataset: str, scale: Optional[float] = None) -> CSRGraph:
    """Generate the stand-in graph for one paper dataset.

    Parameters
    ----------
    dataset:
        Dataset key (``"G1"``..``"G6"``) or name (``"citeseer"`` etc.).
    scale:
        Optional down-scaling factor in ``(0, 1]`` applied to the node count.
        Defaults to the spec's ``default_scale``.

    Returns
    -------
    CSRGraph
        A deterministic synthetic graph named after the dataset.
    """
    spec = get_spec(dataset)
    num_nodes = spec.scaled_num_nodes(scale)
    seed = _seed_for(spec.name)
    if spec.family == "citation":
        graph = citation_graph(
            num_nodes=num_nodes,
            average_degree=spec.average_degree,
            rng=seed,
            name=spec.name,
        )
    else:
        graph = community_graph(
            num_nodes=num_nodes,
            average_degree=spec.average_degree,
            rng=seed,
            name=spec.name,
        )
    return graph


def load_paper_suite(
    scale: Optional[float] = None, small_only: bool = False
) -> Dict[str, CSRGraph]:
    """Load the whole Table II suite as ``{key: graph}``.

    Parameters
    ----------
    scale:
        Optional override applied to every dataset.  ``None`` keeps each
        dataset's default scale.
    small_only:
        When true, only G1–G3 (the graphs used in Fig. 5 and Fig. 6) are
        loaded, which keeps quick experiments fast.
    """
    keys = ["G1", "G2", "G3"] if small_only else list(PAPER_DATASETS)
    return {key: load_dataset(key, scale=scale) for key in keys}
