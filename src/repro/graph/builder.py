"""Incremental graph construction.

:class:`GraphBuilder` collects edges (from generators, files or user code),
cleans them up (self-loop removal, de-duplication, optional symmetrisation)
and emits an immutable :class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.validation import check_non_negative_int

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulate edges and build a :class:`CSRGraph`.

    Parameters
    ----------
    num_nodes:
        Number of nodes if known up front.  When omitted, the node count is
        inferred as ``max(edge endpoints) + 1`` at build time.
    directed:
        When ``False`` (default) the built graph is undirected: each added
        edge is stored in both directions.  ``True`` keeps edges as given;
        this is only used by internal tooling (the paper's graphs are
        undirected).
    """

    def __init__(self, num_nodes: Optional[int] = None, directed: bool = False) -> None:
        if num_nodes is not None:
            num_nodes = check_non_negative_int(num_nodes, "num_nodes")
        self._num_nodes = num_nodes
        self._directed = bool(directed)
        self._sources: List[np.ndarray] = []
        self._targets: List[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        """Whether the builder produces a directed graph."""
        return self._directed

    @property
    def num_pending_edges(self) -> int:
        """Number of edge tuples added so far (before cleaning)."""
        return int(sum(chunk.size for chunk in self._sources))

    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add a single edge ``(u, v)``.  Returns ``self`` for chaining."""
        return self.add_edges([(u, v)])

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> "GraphBuilder":
        """Add many edges at once.

        ``edges`` may be any iterable of pairs or an ``(n, 2)`` array.
        """
        array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if array.size == 0:
            return self
        if array.ndim != 2 or array.shape[1] != 2:
            raise ValueError("edges must be an iterable of (u, v) pairs")
        if np.any(array < 0):
            raise ValueError("edge endpoints must be non-negative node ids")
        self._sources.append(array[:, 0].astype(np.int64))
        self._targets.append(array[:, 1].astype(np.int64))
        return self

    def add_star(self, center: int, leaves: Iterable[int]) -> "GraphBuilder":
        """Add edges from ``center`` to every node in ``leaves``."""
        leaves = np.asarray(list(leaves), dtype=np.int64)
        if leaves.size == 0:
            return self
        centers = np.full(leaves.size, center, dtype=np.int64)
        return self.add_edges(np.column_stack([centers, leaves]))

    def add_path(self, nodes: Iterable[int]) -> "GraphBuilder":
        """Add a path through ``nodes`` in order."""
        nodes = np.asarray(list(nodes), dtype=np.int64)
        if nodes.size < 2:
            return self
        return self.add_edges(np.column_stack([nodes[:-1], nodes[1:]]))

    def add_cycle(self, nodes: Iterable[int]) -> "GraphBuilder":
        """Add a cycle through ``nodes`` in order."""
        nodes = list(nodes)
        if len(nodes) < 3:
            raise ValueError("a cycle needs at least three nodes")
        self.add_path(nodes)
        return self.add_edge(nodes[-1], nodes[0])

    # ------------------------------------------------------------------
    def build(self, name: str = "graph") -> CSRGraph:
        """Clean up the accumulated edges and return an immutable graph."""
        if self._sources:
            sources = np.concatenate(self._sources)
            targets = np.concatenate(self._targets)
        else:
            sources = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)

        num_nodes = self._num_nodes
        if num_nodes is None:
            num_nodes = int(max(sources.max(initial=-1), targets.max(initial=-1)) + 1)
            num_nodes = max(num_nodes, 0)
        else:
            if sources.size and max(sources.max(), targets.max()) >= num_nodes:
                raise ValueError(
                    "edge endpoints exceed the declared num_nodes "
                    f"({num_nodes})"
                )

        # Remove self loops.
        keep = sources != targets
        sources, targets = sources[keep], targets[keep]

        if not self._directed:
            # Store each undirected edge in both directions before dedup.
            sources, targets = (
                np.concatenate([sources, targets]),
                np.concatenate([targets, sources]),
            )

        # De-duplicate using a linearised key.
        if sources.size:
            keys = sources * np.int64(num_nodes) + targets
            unique_keys = np.unique(keys)
            sources = unique_keys // num_nodes
            targets = unique_keys % num_nodes

        # Build CSR: counting sort over sources.
        counts = np.bincount(sources, minlength=num_nodes).astype(np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(sources, kind="stable")
        indices = targets[order].astype(np.int32)
        return CSRGraph(indptr, indices, name=name)
