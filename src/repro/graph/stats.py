"""Descriptive statistics over graphs.

Used by the dataset documentation, the experiments (which report per-graph
average/maximum degree — the fixed-point scaling of Sec. V-A depends on them)
and by tests that check the synthetic stand-ins land in the right structural
regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "compute_stats", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph."""

    name: str
    num_nodes: int
    num_edges: int
    min_degree: int
    max_degree: int
    average_degree: float
    median_degree: float
    density: float
    isolated_nodes: int

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary (for reporting)."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "average_degree": self.average_degree,
            "median_degree": self.median_degree,
            "density": self.density,
            "isolated_nodes": self.isolated_nodes,
        }


def compute_stats(graph: CSRGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    degrees = graph.degrees()
    num_nodes = graph.num_nodes
    num_edges = graph.num_edges
    if num_nodes == 0:
        return GraphStats(graph.name, 0, 0, 0, 0, 0.0, 0.0, 0.0, 0)
    max_pairs = num_nodes * (num_nodes - 1) / 2.0
    density = num_edges / max_pairs if max_pairs > 0 else 0.0
    return GraphStats(
        name=graph.name,
        num_nodes=num_nodes,
        num_edges=num_edges,
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        average_degree=float(degrees.mean()),
        median_degree=float(np.median(degrees)),
        density=float(density),
        isolated_nodes=int(np.count_nonzero(degrees == 0)),
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Return ``hist`` where ``hist[d]`` is the number of nodes with degree ``d``."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)
